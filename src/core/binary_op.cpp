#include "core/binary_op.hpp"

#include <cmath>
#include <limits>
#include <memory>
#include <type_traits>
#include <unordered_set>
#include <vector>
#include "util/thread_annotations.hpp"

namespace grb {
namespace {

template <class T>
T ld(const void* p) {
  T v;
  std::memcpy(&v, p, sizeof(T));
  return v;
}

template <class T>
void st(void* p, T v) {
  std::memcpy(p, &v, sizeof(T));
}

// Wrapping arithmetic for integers (avoids signed-overflow UB); plain
// arithmetic for floating point.
template <class T>
T wrap_add(T x, T y) {
  if constexpr (std::is_integral_v<T>) {
    using U = std::make_unsigned_t<T>;
    return static_cast<T>(static_cast<U>(x) + static_cast<U>(y));
  } else {
    return x + y;
  }
}
template <class T>
T wrap_sub(T x, T y) {
  if constexpr (std::is_integral_v<T>) {
    using U = std::make_unsigned_t<T>;
    return static_cast<T>(static_cast<U>(x) - static_cast<U>(y));
  } else {
    return x - y;
  }
}
template <class T>
T wrap_mul(T x, T y) {
  if constexpr (std::is_integral_v<T>) {
    using U = std::make_unsigned_t<T>;
    return static_cast<T>(static_cast<U>(x) * static_cast<U>(y));
  } else {
    return x * y;
  }
}
template <class T>
T safe_div(T x, T y) {
  if constexpr (std::is_integral_v<T>) {
    if (y == 0) return T{0};
    if constexpr (std::is_signed_v<T>) {
      // INT_MIN / -1 overflows; wrap to INT_MIN like a 2's-complement op.
      if (x == std::numeric_limits<T>::min() && y == T{-1}) return x;
    }
    return static_cast<T>(x / y);
  } else {
    return x / y;
  }
}

// --- arithmetic ops, generic over non-bool arithmetic T ----------------
template <class T>
void fn_first(void* z, const void* x, const void*) {
  st<T>(z, ld<T>(x));
}
template <class T>
void fn_second(void* z, const void*, const void* y) {
  st<T>(z, ld<T>(y));
}
template <class T>
void fn_oneb(void* z, const void*, const void*) {
  st<T>(z, T{1});
}
template <class T>
void fn_min(void* z, const void* x, const void* y) {
  T a = ld<T>(x), b = ld<T>(y);
  if constexpr (std::is_floating_point_v<T>) {
    st<T>(z, std::fmin(a, b));
  } else {
    st<T>(z, a < b ? a : b);
  }
}
template <class T>
void fn_max(void* z, const void* x, const void* y) {
  T a = ld<T>(x), b = ld<T>(y);
  if constexpr (std::is_floating_point_v<T>) {
    st<T>(z, std::fmax(a, b));
  } else {
    st<T>(z, a > b ? a : b);
  }
}
template <class T>
void fn_plus(void* z, const void* x, const void* y) {
  st<T>(z, wrap_add(ld<T>(x), ld<T>(y)));
}
template <class T>
void fn_minus(void* z, const void* x, const void* y) {
  st<T>(z, wrap_sub(ld<T>(x), ld<T>(y)));
}
template <class T>
void fn_times(void* z, const void* x, const void* y) {
  st<T>(z, wrap_mul(ld<T>(x), ld<T>(y)));
}
template <class T>
void fn_div(void* z, const void* x, const void* y) {
  st<T>(z, safe_div(ld<T>(x), ld<T>(y)));
}

// --- bool specializations ----------------------------------------------
void bfn_first(void* z, const void* x, const void*) { st<bool>(z, ld<bool>(x)); }
void bfn_second(void* z, const void*, const void* y) { st<bool>(z, ld<bool>(y)); }
void bfn_oneb(void* z, const void*, const void*) { st<bool>(z, true); }
void bfn_min(void* z, const void* x, const void* y) {
  st<bool>(z, ld<bool>(x) && ld<bool>(y));
}
void bfn_max(void* z, const void* x, const void* y) {
  st<bool>(z, ld<bool>(x) || ld<bool>(y));
}
void bfn_plus(void* z, const void* x, const void* y) {
  st<bool>(z, ld<bool>(x) || ld<bool>(y));
}
void bfn_minus(void* z, const void* x, const void* y) {
  st<bool>(z, ld<bool>(x) != ld<bool>(y));
}
void bfn_times(void* z, const void* x, const void* y) {
  st<bool>(z, ld<bool>(x) && ld<bool>(y));
}
void bfn_div(void* z, const void* x, const void*) { st<bool>(z, ld<bool>(x)); }

// --- comparisons: T,T -> bool -------------------------------------------
template <class T>
void fn_eq(void* z, const void* x, const void* y) {
  st<bool>(z, ld<T>(x) == ld<T>(y));
}
template <class T>
void fn_ne(void* z, const void* x, const void* y) {
  st<bool>(z, ld<T>(x) != ld<T>(y));
}
template <class T>
void fn_gt(void* z, const void* x, const void* y) {
  st<bool>(z, ld<T>(x) > ld<T>(y));
}
template <class T>
void fn_lt(void* z, const void* x, const void* y) {
  st<bool>(z, ld<T>(x) < ld<T>(y));
}
template <class T>
void fn_ge(void* z, const void* x, const void* y) {
  st<bool>(z, ld<T>(x) >= ld<T>(y));
}
template <class T>
void fn_le(void* z, const void* x, const void* y) {
  st<bool>(z, ld<T>(x) <= ld<T>(y));
}

// --- logical (bool only) -------------------------------------------------
void fn_lor(void* z, const void* x, const void* y) {
  st<bool>(z, ld<bool>(x) || ld<bool>(y));
}
void fn_land(void* z, const void* x, const void* y) {
  st<bool>(z, ld<bool>(x) && ld<bool>(y));
}
void fn_lxor(void* z, const void* x, const void* y) {
  st<bool>(z, ld<bool>(x) != ld<bool>(y));
}
void fn_lxnor(void* z, const void* x, const void* y) {
  st<bool>(z, ld<bool>(x) == ld<bool>(y));
}

// --- bitwise (integer types) ---------------------------------------------
template <class T>
void fn_bor(void* z, const void* x, const void* y) {
  st<T>(z, static_cast<T>(ld<T>(x) | ld<T>(y)));
}
template <class T>
void fn_band(void* z, const void* x, const void* y) {
  st<T>(z, static_cast<T>(ld<T>(x) & ld<T>(y)));
}
template <class T>
void fn_bxor(void* z, const void* x, const void* y) {
  st<T>(z, static_cast<T>(ld<T>(x) ^ ld<T>(y)));
}
template <class T>
void fn_bxnor(void* z, const void* x, const void* y) {
  st<T>(z, static_cast<T>(~(ld<T>(x) ^ ld<T>(y))));
}

constexpr int kNumOps = 24;  // BinOpCode enumerators

struct Registry {
  // [opcode][typecode]; entries may be null for undefined combinations.
  std::unique_ptr<BinaryOp> table[kNumOps][kNumBuiltinTypes];

  template <class T>
  void add(BinOpCode op, BinaryFn fn, const char* opname, bool cmp) {
    const Type* t = type_of<T>();
    const Type* z = cmp ? TypeBool() : t;
    int o = static_cast<int>(op);
    int c = static_cast<int>(t->code());
    table[o][c] = std::make_unique<BinaryOp>(
        z, t, t, fn, op, std::string(opname) + "_" + t->name());
  }

  template <class T>
  void add_arith() {
    if constexpr (std::is_same_v<T, bool>) {
      add<T>(BinOpCode::kFirst, &bfn_first, "GrB_FIRST", false);
      add<T>(BinOpCode::kSecond, &bfn_second, "GrB_SECOND", false);
      add<T>(BinOpCode::kOneb, &bfn_oneb, "GrB_ONEB", false);
      add<T>(BinOpCode::kMin, &bfn_min, "GrB_MIN", false);
      add<T>(BinOpCode::kMax, &bfn_max, "GrB_MAX", false);
      add<T>(BinOpCode::kPlus, &bfn_plus, "GrB_PLUS", false);
      add<T>(BinOpCode::kMinus, &bfn_minus, "GrB_MINUS", false);
      add<T>(BinOpCode::kTimes, &bfn_times, "GrB_TIMES", false);
      add<T>(BinOpCode::kDiv, &bfn_div, "GrB_DIV", false);
    } else {
      add<T>(BinOpCode::kFirst, &fn_first<T>, "GrB_FIRST", false);
      add<T>(BinOpCode::kSecond, &fn_second<T>, "GrB_SECOND", false);
      add<T>(BinOpCode::kOneb, &fn_oneb<T>, "GrB_ONEB", false);
      add<T>(BinOpCode::kMin, &fn_min<T>, "GrB_MIN", false);
      add<T>(BinOpCode::kMax, &fn_max<T>, "GrB_MAX", false);
      add<T>(BinOpCode::kPlus, &fn_plus<T>, "GrB_PLUS", false);
      add<T>(BinOpCode::kMinus, &fn_minus<T>, "GrB_MINUS", false);
      add<T>(BinOpCode::kTimes, &fn_times<T>, "GrB_TIMES", false);
      add<T>(BinOpCode::kDiv, &fn_div<T>, "GrB_DIV", false);
    }
    add<T>(BinOpCode::kEq, &fn_eq<T>, "GrB_EQ", true);
    add<T>(BinOpCode::kNe, &fn_ne<T>, "GrB_NE", true);
    add<T>(BinOpCode::kGt, &fn_gt<T>, "GrB_GT", true);
    add<T>(BinOpCode::kLt, &fn_lt<T>, "GrB_LT", true);
    add<T>(BinOpCode::kGe, &fn_ge<T>, "GrB_GE", true);
    add<T>(BinOpCode::kLe, &fn_le<T>, "GrB_LE", true);
  }

  template <class T>
  void add_bitwise() {
    add<T>(BinOpCode::kBor, &fn_bor<T>, "GrB_BOR", false);
    add<T>(BinOpCode::kBand, &fn_band<T>, "GrB_BAND", false);
    add<T>(BinOpCode::kBxor, &fn_bxor<T>, "GrB_BXOR", false);
    add<T>(BinOpCode::kBxnor, &fn_bxnor<T>, "GrB_BXNOR", false);
  }

  Registry() {
    add_arith<bool>();
    add_arith<int8_t>();
    add_arith<uint8_t>();
    add_arith<int16_t>();
    add_arith<uint16_t>();
    add_arith<int32_t>();
    add_arith<uint32_t>();
    add_arith<int64_t>();
    add_arith<uint64_t>();
    add_arith<float>();
    add_arith<double>();

    add<bool>(BinOpCode::kLor, &fn_lor, "GrB_LOR", true);
    add<bool>(BinOpCode::kLand, &fn_land, "GrB_LAND", true);
    add<bool>(BinOpCode::kLxor, &fn_lxor, "GrB_LXOR", true);
    add<bool>(BinOpCode::kLxnor, &fn_lxnor, "GrB_LXNOR", true);

    add_bitwise<int8_t>();
    add_bitwise<uint8_t>();
    add_bitwise<int16_t>();
    add_bitwise<uint16_t>();
    add_bitwise<int32_t>();
    add_bitwise<uint32_t>();
    add_bitwise<int64_t>();
    add_bitwise<uint64_t>();
  }
};

const Registry& registry() {
  static Registry* r = new Registry;
  return *r;
}

struct UserOps {
  Mutex mu;
  std::unordered_set<const BinaryOp*> live GRB_GUARDED_BY(mu);
};
UserOps& user_ops() {
  static UserOps* u = new UserOps;
  return *u;
}

template <class T>
void write_limits(BinOpCode op, void* out, bool* ok) {
  switch (op) {
    case BinOpCode::kPlus:
      st<T>(out, T{0});
      break;
    case BinOpCode::kTimes:
      st<T>(out, T{1});
      break;
    case BinOpCode::kMin:
      if constexpr (std::is_floating_point_v<T>) {
        st<T>(out, std::numeric_limits<T>::infinity());
      } else {
        st<T>(out, std::numeric_limits<T>::max());
      }
      break;
    case BinOpCode::kMax:
      if constexpr (std::is_floating_point_v<T>) {
        st<T>(out, -std::numeric_limits<T>::infinity());
      } else {
        st<T>(out, std::numeric_limits<T>::lowest());
      }
      break;
    default:
      *ok = false;
      break;
  }
}

template <class T>
void write_terminal(BinOpCode op, void* out, bool* ok) {
  switch (op) {
    case BinOpCode::kTimes:
      if constexpr (std::is_integral_v<T>) {
        st<T>(out, T{0});
      } else {
        *ok = false;  // 0*NaN != 0, so TIMES has no float terminal
      }
      break;
    case BinOpCode::kMin:
      if constexpr (std::is_floating_point_v<T>) {
        st<T>(out, -std::numeric_limits<T>::infinity());
      } else {
        st<T>(out, std::numeric_limits<T>::lowest());
      }
      break;
    case BinOpCode::kMax:
      if constexpr (std::is_floating_point_v<T>) {
        st<T>(out, std::numeric_limits<T>::infinity());
      } else {
        st<T>(out, std::numeric_limits<T>::max());
      }
      break;
    default:
      *ok = false;
      break;
  }
}

template <class Fn>
bool dispatch_numeric(const Type* type, Fn&& fn) {
  switch (type->code()) {
    case TypeCode::kInt8: fn(int8_t{}); return true;
    case TypeCode::kUInt8: fn(uint8_t{}); return true;
    case TypeCode::kInt16: fn(int16_t{}); return true;
    case TypeCode::kUInt16: fn(uint16_t{}); return true;
    case TypeCode::kInt32: fn(int32_t{}); return true;
    case TypeCode::kUInt32: fn(uint32_t{}); return true;
    case TypeCode::kInt64: fn(int64_t{}); return true;
    case TypeCode::kUInt64: fn(uint64_t{}); return true;
    case TypeCode::kFP32: fn(float{}); return true;
    case TypeCode::kFP64: fn(double{}); return true;
    default: return false;
  }
}

}  // namespace

const BinaryOp* get_binary_op(BinOpCode op, TypeCode type) {
  int o = static_cast<int>(op);
  int c = static_cast<int>(type);
  if (o <= 0 || o >= kNumOps || c < 0 || c >= kNumBuiltinTypes)
    return nullptr;
  return registry().table[o][c].get();
}

Info binary_op_new(const BinaryOp** op, BinaryFn fn, const Type* ztype,
                   const Type* xtype, const Type* ytype, std::string name) {
  if (op == nullptr) return Info::kNullPointer;
  if (fn == nullptr) return Info::kNullPointer;
  if (ztype == nullptr || xtype == nullptr || ytype == nullptr)
    return Info::kNullPointer;
  auto* b = new BinaryOp(ztype, xtype, ytype, fn, BinOpCode::kCustom,
                         std::move(name));
  auto& u = user_ops();
  MutexLock lock(u.mu);
  u.live.insert(b);
  *op = b;
  return Info::kSuccess;
}

Info binary_op_free(const BinaryOp* op) {
  if (op == nullptr) return Info::kNullPointer;
  // Identify predefined operators by pointer identity (the handle may be
  // dangling, so it is never dereferenced here).
  for (int o = 1; o < kNumOps; ++o)
    for (int c = 0; c < kNumBuiltinTypes; ++c)
      if (registry().table[o][c].get() == op) return Info::kInvalidValue;
  auto& u = user_ops();
  MutexLock lock(u.mu);
  auto it = u.live.find(op);
  if (it == u.live.end()) return Info::kUninitializedObject;
  u.live.erase(it);
  delete op;
  return Info::kSuccess;
}

bool monoid_identity_value(BinOpCode op, const Type* type, void* out) {
  if (type == TypeBool()) {
    switch (op) {
      case BinOpCode::kLor:
      case BinOpCode::kLxor:
      case BinOpCode::kPlus:
      case BinOpCode::kMax:
        st<bool>(out, false);
        return true;
      case BinOpCode::kLand:
      case BinOpCode::kLxnor:
      case BinOpCode::kEq:
      case BinOpCode::kTimes:
      case BinOpCode::kMin:
        st<bool>(out, true);
        return true;
      default:
        return false;
    }
  }
  bool ok = true;
  bool dispatched = dispatch_numeric(type, [&](auto tag) {
    using T = decltype(tag);
    write_limits<T>(op, out, &ok);
  });
  return dispatched && ok;
}

bool monoid_terminal_value(BinOpCode op, const Type* type, void* out) {
  if (type == TypeBool()) {
    switch (op) {
      case BinOpCode::kLor:
      case BinOpCode::kPlus:
      case BinOpCode::kMax:
        st<bool>(out, true);
        return true;
      case BinOpCode::kLand:
      case BinOpCode::kTimes:
      case BinOpCode::kMin:
        st<bool>(out, false);
        return true;
      default:
        return false;
    }
  }
  bool ok = true;
  bool dispatched = dispatch_numeric(type, [&](auto tag) {
    using T = decltype(tag);
    write_terminal<T>(op, out, &ok);
  });
  return dispatched && ok;
}

bool op_is_monoid_candidate(BinOpCode op) {
  switch (op) {
    case BinOpCode::kPlus:
    case BinOpCode::kTimes:
    case BinOpCode::kMin:
    case BinOpCode::kMax:
    case BinOpCode::kLor:
    case BinOpCode::kLand:
    case BinOpCode::kLxor:
    case BinOpCode::kLxnor:
      return true;
    default:
      return false;
  }
}

}  // namespace grb
