// GrB_IndexUnaryOp: operators over a stored value AND its location,
// z = f(a_ij, [i,j], n, s)  — the paper's §VIII.A signature, where the
// indices are passed as an array of length n (2 for matrices, 1 for
// vectors) and s is a user-supplied scalar routed through apply/select.
#pragma once

#include <string>

#include "core/info.hpp"
#include "core/type.hpp"

namespace grb {

// Paper-faithful C signature (GraphBLAS 2.0 §VIII.A):
//   void f(void* out, const void* in, GrB_Index* indices, GrB_Index n,
//          const void* s);
using IndexUnaryFn = void (*)(void* out, const void* in, Index* indices,
                              Index n, const void* s);

enum class IdxOpCode : uint8_t {
  kCustom = 0,
  // "replace" family (apply): z has an index type.
  kRowIndex,   // z = i + s
  kColIndex,   // z = j + s           (matrix only)
  kDiagIndex,  // z = j - i + s       (matrix only)
  // "keep" family (select): z is BOOL.
  kTril,     // j <= i + s            (matrix only)
  kTriu,     // j >= i + s            (matrix only)
  kDiag,     // j == i + s            (matrix only)
  kOffdiag,  // j != i + s            (matrix only)
  kRowLE,    // i <= s
  kRowGT,    // i > s
  kColLE,    // j <= s                (matrix only)
  kColGT,    // j > s                 (matrix only)
  kValueEQ,  // a == s
  kValueNE,  // a != s
  kValueLT,  // a < s
  kValueLE,  // a <= s
  kValueGT,  // a > s
  kValueGE,  // a >= s
};

class IndexUnaryOp {
 public:
  // xtype == nullptr means the operator ignores the stored value and is
  // usable on any domain (positional operators of Table IV).
  IndexUnaryOp(const Type* ztype, const Type* xtype, const Type* stype,
               IndexUnaryFn fn, IdxOpCode opcode, std::string name)
      : ztype_(ztype),
        xtype_(xtype),
        stype_(stype),
        fn_(fn),
        opcode_(opcode),
        name_(std::move(name)) {}

  const Type* ztype() const { return ztype_; }
  const Type* xtype() const { return xtype_; }
  const Type* stype() const { return stype_; }
  IndexUnaryFn fn() const { return fn_; }
  IdxOpCode opcode() const { return opcode_; }
  const std::string& name() const { return name_; }
  bool value_agnostic() const { return xtype_ == nullptr; }

  void apply(void* out, const void* in, Index* indices, Index n,
             const void* s) const {
    fn_(out, in, indices, n, s);
  }

 private:
  const Type* ztype_;
  const Type* xtype_;
  const Type* stype_;
  IndexUnaryFn fn_;
  IdxOpCode opcode_;
  std::string name_;
};

// Positional predefined ops: `type` selects the output type for the
// "replace" family (INT32 or INT64; s has the same type) and is ignored
// for the boolean "keep" family (pass kInt64; s is INT64).
// Value-comparison ops (kValueXX): `type` is the value/s domain, output
// BOOL.  Returns nullptr for undefined combinations.
const IndexUnaryOp* get_index_unary_op(IdxOpCode op, TypeCode type);

Info index_unary_op_new(const IndexUnaryOp** op, IndexUnaryFn fn,
                        const Type* ztype, const Type* xtype,
                        const Type* stype,
                        std::string name = "user_index_unary_op");
Info index_unary_op_free(const IndexUnaryOp* op);

}  // namespace grb
