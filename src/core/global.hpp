// Library-wide sentinels and constants.
#pragma once

#include "core/type.hpp"

namespace grb {

// GrB_ALL: distinguished index-list sentinel meaning "all indices".
// Compared by address, never dereferenced.
const Index* all_indices();

// Sentinel count used with all_indices in the C API convenience layer.
inline constexpr Index kAllCount = ~Index{0};

}  // namespace grb
