// Library-wide sentinels, constants, tunables, and the lifecycle registry.
#pragma once

#include <cstddef>
#include <unordered_set>

#include "core/type.hpp"
#include "util/thread_annotations.hpp"

namespace grb {

class Context;

// ---- library lifecycle registry ------------------------------------------

// The single global registry behind GrB_init / GrB_finalize and the
// live-context set (paper §IV: contexts form a tree torn down by
// finalize).  Every field is guarded by `mu`; exec/context.cpp holds the
// only accessors, so lock discipline is enforced at compile time under
// the thread-safety preset rather than by convention.
struct GlobalRegistry {
  Mutex mu;
  bool initialized GRB_GUARDED_BY(mu) = false;
  Context* top GRB_GUARDED_BY(mu) = nullptr;
  std::unordered_set<Context*> live GRB_GUARDED_BY(mu);  // incl. top
};

// The process-wide registry.  Deliberately leaked (never destroyed) so
// teardown order can't race library calls from detached threads.
GlobalRegistry& global_registry();

// GrB_ALL: distinguished index-list sentinel meaning "all indices".
// Compared by address, never dereferenced.
const Index* all_indices();

// Sentinel count used with all_indices in the C API convenience layer.
inline constexpr Index kAllCount = ~Index{0};

// ---- parallel execution tunables -----------------------------------------

// Minimum number of stored entries an operation must process before its
// kernel takes the parallel path; anything smaller runs serially to avoid
// the fork/join overhead dwarfing the work.  The default favors staying
// serial for the small containers typical of unit tests and tight
// algorithm inner loops.
inline constexpr size_t kDefaultParallelThreshold = 8192;

// Current threshold (stored entries).  Thread-safe.
size_t parallel_threshold();

// Overrides the threshold; 0 means "always take the parallel path when the
// context has more than one thread" (used by the differential tests to
// force parallel kernels onto tiny inputs).
void set_parallel_threshold(size_t nnz);

}  // namespace grb
