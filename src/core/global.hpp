// Library-wide sentinels, constants, and tunables.
#pragma once

#include <cstddef>

#include "core/type.hpp"

namespace grb {

// GrB_ALL: distinguished index-list sentinel meaning "all indices".
// Compared by address, never dereferenced.
const Index* all_indices();

// Sentinel count used with all_indices in the C API convenience layer.
inline constexpr Index kAllCount = ~Index{0};

// ---- parallel execution tunables -----------------------------------------

// Minimum number of stored entries an operation must process before its
// kernel takes the parallel path; anything smaller runs serially to avoid
// the fork/join overhead dwarfing the work.  The default favors staying
// serial for the small containers typical of unit tests and tight
// algorithm inner loops.
inline constexpr size_t kDefaultParallelThreshold = 8192;

// Current threshold (stored entries).  Thread-safe.
size_t parallel_threshold();

// Overrides the threshold; 0 means "always take the parallel path when the
// context has more than one thread" (used by the differential tests to
// force parallel kernels onto tiny inputs).
void set_parallel_threshold(size_t nnz);

}  // namespace grb
