#include "core/monoid.hpp"

#include <memory>
#include <unordered_set>
#include "util/thread_annotations.hpp"

namespace grb {
namespace {

struct Registry {
  // Indexed [opcode][typecode]; only monoid-candidate opcodes populated.
  std::unique_ptr<Monoid> table[24][kNumBuiltinTypes];

  void add(BinOpCode op, TypeCode tc) {
    const BinaryOp* bop = get_binary_op(op, tc);
    if (bop == nullptr) return;
    if (bop->ztype() != bop->xtype() || bop->ztype() != bop->ytype()) return;
    const Type* t = bop->ztype();
    ValueBuf id(t->size());
    if (!monoid_identity_value(op, t, id.data())) return;
    ValueBuf term(t->size());
    bool has_term = monoid_terminal_value(op, t, term.data());
    table[static_cast<int>(op)][static_cast<int>(tc)] =
        std::make_unique<Monoid>(bop, std::move(id), has_term,
                                 std::move(term),
                                 bop->name() + "_MONOID");
  }

  Registry() {
    const BinOpCode numeric_ops[] = {BinOpCode::kPlus, BinOpCode::kTimes,
                                     BinOpCode::kMin, BinOpCode::kMax};
    const TypeCode numeric_types[] = {
        TypeCode::kInt8,  TypeCode::kUInt8,  TypeCode::kInt16,
        TypeCode::kUInt16, TypeCode::kInt32, TypeCode::kUInt32,
        TypeCode::kInt64, TypeCode::kUInt64, TypeCode::kFP32,
        TypeCode::kFP64};
    for (BinOpCode op : numeric_ops)
      for (TypeCode tc : numeric_types) add(op, tc);
    add(BinOpCode::kLor, TypeCode::kBool);
    add(BinOpCode::kLand, TypeCode::kBool);
    add(BinOpCode::kLxor, TypeCode::kBool);
    add(BinOpCode::kLxnor, TypeCode::kBool);
    // BOOL arithmetic monoids alias the logical ones semantically but are
    // still registered so GrB_PLUS_MONOID_BOOL-style lookups succeed.
    add(BinOpCode::kPlus, TypeCode::kBool);
    add(BinOpCode::kTimes, TypeCode::kBool);
    add(BinOpCode::kMin, TypeCode::kBool);
    add(BinOpCode::kMax, TypeCode::kBool);
  }
};

const Registry& registry() {
  static Registry* r = new Registry;
  return *r;
}

struct UserMonoids {
  Mutex mu;
  std::unordered_set<const Monoid*> live GRB_GUARDED_BY(mu);
};
UserMonoids& user_monoids() {
  static UserMonoids* u = new UserMonoids;
  return *u;
}

Info monoid_new_impl(const Monoid** monoid, const BinaryOp* op,
                     const void* identity, const void* terminal,
                     std::string name) {
  if (monoid == nullptr || op == nullptr || identity == nullptr)
    return Info::kNullPointer;
  if (op->ztype() != op->xtype() || op->ztype() != op->ytype())
    return Info::kDomainMismatch;
  const Type* t = op->ztype();
  ValueBuf id(t, identity);
  bool has_term = terminal != nullptr;
  ValueBuf term(t->size());
  if (has_term) std::memcpy(term.data(), terminal, t->size());
  auto* m = new Monoid(op, std::move(id), has_term, std::move(term),
                       std::move(name));
  auto& u = user_monoids();
  MutexLock lock(u.mu);
  u.live.insert(m);
  *monoid = m;
  return Info::kSuccess;
}

}  // namespace

const Monoid* get_monoid(BinOpCode op, TypeCode type) {
  int o = static_cast<int>(op);
  int c = static_cast<int>(type);
  if (o <= 0 || o >= 24 || c < 0 || c >= kNumBuiltinTypes) return nullptr;
  return registry().table[o][c].get();
}

Info monoid_new(const Monoid** monoid, const BinaryOp* op,
                const void* identity, std::string name) {
  return monoid_new_impl(monoid, op, identity, nullptr, std::move(name));
}

Info monoid_new_terminal(const Monoid** monoid, const BinaryOp* op,
                         const void* identity, const void* terminal,
                         std::string name) {
  if (terminal == nullptr) return Info::kNullPointer;
  return monoid_new_impl(monoid, op, identity, terminal, std::move(name));
}

Info monoid_free(const Monoid* monoid) {
  if (monoid == nullptr) return Info::kNullPointer;
  auto& u = user_monoids();
  MutexLock lock(u.mu);
  auto it = u.live.find(monoid);
  if (it == u.live.end()) return Info::kInvalidValue;  // predefined or dead
  u.live.erase(it);
  delete monoid;
  return Info::kSuccess;
}

}  // namespace grb
