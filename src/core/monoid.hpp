// GrB_Monoid: an associative, commutative binary operator on a single
// domain together with its identity (and optional terminal) value.
#pragma once

#include <string>

#include "core/binary_op.hpp"
#include "core/type.hpp"

namespace grb {

class Monoid {
 public:
  Monoid(const BinaryOp* op, ValueBuf identity, bool has_terminal,
         ValueBuf terminal, std::string name)
      : op_(op),
        identity_(std::move(identity)),
        has_terminal_(has_terminal),
        terminal_(std::move(terminal)),
        name_(std::move(name)) {}

  const BinaryOp* op() const { return op_; }
  const Type* type() const { return op_->ztype(); }
  const void* identity() const { return identity_.data(); }
  bool has_terminal() const { return has_terminal_; }
  const void* terminal() const { return terminal_.data(); }
  const std::string& name() const { return name_; }

  // True when `value` equals the terminal (allows early exit in reduces).
  bool is_terminal(const void* value) const {
    if (!has_terminal_) return false;
    return std::memcmp(value, terminal_.data(), type()->size()) == 0;
  }

 private:
  const BinaryOp* op_;
  ValueBuf identity_;
  bool has_terminal_;
  ValueBuf terminal_;
  std::string name_;
};

// Predefined monoids: PLUS/TIMES/MIN/MAX over the 10 numeric types,
// LOR/LAND/LXOR/LXNOR over BOOL.  Returns nullptr when undefined.
const Monoid* get_monoid(BinOpCode op, TypeCode type);

// User monoid from an arbitrary binary op (domains must all match) and a
// caller-provided identity value of that domain.
Info monoid_new(const Monoid** monoid, const BinaryOp* op,
                const void* identity, std::string name = "user_monoid");
// Variant with an explicit terminal value.
Info monoid_new_terminal(const Monoid** monoid, const BinaryOp* op,
                         const void* identity, const void* terminal,
                         std::string name = "user_monoid");
Info monoid_free(const Monoid* monoid);

}  // namespace grb
