#include "core/index_unary_op.hpp"

#include <memory>
#include <type_traits>
#include <unordered_set>
#include "util/thread_annotations.hpp"

namespace grb {
namespace {

template <class T>
T ld(const void* p) {
  T v;
  std::memcpy(&v, p, sizeof(T));
  return v;
}
template <class T>
void st(void* p, T v) {
  std::memcpy(p, &v, sizeof(T));
}

// For a vector (n == 1) the column index is taken equal to the row index;
// Table IV documents that matrix-only positional ops on vectors are
// undefined behaviour, so any total definition is conforming.
inline int64_t row_of(const Index* ind) { return static_cast<int64_t>(ind[0]); }
inline int64_t col_of(const Index* ind, Index n) {
  return static_cast<int64_t>(n >= 2 ? ind[1] : ind[0]);
}

// --- "replace" family ---------------------------------------------------
template <class Z>
void fn_rowindex(void* out, const void*, Index* ind, Index, const void* s) {
  st<Z>(out, static_cast<Z>(row_of(ind) + static_cast<int64_t>(ld<Z>(s))));
}
template <class Z>
void fn_colindex(void* out, const void*, Index* ind, Index n, const void* s) {
  st<Z>(out, static_cast<Z>(col_of(ind, n) + static_cast<int64_t>(ld<Z>(s))));
}
template <class Z>
void fn_diagindex(void* out, const void*, Index* ind, Index n,
                  const void* s) {
  st<Z>(out, static_cast<Z>(col_of(ind, n) - row_of(ind) +
                            static_cast<int64_t>(ld<Z>(s))));
}

// --- "keep" (positional) family ------------------------------------------
void fn_tril(void* out, const void*, Index* ind, Index n, const void* s) {
  st<bool>(out, col_of(ind, n) <= row_of(ind) + ld<int64_t>(s));
}
void fn_triu(void* out, const void*, Index* ind, Index n, const void* s) {
  st<bool>(out, col_of(ind, n) >= row_of(ind) + ld<int64_t>(s));
}
void fn_diag(void* out, const void*, Index* ind, Index n, const void* s) {
  st<bool>(out, col_of(ind, n) == row_of(ind) + ld<int64_t>(s));
}
void fn_offdiag(void* out, const void*, Index* ind, Index n, const void* s) {
  st<bool>(out, col_of(ind, n) != row_of(ind) + ld<int64_t>(s));
}
void fn_rowle(void* out, const void*, Index* ind, Index, const void* s) {
  st<bool>(out, row_of(ind) <= ld<int64_t>(s));
}
void fn_rowgt(void* out, const void*, Index* ind, Index, const void* s) {
  st<bool>(out, row_of(ind) > ld<int64_t>(s));
}
void fn_colle(void* out, const void*, Index* ind, Index n, const void* s) {
  st<bool>(out, col_of(ind, n) <= ld<int64_t>(s));
}
void fn_colgt(void* out, const void*, Index* ind, Index n, const void* s) {
  st<bool>(out, col_of(ind, n) > ld<int64_t>(s));
}

// --- "keep" (value) family -------------------------------------------------
template <class T>
void fn_valueeq(void* out, const void* in, Index*, Index, const void* s) {
  st<bool>(out, ld<T>(in) == ld<T>(s));
}
template <class T>
void fn_valuene(void* out, const void* in, Index*, Index, const void* s) {
  st<bool>(out, ld<T>(in) != ld<T>(s));
}
template <class T>
void fn_valuelt(void* out, const void* in, Index*, Index, const void* s) {
  st<bool>(out, ld<T>(in) < ld<T>(s));
}
template <class T>
void fn_valuele(void* out, const void* in, Index*, Index, const void* s) {
  st<bool>(out, ld<T>(in) <= ld<T>(s));
}
template <class T>
void fn_valuegt(void* out, const void* in, Index*, Index, const void* s) {
  st<bool>(out, ld<T>(in) > ld<T>(s));
}
template <class T>
void fn_valuege(void* out, const void* in, Index*, Index, const void* s) {
  st<bool>(out, ld<T>(in) >= ld<T>(s));
}

constexpr int kNumOps = 18;

struct Registry {
  std::unique_ptr<IndexUnaryOp> table[kNumOps][kNumBuiltinTypes];

  void add(IdxOpCode op, TypeCode tc, const Type* z, const Type* x,
           const Type* s, IndexUnaryFn fn, std::string name) {
    table[static_cast<int>(op)][static_cast<int>(tc)] =
        std::make_unique<IndexUnaryOp>(z, x, s, fn, op, std::move(name));
  }

  template <class Z>
  void add_replace_family() {
    const Type* zt = type_of<Z>();
    TypeCode tc = zt->code();
    std::string sfx = "_" + zt->name();
    add(IdxOpCode::kRowIndex, tc, zt, nullptr, zt, &fn_rowindex<Z>,
        "GrB_ROWINDEX" + sfx);
    add(IdxOpCode::kColIndex, tc, zt, nullptr, zt, &fn_colindex<Z>,
        "GrB_COLINDEX" + sfx);
    add(IdxOpCode::kDiagIndex, tc, zt, nullptr, zt, &fn_diagindex<Z>,
        "GrB_DIAGINDEX" + sfx);
  }

  void add_positional_bool(IdxOpCode op, IndexUnaryFn fn, const char* name) {
    // Registered under the INT64 slot; s is INT64, value is ignored.
    add(op, TypeCode::kInt64, TypeBool(), nullptr, TypeInt64(), fn, name);
  }

  template <class T>
  void add_value_family() {
    const Type* t = type_of<T>();
    TypeCode tc = t->code();
    std::string sfx = "_" + t->name();
    add(IdxOpCode::kValueEQ, tc, TypeBool(), t, t, &fn_valueeq<T>,
        "GrB_VALUEEQ" + sfx);
    add(IdxOpCode::kValueNE, tc, TypeBool(), t, t, &fn_valuene<T>,
        "GrB_VALUENE" + sfx);
    if constexpr (!std::is_same_v<T, bool>) {
      add(IdxOpCode::kValueLT, tc, TypeBool(), t, t, &fn_valuelt<T>,
          "GrB_VALUELT" + sfx);
      add(IdxOpCode::kValueLE, tc, TypeBool(), t, t, &fn_valuele<T>,
          "GrB_VALUELE" + sfx);
      add(IdxOpCode::kValueGT, tc, TypeBool(), t, t, &fn_valuegt<T>,
          "GrB_VALUEGT" + sfx);
      add(IdxOpCode::kValueGE, tc, TypeBool(), t, t, &fn_valuege<T>,
          "GrB_VALUEGE" + sfx);
    }
  }

  Registry() {
    add_replace_family<int32_t>();
    add_replace_family<int64_t>();

    add_positional_bool(IdxOpCode::kTril, &fn_tril, "GrB_TRIL");
    add_positional_bool(IdxOpCode::kTriu, &fn_triu, "GrB_TRIU");
    add_positional_bool(IdxOpCode::kDiag, &fn_diag, "GrB_DIAG");
    add_positional_bool(IdxOpCode::kOffdiag, &fn_offdiag, "GrB_OFFDIAG");
    add_positional_bool(IdxOpCode::kRowLE, &fn_rowle, "GrB_ROWLE");
    add_positional_bool(IdxOpCode::kRowGT, &fn_rowgt, "GrB_ROWGT");
    add_positional_bool(IdxOpCode::kColLE, &fn_colle, "GrB_COLLE");
    add_positional_bool(IdxOpCode::kColGT, &fn_colgt, "GrB_COLGT");

    add_value_family<bool>();
    add_value_family<int8_t>();
    add_value_family<uint8_t>();
    add_value_family<int16_t>();
    add_value_family<uint16_t>();
    add_value_family<int32_t>();
    add_value_family<uint32_t>();
    add_value_family<int64_t>();
    add_value_family<uint64_t>();
    add_value_family<float>();
    add_value_family<double>();
  }
};

const Registry& registry() {
  static Registry* r = new Registry;
  return *r;
}

struct UserOps {
  Mutex mu;
  std::unordered_set<const IndexUnaryOp*> live GRB_GUARDED_BY(mu);
};
UserOps& user_ops() {
  static UserOps* u = new UserOps;
  return *u;
}

}  // namespace

const IndexUnaryOp* get_index_unary_op(IdxOpCode op, TypeCode type) {
  int o = static_cast<int>(op);
  int c = static_cast<int>(type);
  if (o <= 0 || o >= kNumOps || c < 0 || c >= kNumBuiltinTypes)
    return nullptr;
  return registry().table[o][c].get();
}

Info index_unary_op_new(const IndexUnaryOp** op, IndexUnaryFn fn,
                        const Type* ztype, const Type* xtype,
                        const Type* stype, std::string name) {
  if (op == nullptr || fn == nullptr) return Info::kNullPointer;
  if (ztype == nullptr || xtype == nullptr || stype == nullptr)
    return Info::kNullPointer;
  auto* o = new IndexUnaryOp(ztype, xtype, stype, fn, IdxOpCode::kCustom,
                             std::move(name));
  auto& u = user_ops();
  MutexLock lock(u.mu);
  u.live.insert(o);
  *op = o;
  return Info::kSuccess;
}

Info index_unary_op_free(const IndexUnaryOp* op) {
  if (op == nullptr) return Info::kNullPointer;
  for (int o = 1; o < kNumOps; ++o)
    for (int c = 0; c < kNumBuiltinTypes; ++c)
      if (registry().table[o][c].get() == op) return Info::kInvalidValue;
  auto& u = user_ops();
  MutexLock lock(u.mu);
  auto it = u.live.find(op);
  if (it == u.live.end()) return Info::kUninitializedObject;
  u.live.erase(it);
  delete op;
  return Info::kSuccess;
}

}  // namespace grb
