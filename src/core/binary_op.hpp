// GrB_BinaryOp: binary operators z = f(x, y) over GraphBLAS domains.
//
// Operators carry runtime type descriptors and a C-ABI function pointer
// (the representation the C API requires for user-defined operators).
// Predefined operators additionally carry an opcode so kernels can
// dispatch to statically typed fast paths (see ops/fastpath.*), which is
// exactly the optimization the paper's Motivation section argues for.
#pragma once

#include <string>

#include "core/info.hpp"
#include "core/type.hpp"

namespace grb {

using BinaryFn = void (*)(void* z, const void* x, const void* y);

enum class BinOpCode : uint8_t {
  kCustom = 0,
  kFirst,
  kSecond,
  kOneb,
  kMin,
  kMax,
  kPlus,
  kMinus,
  kTimes,
  kDiv,
  kEq,
  kNe,
  kGt,
  kLt,
  kGe,
  kLe,
  kLor,
  kLand,
  kLxor,
  kLxnor,
  kBor,
  kBand,
  kBxor,
  kBxnor,
};

class BinaryOp {
 public:
  BinaryOp(const Type* ztype, const Type* xtype, const Type* ytype,
           BinaryFn fn, BinOpCode opcode, std::string name)
      : ztype_(ztype),
        xtype_(xtype),
        ytype_(ytype),
        fn_(fn),
        opcode_(opcode),
        name_(std::move(name)) {}

  const Type* ztype() const { return ztype_; }
  const Type* xtype() const { return xtype_; }
  const Type* ytype() const { return ytype_; }
  BinaryFn fn() const { return fn_; }
  BinOpCode opcode() const { return opcode_; }
  const std::string& name() const { return name_; }

  void apply(void* z, const void* x, const void* y) const { fn_(z, x, y); }

 private:
  const Type* ztype_;
  const Type* xtype_;
  const Type* ytype_;
  BinaryFn fn_;
  BinOpCode opcode_;
  std::string name_;
};

// Predefined operator lookup.  Returns nullptr when the (op, type) pair is
// not defined by the specification (e.g. bitwise ops on floats).
//
// Arithmetic ops (kFirst..kDiv) are T,T -> T for all 11 builtin types;
// comparisons (kEq..kLe) are T,T -> BOOL; logical ops (kLor..kLxnor) are
// BOOL only; bitwise ops (kBor..kBxnor) cover the 8 integer types.
//
// Domain conventions (documented, spec leaves some latitude):
//  * BOOL arithmetic: PLUS=LOR, TIMES=LAND, MIN=LAND, MAX=LOR, MINUS=LXOR,
//    DIV=FIRST, ONEB=true.
//  * Integer x/0 evaluates to 0 (no UB); float x/0 follows IEEE-754.
//  * Signed integer arithmetic wraps (computed in unsigned arithmetic).
const BinaryOp* get_binary_op(BinOpCode op, TypeCode type);

// Creates a user-defined binary operator.
Info binary_op_new(const BinaryOp** op, BinaryFn fn, const Type* ztype,
                   const Type* xtype, const Type* ytype,
                   std::string name = "user_binary_op");
Info binary_op_free(const BinaryOp* op);

// Writes the identity of the monoid <op, T> into `out` (whose size is
// type->size()).  Returns false when the op has no well-known identity.
bool monoid_identity_value(BinOpCode op, const Type* type, void* out);

// Writes the terminal (annihilator) value if one exists.
bool monoid_terminal_value(BinOpCode op, const Type* type, void* out);

// True when the op code is known to be associative and commutative for
// every domain it is defined on (candidates for predefined monoids).
bool op_is_monoid_candidate(BinOpCode op);

}  // namespace grb
