#include "core/descriptor.hpp"

#include <memory>
#include <unordered_set>
#include "util/thread_annotations.hpp"

namespace grb {
namespace {

struct UserDescs {
  Mutex mu;
  std::unordered_set<Descriptor*> live GRB_GUARDED_BY(mu);
};
UserDescs& user_descs() {
  static UserDescs* u = new UserDescs;
  return *u;
}

}  // namespace

Info Descriptor::set(DescField field, DescValue value) {
  switch (field) {
    case DescField::kOutp:
      if (value == DescValue::kDefault) {
        replace_ = false;
      } else if (value == DescValue::kReplace) {
        replace_ = true;
      } else {
        return Info::kInvalidValue;
      }
      return Info::kSuccess;
    case DescField::kMask: {
      int v = static_cast<int>(value);
      if ((v & ~(static_cast<int>(DescValue::kComp) |
                 static_cast<int>(DescValue::kStructure))) != 0)
        return Info::kInvalidValue;
      mask_comp_ = (v & static_cast<int>(DescValue::kComp)) != 0;
      mask_structure_ = (v & static_cast<int>(DescValue::kStructure)) != 0;
      return Info::kSuccess;
    }
    case DescField::kInp0:
      if (value == DescValue::kDefault) {
        tran0_ = false;
      } else if (value == DescValue::kTran) {
        tran0_ = true;
      } else {
        return Info::kInvalidValue;
      }
      return Info::kSuccess;
    case DescField::kInp1:
      if (value == DescValue::kDefault) {
        tran1_ = false;
      } else if (value == DescValue::kTran) {
        tran1_ = true;
      } else {
        return Info::kInvalidValue;
      }
      return Info::kSuccess;
  }
  return Info::kInvalidValue;
}

const Descriptor& Descriptor::defaults() {
  static const Descriptor d;
  return d;
}

const Descriptor* predefined_descriptor(unsigned bits) {
  // 32 combinations: replace(1), comp(2), structure(4), tran0(8), tran1(16)
  static const Descriptor* table = [] {
    auto* t = new Descriptor[32];
    for (unsigned b = 0; b < 32; ++b) {
      t[b] = Descriptor((b & 1u) != 0, (b & 2u) != 0, (b & 4u) != 0,
                        (b & 8u) != 0, (b & 16u) != 0);
    }
    return t;
  }();
  if (bits >= 32) return nullptr;
  if (bits == 0) return nullptr;  // "all defaults" is the NULL descriptor
  return &table[bits];
}

Info descriptor_new(Descriptor** desc) {
  if (desc == nullptr) return Info::kNullPointer;
  auto* d = new Descriptor();
  auto& u = user_descs();
  MutexLock lock(u.mu);
  u.live.insert(d);
  *desc = d;
  return Info::kSuccess;
}

Info descriptor_free(Descriptor* desc) {
  if (desc == nullptr) return Info::kNullPointer;
  auto& u = user_descs();
  MutexLock lock(u.mu);
  auto it = u.live.find(desc);
  if (it == u.live.end()) return Info::kInvalidValue;
  u.live.erase(it);
  delete desc;
  return Info::kSuccess;
}

}  // namespace grb
