// GrB_Type: runtime type descriptors for GraphBLAS domains.
//
// GraphBLAS values are stored type-erased (byte buffers with a stride).
// Builtin domains support implicit casting between one another, as the C
// API requires; user-defined types (UDTs) are opaque fixed-size PODs that
// only match themselves.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/info.hpp"
#include "obs/memory.hpp"

namespace grb {

using Index = uint64_t;

// Maximum dimension / index value accepted by this implementation
// (GrB_INDEX_MAX in the C API).
inline constexpr Index kIndexMax = (Index{1} << 60);

enum class TypeCode : uint8_t {
  kBool = 0,
  kInt8 = 1,
  kUInt8 = 2,
  kInt16 = 3,
  kUInt16 = 4,
  kInt32 = 5,
  kUInt32 = 6,
  kInt64 = 7,
  kUInt64 = 8,
  kFP32 = 9,
  kFP64 = 10,
  kUdt = 11,
};

inline constexpr int kNumBuiltinTypes = 11;

class Type {
 public:
  Type(TypeCode code, size_t size, std::string name)
      : code_(code), size_(size), name_(std::move(name)) {}

  TypeCode code() const { return code_; }
  size_t size() const { return size_; }
  const std::string& name() const { return name_; }
  bool is_builtin() const { return code_ != TypeCode::kUdt; }

  // The canonical descriptor for a builtin domain.
  static const Type* builtin(TypeCode code);

 private:
  TypeCode code_;
  size_t size_;
  std::string name_;
};

// Predefined GraphBLAS types (GrB_BOOL ... GrB_FP64).
const Type* TypeBool();
const Type* TypeInt8();
const Type* TypeUInt8();
const Type* TypeInt16();
const Type* TypeUInt16();
const Type* TypeInt32();
const Type* TypeUInt32();
const Type* TypeInt64();
const Type* TypeUInt64();
const Type* TypeFP32();
const Type* TypeFP64();

// Creates a user-defined type of `size` bytes.  The returned object is
// owned by the global registry and released by type_free / GrB_finalize.
Info type_new(const Type** type, size_t size, std::string name = "UDT");
Info type_free(const Type* type);

// Maps a C++ arithmetic type to its Type descriptor (tests/helpers).
template <class T>
const Type* type_of();

// ---------------------------------------------------------------------
// Type-erased value helpers.
// ---------------------------------------------------------------------

// True when a value of `from` may be implicitly cast to `to`: both
// builtin, or the identical UDT descriptor.
bool types_compatible(const Type* to, const Type* from);

using CastFn = void (*)(void* dst, const void* src);

// Returns the cast function converting `from`-typed bytes to `to`-typed
// bytes, or nullptr when the pair is incompatible.  For identical types
// the returned function is a memcpy of the type size.
CastFn cast_fn(const Type* to, const Type* from);

// Casts a single value; the types must be compatible.
void cast_value(const Type* to, void* dst, const Type* from, const void* src);

// Interprets a `type`-typed value as a boolean (mask truthiness).  UDT
// values are tested bytewise (any nonzero byte is true).
bool value_as_bool(const Type* type, const void* value);

// A dynamically sized, type-erased array of values with a fixed stride.
// Storage routes through obs::TrackedAlloc so every value block is
// attributed to its owning container's memory account (DESIGN.md §11).
class ValueArray {
 public:
  ValueArray() : stride_(1) {}
  explicit ValueArray(size_t stride) : stride_(stride ? stride : 1) {}
  ValueArray(size_t stride, std::shared_ptr<obs::MemAccount> acct)
      : stride_(stride ? stride : 1),
        bytes_(obs::TrackedAlloc<std::byte>(std::move(acct))) {}

  size_t stride() const { return stride_; }
  size_t size() const { return bytes_.size() / stride_; }
  bool empty() const { return bytes_.empty(); }

  void* at(size_t i) { return bytes_.data() + i * stride_; }
  const void* at(size_t i) const { return bytes_.data() + i * stride_; }
  void* data() { return bytes_.data(); }
  const void* data() const { return bytes_.data(); }
  size_t byte_size() const { return bytes_.size(); }

  void resize(size_t n) { bytes_.resize(n * stride_); }
  void reserve(size_t n) { bytes_.reserve(n * stride_); }
  void clear() { bytes_.clear(); }

  void set(size_t i, const void* value) {
    std::memcpy(at(i), value, stride_);
  }
  void push_back(const void* value) {
    size_t old = bytes_.size();
    bytes_.resize(old + stride_);
    std::memcpy(bytes_.data() + old, value, stride_);
  }
  // Appends `src[j]` from another array with the same stride.
  void push_back_from(const ValueArray& src, size_t j) {
    push_back(src.at(j));
  }

  // Typed accessors for tests and fast paths; T must match the stride.
  template <class T>
  T get_as(size_t i) const {
    T out;
    std::memcpy(&out, at(i), sizeof(T));
    return out;
  }
  template <class T>
  void set_as(size_t i, T v) {
    std::memcpy(at(i), &v, sizeof(T));
  }

 private:
  size_t stride_;
  obs::TrackedVec<std::byte> bytes_;
};

// A single type-erased value with small-buffer storage (used for monoid
// identities, scalars passed through operations, accumulator temps).
class ValueBuf {
 public:
  ValueBuf() = default;
  explicit ValueBuf(size_t size) { resize(size); }
  ValueBuf(const Type* type, const void* value) {
    resize(type->size());
    std::memcpy(data(), value, type->size());
  }

  void resize(size_t size) {
    size_ = size;
    if (size > sizeof(inline_)) heap_.resize(size);
  }
  size_t size() const { return size_; }
  void* data() { return size_ > sizeof(inline_) ? heap_.data() : inline_; }
  const void* data() const {
    return size_ > sizeof(inline_) ? heap_.data() : inline_;
  }
  // Bytes held outside the small buffer (memory-attribution snapshots).
  size_t heap_bytes() const {
    return size_ > sizeof(inline_) ? heap_.capacity() : 0;
  }

 private:
  size_t size_ = 0;
  std::byte inline_[32] = {};
  std::vector<std::byte> heap_;
};

template <>
inline const Type* type_of<bool>() { return TypeBool(); }
template <>
inline const Type* type_of<int8_t>() { return TypeInt8(); }
template <>
inline const Type* type_of<uint8_t>() { return TypeUInt8(); }
template <>
inline const Type* type_of<int16_t>() { return TypeInt16(); }
template <>
inline const Type* type_of<uint16_t>() { return TypeUInt16(); }
template <>
inline const Type* type_of<int32_t>() { return TypeInt32(); }
template <>
inline const Type* type_of<uint32_t>() { return TypeUInt32(); }
template <>
inline const Type* type_of<int64_t>() { return TypeInt64(); }
template <>
inline const Type* type_of<uint64_t>() { return TypeUInt64(); }
template <>
inline const Type* type_of<float>() { return TypeFP32(); }
template <>
inline const Type* type_of<double>() { return TypeFP64(); }

}  // namespace grb
