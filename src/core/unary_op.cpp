#include "core/unary_op.hpp"

#include <cmath>
#include <limits>
#include <memory>
#include <type_traits>
#include <unordered_set>
#include "util/thread_annotations.hpp"

namespace grb {
namespace {

template <class T>
T ld(const void* p) {
  T v;
  std::memcpy(&v, p, sizeof(T));
  return v;
}
template <class T>
void st(void* p, T v) {
  std::memcpy(p, &v, sizeof(T));
}

template <class T>
void fn_identity(void* z, const void* x) {
  st<T>(z, ld<T>(x));
}
template <class T>
void fn_ainv(void* z, const void* x) {
  if constexpr (std::is_same_v<T, bool>) {
    st<bool>(z, ld<bool>(x));
  } else if constexpr (std::is_integral_v<T>) {
    using U = std::make_unsigned_t<T>;
    st<T>(z, static_cast<T>(U{0} - static_cast<U>(ld<T>(x))));
  } else {
    st<T>(z, -ld<T>(x));
  }
}
template <class T>
void fn_minv(void* z, const void* x) {
  if constexpr (std::is_same_v<T, bool>) {
    st<bool>(z, true);
  } else if constexpr (std::is_integral_v<T>) {
    T v = ld<T>(x);
    st<T>(z, v == 0 ? T{0} : static_cast<T>(T{1} / v));
  } else {
    st<T>(z, T{1} / ld<T>(x));
  }
}
template <class T>
void fn_abs(void* z, const void* x) {
  if constexpr (std::is_same_v<T, bool>) {
    st<bool>(z, ld<bool>(x));
  } else if constexpr (std::is_unsigned_v<T>) {
    st<T>(z, ld<T>(x));
  } else if constexpr (std::is_integral_v<T>) {
    T v = ld<T>(x);
    if (v == std::numeric_limits<T>::min()) {
      st<T>(z, v);  // |INT_MIN| wraps to itself in 2's complement
    } else {
      st<T>(z, v < 0 ? static_cast<T>(-v) : v);
    }
  } else {
    st<T>(z, std::fabs(ld<T>(x)));
  }
}
void fn_lnot(void* z, const void* x) { st<bool>(z, !ld<bool>(x)); }
template <class T>
void fn_bnot(void* z, const void* x) {
  st<T>(z, static_cast<T>(~ld<T>(x)));
}

constexpr int kNumOps = 7;

struct Registry {
  std::unique_ptr<UnaryOp> table[kNumOps][kNumBuiltinTypes];

  template <class T>
  void add(UnOpCode op, UnaryFn fn, const char* opname) {
    const Type* t = type_of<T>();
    int o = static_cast<int>(op);
    int c = static_cast<int>(t->code());
    table[o][c] = std::make_unique<UnaryOp>(
        t, t, fn, op, std::string(opname) + "_" + t->name());
  }

  template <class T>
  void add_common() {
    add<T>(UnOpCode::kIdentity, &fn_identity<T>, "GrB_IDENTITY");
    add<T>(UnOpCode::kAinv, &fn_ainv<T>, "GrB_AINV");
    add<T>(UnOpCode::kMinv, &fn_minv<T>, "GrB_MINV");
    add<T>(UnOpCode::kAbs, &fn_abs<T>, "GrB_ABS");
    if constexpr (std::is_integral_v<T> && !std::is_same_v<T, bool>) {
      add<T>(UnOpCode::kBnot, &fn_bnot<T>, "GrB_BNOT");
    }
  }

  Registry() {
    add_common<bool>();
    add_common<int8_t>();
    add_common<uint8_t>();
    add_common<int16_t>();
    add_common<uint16_t>();
    add_common<int32_t>();
    add_common<uint32_t>();
    add_common<int64_t>();
    add_common<uint64_t>();
    add_common<float>();
    add_common<double>();
    add<bool>(UnOpCode::kLnot, &fn_lnot, "GrB_LNOT");
  }
};

const Registry& registry() {
  static Registry* r = new Registry;
  return *r;
}

struct UserOps {
  Mutex mu;
  std::unordered_set<const UnaryOp*> live GRB_GUARDED_BY(mu);
};
UserOps& user_ops() {
  static UserOps* u = new UserOps;
  return *u;
}

}  // namespace

const UnaryOp* get_unary_op(UnOpCode op, TypeCode type) {
  int o = static_cast<int>(op);
  int c = static_cast<int>(type);
  if (o <= 0 || o >= kNumOps || c < 0 || c >= kNumBuiltinTypes)
    return nullptr;
  return registry().table[o][c].get();
}

Info unary_op_new(const UnaryOp** op, UnaryFn fn, const Type* ztype,
                  const Type* xtype, std::string name) {
  if (op == nullptr || fn == nullptr) return Info::kNullPointer;
  if (ztype == nullptr || xtype == nullptr) return Info::kNullPointer;
  auto* u = new UnaryOp(ztype, xtype, fn, UnOpCode::kCustom, std::move(name));
  auto& reg = user_ops();
  MutexLock lock(reg.mu);
  reg.live.insert(u);
  *op = u;
  return Info::kSuccess;
}

Info unary_op_free(const UnaryOp* op) {
  if (op == nullptr) return Info::kNullPointer;
  for (int o = 1; o < kNumOps; ++o)
    for (int c = 0; c < kNumBuiltinTypes; ++c)
      if (registry().table[o][c].get() == op) return Info::kInvalidValue;
  auto& reg = user_ops();
  MutexLock lock(reg.mu);
  auto it = reg.live.find(op);
  if (it == reg.live.end()) return Info::kUninitializedObject;
  reg.live.erase(it);
  delete op;
  return Info::kSuccess;
}

}  // namespace grb
