// GrB_UnaryOp: unary operators z = f(x).
#pragma once

#include <string>

#include "core/info.hpp"
#include "core/type.hpp"

namespace grb {

using UnaryFn = void (*)(void* z, const void* x);

enum class UnOpCode : uint8_t {
  kCustom = 0,
  kIdentity,  // z = x
  kAinv,      // z = -x (additive inverse; wraps for integers)
  kMinv,      // z = 1/x (multiplicative inverse; integer 1/0 -> 0)
  kAbs,       // z = |x|
  kLnot,      // z = !x (BOOL only)
  kBnot,      // z = ~x (integer types)
};

class UnaryOp {
 public:
  UnaryOp(const Type* ztype, const Type* xtype, UnaryFn fn, UnOpCode opcode,
          std::string name)
      : ztype_(ztype),
        xtype_(xtype),
        fn_(fn),
        opcode_(opcode),
        name_(std::move(name)) {}

  const Type* ztype() const { return ztype_; }
  const Type* xtype() const { return xtype_; }
  UnaryFn fn() const { return fn_; }
  UnOpCode opcode() const { return opcode_; }
  const std::string& name() const { return name_; }

  void apply(void* z, const void* x) const { fn_(z, x); }

 private:
  const Type* ztype_;
  const Type* xtype_;
  UnaryFn fn_;
  UnOpCode opcode_;
  std::string name_;
};

// Predefined lookup; nullptr when the pair is not defined (LNOT on
// non-bool, BNOT on non-integer).
const UnaryOp* get_unary_op(UnOpCode op, TypeCode type);

Info unary_op_new(const UnaryOp** op, UnaryFn fn, const Type* ztype,
                  const Type* xtype, std::string name = "user_unary_op");
Info unary_op_free(const UnaryOp* op);

}  // namespace grb
