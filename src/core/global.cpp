#include "core/global.hpp"

namespace grb {

const Index* all_indices() {
  static const Index sentinel = 0;
  return &sentinel;
}

}  // namespace grb
