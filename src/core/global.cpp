#include "core/global.hpp"

#include <atomic>

namespace grb {
namespace {

std::atomic<size_t> g_parallel_threshold{kDefaultParallelThreshold};

}  // namespace

GlobalRegistry& global_registry() {
  static GlobalRegistry* g = new GlobalRegistry;
  return *g;
}

const Index* all_indices() {
  static const Index sentinel = 0;
  return &sentinel;
}

size_t parallel_threshold() {
  return g_parallel_threshold.load(std::memory_order_relaxed);
}

void set_parallel_threshold(size_t nnz) {
  g_parallel_threshold.store(nnz, std::memory_order_relaxed);
}

}  // namespace grb
