// GrB_Semiring: an additive monoid plus a multiplicative binary operator
// whose output domain matches the monoid domain.
#pragma once

#include <string>

#include "core/monoid.hpp"

namespace grb {

class Semiring {
 public:
  Semiring(const Monoid* add, const BinaryOp* mul, std::string name)
      : add_(add), mul_(mul), name_(std::move(name)) {}

  const Monoid* add() const { return add_; }
  const BinaryOp* mul() const { return mul_; }
  const std::string& name() const { return name_; }

 private:
  const Monoid* add_;
  const BinaryOp* mul_;
  std::string name_;
};

// Predefined semirings over the 10 numeric types:
//   PLUS_TIMES, MIN_PLUS, MAX_PLUS, MIN_TIMES, MAX_TIMES, MIN_MAX,
//   MAX_MIN, MIN_FIRST, MIN_SECOND, MAX_FIRST, MAX_SECOND
// and over BOOL: LOR_LAND, LAND_LOR, LXOR_LAND, LXNOR_LOR.
// `add`/`mul` name the constituent op codes; nullptr if undefined.
const Semiring* get_semiring(BinOpCode add, BinOpCode mul, TypeCode type);

Info semiring_new(const Semiring** semiring, const Monoid* add,
                  const BinaryOp* mul, std::string name = "user_semiring");
Info semiring_free(const Semiring* semiring);

}  // namespace grb
