#include "core/semiring.hpp"

#include <map>
#include <memory>
#include <unordered_set>
#include "util/thread_annotations.hpp"

namespace grb {
namespace {

struct Registry {
  std::map<std::tuple<BinOpCode, BinOpCode, TypeCode>,
           std::unique_ptr<Semiring>>
      table;

  void add(BinOpCode addop, BinOpCode mulop, TypeCode tc) {
    const Monoid* m = get_monoid(addop, tc);
    const BinaryOp* mul = get_binary_op(mulop, tc);
    if (m == nullptr || mul == nullptr) return;
    if (mul->ztype() != m->type()) return;
    table[{addop, mulop, tc}] = std::make_unique<Semiring>(
        m, mul, m->op()->name() + "_" + mul->name() + "_SEMIRING");
  }

  Registry() {
    const TypeCode numeric_types[] = {
        TypeCode::kInt8,  TypeCode::kUInt8,  TypeCode::kInt16,
        TypeCode::kUInt16, TypeCode::kInt32, TypeCode::kUInt32,
        TypeCode::kInt64, TypeCode::kUInt64, TypeCode::kFP32,
        TypeCode::kFP64};
    const std::pair<BinOpCode, BinOpCode> combos[] = {
        {BinOpCode::kPlus, BinOpCode::kTimes},
        {BinOpCode::kMin, BinOpCode::kPlus},
        {BinOpCode::kMax, BinOpCode::kPlus},
        {BinOpCode::kMin, BinOpCode::kTimes},
        {BinOpCode::kMax, BinOpCode::kTimes},
        {BinOpCode::kMin, BinOpCode::kMax},
        {BinOpCode::kMax, BinOpCode::kMin},
        {BinOpCode::kMin, BinOpCode::kFirst},
        {BinOpCode::kMin, BinOpCode::kSecond},
        {BinOpCode::kMax, BinOpCode::kFirst},
        {BinOpCode::kMax, BinOpCode::kSecond},
        {BinOpCode::kPlus, BinOpCode::kFirst},
        {BinOpCode::kPlus, BinOpCode::kSecond},
        {BinOpCode::kPlus, BinOpCode::kPlus},
        {BinOpCode::kPlus, BinOpCode::kMin},
    };
    for (auto [a, m] : combos)
      for (TypeCode tc : numeric_types) add(a, m, tc);
    add(BinOpCode::kLor, BinOpCode::kLand, TypeCode::kBool);
    add(BinOpCode::kLand, BinOpCode::kLor, TypeCode::kBool);
    add(BinOpCode::kLxor, BinOpCode::kLand, TypeCode::kBool);
    add(BinOpCode::kLxnor, BinOpCode::kLor, TypeCode::kBool);
    // PLUS_TIMES over BOOL degenerates to LOR_LAND but keeps its name.
    add(BinOpCode::kPlus, BinOpCode::kTimes, TypeCode::kBool);
    // Structural semirings used by BFS-like algorithms.
    add(BinOpCode::kLor, BinOpCode::kFirst, TypeCode::kBool);
    add(BinOpCode::kLor, BinOpCode::kSecond, TypeCode::kBool);
  }
};

const Registry& registry() {
  static Registry* r = new Registry;
  return *r;
}

struct UserSemirings {
  Mutex mu;
  std::unordered_set<const Semiring*> live GRB_GUARDED_BY(mu);
};
UserSemirings& user_semirings() {
  static UserSemirings* u = new UserSemirings;
  return *u;
}

}  // namespace

const Semiring* get_semiring(BinOpCode add, BinOpCode mul, TypeCode type) {
  const auto& t = registry().table;
  auto it = t.find({add, mul, type});
  return it == t.end() ? nullptr : it->second.get();
}

Info semiring_new(const Semiring** semiring, const Monoid* add,
                  const BinaryOp* mul, std::string name) {
  if (semiring == nullptr || add == nullptr || mul == nullptr)
    return Info::kNullPointer;
  if (mul->ztype() != add->type()) return Info::kDomainMismatch;
  auto* s = new Semiring(add, mul, std::move(name));
  auto& u = user_semirings();
  MutexLock lock(u.mu);
  u.live.insert(s);
  *semiring = s;
  return Info::kSuccess;
}

Info semiring_free(const Semiring* semiring) {
  if (semiring == nullptr) return Info::kNullPointer;
  auto& u = user_semirings();
  MutexLock lock(u.mu);
  auto it = u.live.find(semiring);
  if (it == u.live.end()) return Info::kInvalidValue;
  u.live.erase(it);
  delete semiring;
  return Info::kSuccess;
}

}  // namespace grb
