#include "core/type.hpp"

#include <memory>
#include <unordered_set>
#include "util/thread_annotations.hpp"

namespace grb {
namespace {

// Registry of live user-defined types so type_free / finalize can reclaim
// them and validation can reject dangling descriptors.
struct UdtRegistry {
  Mutex mu;
  std::unordered_set<const Type*> live GRB_GUARDED_BY(mu);
};

UdtRegistry& udt_registry() {
  static UdtRegistry* r = new UdtRegistry;
  return *r;
}

template <class To, class From>
void cast_impl(void* dst, const void* src) {
  From f;
  std::memcpy(&f, src, sizeof(From));
  To t = static_cast<To>(f);
  std::memcpy(dst, &t, sizeof(To));
}

// cast_table[to][from]
using CastRow = CastFn[kNumBuiltinTypes];

template <class To>
constexpr void fill_row(CastRow& row) {
  row[0] = &cast_impl<To, bool>;
  row[1] = &cast_impl<To, int8_t>;
  row[2] = &cast_impl<To, uint8_t>;
  row[3] = &cast_impl<To, int16_t>;
  row[4] = &cast_impl<To, uint16_t>;
  row[5] = &cast_impl<To, int32_t>;
  row[6] = &cast_impl<To, uint32_t>;
  row[7] = &cast_impl<To, int64_t>;
  row[8] = &cast_impl<To, uint64_t>;
  row[9] = &cast_impl<To, float>;
  row[10] = &cast_impl<To, double>;
}

struct CastTable {
  CastRow rows[kNumBuiltinTypes];
  CastTable() {
    fill_row<bool>(rows[0]);
    fill_row<int8_t>(rows[1]);
    fill_row<uint8_t>(rows[2]);
    fill_row<int16_t>(rows[3]);
    fill_row<uint16_t>(rows[4]);
    fill_row<int32_t>(rows[5]);
    fill_row<uint32_t>(rows[6]);
    fill_row<int64_t>(rows[7]);
    fill_row<uint64_t>(rows[8]);
    fill_row<float>(rows[9]);
    fill_row<double>(rows[10]);
  }
};

const CastTable& cast_table() {
  static CastTable t;
  return t;
}

template <size_t N>
void copy_n_bytes(void* dst, const void* src) {
  std::memcpy(dst, src, N);
}

}  // namespace

#define GRB_DEFINE_BUILTIN(fn_name, code, ctype, grb_name)              \
  const Type* fn_name() {                                               \
    static const Type t(code, sizeof(ctype), grb_name);                 \
    return &t;                                                          \
  }

GRB_DEFINE_BUILTIN(TypeBool, TypeCode::kBool, bool, "GrB_BOOL")
GRB_DEFINE_BUILTIN(TypeInt8, TypeCode::kInt8, int8_t, "GrB_INT8")
GRB_DEFINE_BUILTIN(TypeUInt8, TypeCode::kUInt8, uint8_t, "GrB_UINT8")
GRB_DEFINE_BUILTIN(TypeInt16, TypeCode::kInt16, int16_t, "GrB_INT16")
GRB_DEFINE_BUILTIN(TypeUInt16, TypeCode::kUInt16, uint16_t, "GrB_UINT16")
GRB_DEFINE_BUILTIN(TypeInt32, TypeCode::kInt32, int32_t, "GrB_INT32")
GRB_DEFINE_BUILTIN(TypeUInt32, TypeCode::kUInt32, uint32_t, "GrB_UINT32")
GRB_DEFINE_BUILTIN(TypeInt64, TypeCode::kInt64, int64_t, "GrB_INT64")
GRB_DEFINE_BUILTIN(TypeUInt64, TypeCode::kUInt64, uint64_t, "GrB_UINT64")
GRB_DEFINE_BUILTIN(TypeFP32, TypeCode::kFP32, float, "GrB_FP32")
GRB_DEFINE_BUILTIN(TypeFP64, TypeCode::kFP64, double, "GrB_FP64")
#undef GRB_DEFINE_BUILTIN

const Type* Type::builtin(TypeCode code) {
  switch (code) {
    case TypeCode::kBool: return TypeBool();
    case TypeCode::kInt8: return TypeInt8();
    case TypeCode::kUInt8: return TypeUInt8();
    case TypeCode::kInt16: return TypeInt16();
    case TypeCode::kUInt16: return TypeUInt16();
    case TypeCode::kInt32: return TypeInt32();
    case TypeCode::kUInt32: return TypeUInt32();
    case TypeCode::kInt64: return TypeInt64();
    case TypeCode::kUInt64: return TypeUInt64();
    case TypeCode::kFP32: return TypeFP32();
    case TypeCode::kFP64: return TypeFP64();
    case TypeCode::kUdt: return nullptr;
  }
  return nullptr;
}

Info type_new(const Type** type, size_t size, std::string name) {
  if (type == nullptr) return Info::kNullPointer;
  if (size == 0) return Info::kInvalidValue;
  auto* t = new Type(TypeCode::kUdt, size, std::move(name));
  {
    auto& reg = udt_registry();
    MutexLock lock(reg.mu);
    reg.live.insert(t);
  }
  *type = t;
  return Info::kSuccess;
}

Info type_free(const Type* type) {
  if (type == nullptr) return Info::kNullPointer;
  // Decide by pointer identity only: `type` may be a dangling handle
  // (double free), so it must not be dereferenced before it is known to
  // be live.
  for (int c = 0; c < kNumBuiltinTypes; ++c) {
    if (type == Type::builtin(static_cast<TypeCode>(c)))
      return Info::kInvalidValue;
  }
  auto& reg = udt_registry();
  MutexLock lock(reg.mu);
  auto it = reg.live.find(type);
  if (it == reg.live.end()) return Info::kUninitializedObject;
  reg.live.erase(it);
  delete type;
  return Info::kSuccess;
}

bool types_compatible(const Type* to, const Type* from) {
  if (to == from) return true;
  return to != nullptr && from != nullptr && to->is_builtin() &&
         from->is_builtin();
}

CastFn cast_fn(const Type* to, const Type* from) {
  if (to == nullptr || from == nullptr) return nullptr;
  if (to == from) {
    switch (to->size()) {
      case 1: return &copy_n_bytes<1>;
      case 2: return &copy_n_bytes<2>;
      case 4: return &copy_n_bytes<4>;
      case 8: return &copy_n_bytes<8>;
      default: return nullptr;  // callers handle same-UDT via memcpy path
    }
  }
  if (!to->is_builtin() || !from->is_builtin()) return nullptr;
  return cast_table()
      .rows[static_cast<int>(to->code())][static_cast<int>(from->code())];
}

void cast_value(const Type* to, void* dst, const Type* from,
                const void* src) {
  if (to == from) {
    std::memcpy(dst, src, to->size());
    return;
  }
  CastFn fn = cast_fn(to, from);
  fn(dst, src);
}

bool value_as_bool(const Type* type, const void* value) {
  switch (type->code()) {
    case TypeCode::kBool: {
      bool b;
      std::memcpy(&b, value, sizeof(bool));
      return b;
    }
    case TypeCode::kInt8:
    case TypeCode::kUInt8: {
      uint8_t v;
      std::memcpy(&v, value, 1);
      return v != 0;
    }
    case TypeCode::kInt16:
    case TypeCode::kUInt16: {
      uint16_t v;
      std::memcpy(&v, value, 2);
      return v != 0;
    }
    case TypeCode::kInt32:
    case TypeCode::kUInt32: {
      uint32_t v;
      std::memcpy(&v, value, 4);
      return v != 0;
    }
    case TypeCode::kInt64:
    case TypeCode::kUInt64: {
      uint64_t v;
      std::memcpy(&v, value, 8);
      return v != 0;
    }
    case TypeCode::kFP32: {
      float v;
      std::memcpy(&v, value, 4);
      return v != 0.0f;
    }
    case TypeCode::kFP64: {
      double v;
      std::memcpy(&v, value, 8);
      return v != 0.0;
    }
    case TypeCode::kUdt: {
      const auto* bytes = static_cast<const unsigned char*>(value);
      for (size_t i = 0; i < type->size(); ++i)
        if (bytes[i] != 0) return true;
      return false;
    }
  }
  return false;
}

}  // namespace grb
