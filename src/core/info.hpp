// GrB_Info: return codes of every GraphBLAS method.
//
// GraphBLAS 2.0 pins the numeric value of every enumerator so that a
// program compiled against one conforming library links and runs against
// another (paper §IX, "Cleanup and Miscellany").  The values below are the
// ones published in the GraphBLAS C API 2.0 specification.
#pragma once

#include <cstdint>

namespace grb {

enum class Info : int {
  // Success codes.
  kSuccess = 0,
  kNoValue = 1,

  // API errors: the call was malformed.  Deterministic, never deferred,
  // and guaranteed not to have modified any arguments (paper §V).
  kUninitializedObject = -1,
  kNullPointer = -2,
  kInvalidValue = -3,
  kInvalidIndex = -4,
  kDomainMismatch = -5,
  kDimensionMismatch = -6,
  kOutputNotEmpty = -7,
  kNotImplemented = -8,

  // Execution errors: a well-formed invocation failed while executing.
  // In nonblocking mode these may be deferred and reported by a later
  // method on the same object or by GrB_wait (paper §V).
  kPanic = -101,
  kOutOfMemory = -102,
  kInsufficientSpace = -103,
  kInvalidObject = -104,
  kIndexOutOfBounds = -105,
  kEmptyObject = -106,
};

// True for codes in the API-error band.
bool is_api_error(Info info);

// True for codes in the execution-error band.
bool is_execution_error(Info info);

// Human-readable name of the code ("GrB_SUCCESS", ...).
const char* info_name(Info info);

// Evaluates `expr` (a grb::Info expression) and returns it from the
// enclosing function if it is not kSuccess/kNoValue.  Internal shorthand.
#define GRB_RETURN_IF_ERROR(expr)                              \
  do {                                                         \
    ::grb::Info grb_return_if_error_info_ = (expr);            \
    if (static_cast<int>(grb_return_if_error_info_) < 0)       \
      return grb_return_if_error_info_;                        \
  } while (0)

}  // namespace grb
