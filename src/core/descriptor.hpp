// GrB_Descriptor: per-call modifiers (output replace, mask interpretation,
// input transposition).
#pragma once

#include <string>

#include "core/info.hpp"

namespace grb {

enum class DescField : int {
  kOutp = 0,  // output: default or REPLACE
  kMask = 1,  // mask: default, STRUCTURE, COMP, or STRUCTURE|COMP
  kInp0 = 2,  // first input: default or TRAN
  kInp1 = 3,  // second input: default or TRAN
};

enum class DescValue : int {
  kDefault = 0,
  kReplace = 1,
  kComp = 2,
  kStructure = 4,
  kTran = 8,
};

class Descriptor {
 public:
  Descriptor() = default;
  Descriptor(bool replace, bool comp, bool structure, bool tran0, bool tran1)
      : replace_(replace),
        mask_comp_(comp),
        mask_structure_(structure),
        tran0_(tran0),
        tran1_(tran1) {}

  bool replace() const { return replace_; }
  bool mask_comp() const { return mask_comp_; }
  bool mask_structure() const { return mask_structure_; }
  bool tran0() const { return tran0_; }
  bool tran1() const { return tran1_; }

  Info set(DescField field, DescValue value);

  // The semantics of a null descriptor pointer: all defaults.
  static const Descriptor& defaults();

 private:
  bool replace_ = false;
  bool mask_comp_ = false;
  bool mask_structure_ = false;
  bool tran0_ = false;
  bool tran1_ = false;
};

// The predefined descriptors (GrB_DESC_R, GrB_DESC_T0, ..., all valid
// combinations of REPLACE x {COMP,STRUCTURE} x TRAN0 x TRAN1).  `bits` is
// a bitmask: 1=replace, 2=comp, 4=structure, 8=tran0, 16=tran1.
const Descriptor* predefined_descriptor(unsigned bits);

Info descriptor_new(Descriptor** desc);
Info descriptor_free(Descriptor* desc);

// Resolves a possibly-null user pointer to a usable descriptor reference.
inline const Descriptor& resolve_desc(const Descriptor* desc) {
  return desc != nullptr ? *desc : Descriptor::defaults();
}

}  // namespace grb
