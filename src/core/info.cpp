#include "core/info.hpp"

namespace grb {

bool is_api_error(Info info) {
  int v = static_cast<int>(info);
  return v <= -1 && v >= -100;
}

bool is_execution_error(Info info) {
  return static_cast<int>(info) <= -101;
}

const char* info_name(Info info) {
  switch (info) {
    case Info::kSuccess: return "GrB_SUCCESS";
    case Info::kNoValue: return "GrB_NO_VALUE";
    case Info::kUninitializedObject: return "GrB_UNINITIALIZED_OBJECT";
    case Info::kNullPointer: return "GrB_NULL_POINTER";
    case Info::kInvalidValue: return "GrB_INVALID_VALUE";
    case Info::kInvalidIndex: return "GrB_INVALID_INDEX";
    case Info::kDomainMismatch: return "GrB_DOMAIN_MISMATCH";
    case Info::kDimensionMismatch: return "GrB_DIMENSION_MISMATCH";
    case Info::kOutputNotEmpty: return "GrB_OUTPUT_NOT_EMPTY";
    case Info::kNotImplemented: return "GrB_NOT_IMPLEMENTED";
    case Info::kPanic: return "GrB_PANIC";
    case Info::kOutOfMemory: return "GrB_OUT_OF_MEMORY";
    case Info::kInsufficientSpace: return "GrB_INSUFFICIENT_SPACE";
    case Info::kInvalidObject: return "GrB_INVALID_OBJECT";
    case Info::kIndexOutOfBounds: return "GrB_INDEX_OUT_OF_BOUNDS";
    case Info::kEmptyObject: return "GrB_EMPTY_OBJECT";
  }
  return "GrB_UNKNOWN_INFO";
}

}  // namespace grb
