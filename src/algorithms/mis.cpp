// Maximal independent set (Luby's algorithm).
//
// Each round, every candidate vertex draws a random priority; vertices
// whose priority beats every candidate neighbour's join the set, and they
// and their neighbours leave the candidate pool.
#include <vector>

#include "algorithms/algo_util.hpp"
#include "algorithms/algorithms.hpp"
#include "util/prng.hpp"

namespace grb_algo {

GrB_Info mis(GrB_Vector* iset, GrB_Matrix a, uint64_t seed) {
  if (iset == nullptr || a == nullptr) return GrB_NULL_POINTER;
  GrB_Index n;
  ALGO_TRY(GrB_Matrix_nrows(&n, a));

  GrB_Vector set = nullptr, cand = nullptr, r = nullptr, nmax = nullptr;
  GrB_Vector win = nullptr, newm = nullptr, nbr = nullptr;
  auto fail = [&](GrB_Info i) {
    GrB_free(&set);
    GrB_free(&cand);
    GrB_free(&r);
    GrB_free(&nmax);
    GrB_free(&win);
    GrB_free(&newm);
    GrB_free(&nbr);
    return i;
  };
  ALGO_TRY(GrB_Vector_new(&set, GrB_BOOL, n));
  ALGO_TRY_OR(GrB_Vector_new(&cand, GrB_BOOL, n), fail);
  ALGO_TRY_OR(GrB_Vector_new(&r, GrB_FP64, n), fail);
  ALGO_TRY_OR(GrB_Vector_new(&nmax, GrB_FP64, n), fail);
  ALGO_TRY_OR(GrB_Vector_new(&win, GrB_BOOL, n), fail);
  ALGO_TRY_OR(GrB_Vector_new(&newm, GrB_BOOL, n), fail);
  ALGO_TRY_OR(GrB_Vector_new(&nbr, GrB_BOOL, n), fail);
  ALGO_TRY_OR(
      GrB_assign(cand, GrB_NULL, GrB_NULL, true, GrB_ALL, n, GrB_NULL),
      fail);

  grb::Prng rng(seed);
  for (GrB_Index round = 0; round <= n; ++round) {
    GrB_Index ncand = 0;
    ALGO_TRY_OR(GrB_Vector_nvals(&ncand, cand), fail);
    if (ncand == 0) break;

    // r<cand, structure, replace> = random priorities in (0, 1].
    std::vector<GrB_Index> ci(ncand);
    GrB_Index got = ncand;
    ALGO_TRY_OR(GrB_Vector_extractTuples(ci.data(),
                                         static_cast<bool*>(nullptr), &got,
                                         cand),
                fail);
    ALGO_TRY_OR(GrB_Vector_clear(r), fail);
    for (GrB_Index k = 0; k < got; ++k) {
      double p = rng.uniform();
      ALGO_TRY_OR(GrB_Vector_setElement(r, p == 0.0 ? 0.5 : p, ci[k]),
                  fail);
    }
    ALGO_TRY_OR(GrB_wait(r, GrB_COMPLETE), fail);

    // nmax[j] = max candidate-neighbour priority.
    ALGO_TRY_OR(GrB_vxm(nmax, cand, GrB_NULL, GrB_MAX_FIRST_SEMIRING_FP64,
                        r, a, GrB_DESC_RS),
                fail);
    // Winners with candidate neighbours: r > nmax on the intersection.
    ALGO_TRY_OR(GrB_eWiseMult(win, GrB_NULL, GrB_NULL, GrB_GT_FP64, r, nmax,
                              GrB_DESC_R),
                fail);
    // Winners with no candidate neighbour: cand entries outside nmax's
    // structure (they always join).
    ALGO_TRY_OR(GrB_Vector_clear(newm), fail);
    ALGO_TRY_OR(GrB_apply(newm, nmax, GrB_NULL, GrB_IDENTITY_BOOL, cand,
                          GrB_DESC_SC),
                fail);
    // newm |= win-true entries (win is a value mask).
    ALGO_TRY_OR(
        GrB_assign(newm, win, GrB_NULL, true, GrB_ALL, n, GrB_NULL),
        fail);
    GrB_Index nnew = 0;
    ALGO_TRY_OR(GrB_Vector_nvals(&nnew, newm), fail);
    if (nnew == 0) continue;  // re-draw (ties)

    // set<newm> = true.
    ALGO_TRY_OR(
        GrB_assign(set, newm, GrB_NULL, true, GrB_ALL, n, GrB_NULL), fail);
    // nbr = neighbours of the new members (within candidates).
    ALGO_TRY_OR(GrB_vxm(nbr, cand, GrB_NULL, GrB_LOR_LAND_SEMIRING_BOOL,
                        newm, a, GrB_DESC_RS),
                fail);
    // cand = cand \ (newm u nbr): clear via masked assigns of "delete".
    ALGO_TRY_OR(GrB_apply(cand, newm, GrB_NULL, GrB_IDENTITY_BOOL, cand,
                          GrB_DESC_RSC),
                fail);
    ALGO_TRY_OR(GrB_apply(cand, nbr, GrB_NULL, GrB_IDENTITY_BOOL, cand,
                          GrB_DESC_RSC),
                fail);
  }
  GrB_free(&cand);
  GrB_free(&r);
  GrB_free(&nmax);
  GrB_free(&win);
  GrB_free(&newm);
  GrB_free(&nbr);
  *iset = set;
  return GrB_SUCCESS;
}

}  // namespace grb_algo
