#include "algorithms/algorithms.hpp"
#include "algorithms/algo_util.hpp"

namespace grb_algo {

GrB_Info make_undirected(GrB_Matrix* out, GrB_Matrix a) {
  if (out == nullptr || a == nullptr) return GrB_NULL_POINTER;
  GrB_Index n;
  ALGO_TRY(GrB_Matrix_nrows(&n, a));
  GrB_Matrix s = nullptr;
  ALGO_TRY(GrB_Matrix_new(&s, GrB_FP64, n, n));
  GrB_Info info =
      GrB_eWiseAdd(s, GrB_NULL, GrB_NULL, GrB_PLUS_FP64, a, a, GrB_DESC_T1);
  if (info != GrB_SUCCESS) {
    GrB_free(&s);
    return info;
  }
  *out = s;
  return GrB_SUCCESS;
}

GrB_Info bfs_level(GrB_Vector* level, GrB_Matrix a, GrB_Index source) {
  if (level == nullptr || a == nullptr) return GrB_NULL_POINTER;
  GrB_Index n;
  ALGO_TRY(GrB_Matrix_nrows(&n, a));
  if (source >= n) return GrB_INVALID_INDEX;

  GrB_Vector v = nullptr, q = nullptr;
  ALGO_TRY(GrB_Vector_new(&v, GrB_INT32, n));
  GrB_Info info = GrB_Vector_new(&q, GrB_BOOL, n);
  if (info != GrB_SUCCESS) {
    GrB_free(&v);
    return info;
  }
  auto fail = [&](GrB_Info i) {
    GrB_free(&v);
    GrB_free(&q);
    return i;
  };

  info = GrB_Vector_setElement(q, true, source);
  if (info != GrB_SUCCESS) return fail(info);
  for (int32_t depth = 0; depth < static_cast<int32_t>(n); ++depth) {
    GrB_Index nq = 0;
    info = GrB_Vector_nvals(&nq, q);
    if (info != GrB_SUCCESS) return fail(info);
    if (nq == 0) break;
    // v<q, structure> = depth
    info = GrB_assign(v, q, GrB_NULL, depth, GrB_ALL, n, GrB_DESC_S);
    if (info != GrB_SUCCESS) return fail(info);
    // q<!v, structure, replace> = q * A   (frontier expansion)
    info = GrB_vxm(q, v, GrB_NULL, GrB_LOR_LAND_SEMIRING_BOOL, q, a,
                   GrB_DESC_RSC);
    if (info != GrB_SUCCESS) return fail(info);
  }
  GrB_free(&q);
  *level = v;
  return GrB_SUCCESS;
}

GrB_Info bfs_parent(GrB_Vector* parent, GrB_Matrix a, GrB_Index source) {
  if (parent == nullptr || a == nullptr) return GrB_NULL_POINTER;
  GrB_Index n;
  ALGO_TRY(GrB_Matrix_nrows(&n, a));
  if (source >= n) return GrB_INVALID_INDEX;

  GrB_Vector p = nullptr, q = nullptr;
  ALGO_TRY(GrB_Vector_new(&p, GrB_INT64, n));
  GrB_Info info = GrB_Vector_new(&q, GrB_INT64, n);
  if (info != GrB_SUCCESS) {
    GrB_free(&p);
    return info;
  }
  auto fail = [&](GrB_Info i) {
    GrB_free(&p);
    GrB_free(&q);
    return i;
  };

  info = GrB_Vector_setElement(p, static_cast<int64_t>(source), source);
  if (info != GrB_SUCCESS) return fail(info);
  info = GrB_Vector_setElement(q, static_cast<int64_t>(source), source);
  if (info != GrB_SUCCESS) return fail(info);

  for (GrB_Index iter = 0; iter < n; ++iter) {
    // q<!p, structure, replace> = q min.first A : candidate parent per
    // newly reached vertex (q currently carries each frontier vertex's
    // own id, so FIRST propagates the parent id along the edge).
    info = GrB_vxm(q, p, GrB_NULL, GrB_MIN_FIRST_SEMIRING_INT64, q, a,
                   GrB_DESC_RSC);
    if (info != GrB_SUCCESS) return fail(info);
    GrB_Index nq = 0;
    info = GrB_Vector_nvals(&nq, q);
    if (info != GrB_SUCCESS) return fail(info);
    if (nq == 0) break;
    // p<q, structure> = q   (record parents)
    info = GrB_assign(p, q, GrB_NULL, q, GrB_ALL, n, GrB_DESC_S);
    if (info != GrB_SUCCESS) return fail(info);
    // q = ROWINDEX(q) + 0 : replace each entry's value with its own
    // vertex id for the next expansion — a GraphBLAS 2.0 index-unary
    // apply; in 1.X this required packing indices into the values array.
    info = GrB_apply(q, GrB_NULL, GrB_NULL, GrB_ROWINDEX_INT64, q,
                     static_cast<int64_t>(0), GrB_NULL);
    if (info != GrB_SUCCESS) return fail(info);
  }
  GrB_free(&q);
  *parent = p;
  return GrB_SUCCESS;
}

}  // namespace grb_algo
