// Local clustering coefficient:
//   lcc[v] = 2 * tri(v) / (deg(v) * (deg(v) - 1))
// for an undirected simple graph; vertices of degree < 2 get lcc 0.
#include "algorithms/algo_util.hpp"
#include "algorithms/algorithms.hpp"

namespace grb_algo {

GrB_Info local_clustering_coefficient(GrB_Vector* lcc, GrB_Matrix a) {
  if (lcc == nullptr || a == nullptr) return GrB_NULL_POINTER;
  GrB_Index n;
  ALGO_TRY(GrB_Matrix_nrows(&n, a));

  GrB_Matrix ones = nullptr, c = nullptr;
  GrB_Vector tri = nullptr, deg = nullptr, denom = nullptr, out = nullptr;
  auto fail = [&](GrB_Info i) {
    GrB_free(&ones);
    GrB_free(&c);
    GrB_free(&tri);
    GrB_free(&deg);
    GrB_free(&denom);
    GrB_free(&out);
    return i;
  };
  ALGO_TRY(GrB_Matrix_new(&ones, GrB_FP64, n, n));
  ALGO_TRY_OR(GrB_select(ones, GrB_NULL, GrB_NULL, GrB_OFFDIAG, a,
                         static_cast<int64_t>(0), GrB_NULL),
              fail);
  ALGO_TRY_OR(GrB_apply(ones, GrB_NULL, GrB_NULL, GrB_ONEB_FP64, ones, 1.0,
                        GrB_NULL),
              fail);
  // c<A, structure> = ones * ones' : wedges closed by an edge.
  ALGO_TRY_OR(GrB_Matrix_new(&c, GrB_FP64, n, n), fail);
  ALGO_TRY_OR(GrB_mxm(c, ones, GrB_NULL, GrB_PLUS_TIMES_SEMIRING_FP64, ones,
                      ones, GrB_DESC_ST1),
              fail);
  // tri[v] = row sum of c / 2 per endpoint accumulates both directions:
  // for symmetric input, row sum counts each triangle at v twice.
  ALGO_TRY_OR(GrB_Vector_new(&tri, GrB_FP64, n), fail);
  ALGO_TRY_OR(GrB_reduce(tri, GrB_NULL, GrB_NULL, GrB_PLUS_MONOID_FP64, c,
                         GrB_NULL),
              fail);
  ALGO_TRY_OR(GrB_apply(tri, GrB_NULL, GrB_NULL, GrB_TIMES_FP64, tri, 0.5,
                        GrB_NULL),
              fail);
  // deg[v] = row degree.
  ALGO_TRY_OR(GrB_Vector_new(&deg, GrB_FP64, n), fail);
  ALGO_TRY_OR(GrB_reduce(deg, GrB_NULL, GrB_NULL, GrB_PLUS_MONOID_FP64,
                         ones, GrB_NULL),
              fail);
  // denom[v] = deg * (deg - 1) / 2, clamped away from zero by masking.
  ALGO_TRY_OR(GrB_Vector_new(&denom, GrB_FP64, n), fail);
  ALGO_TRY_OR(GrB_apply(denom, GrB_NULL, GrB_NULL, GrB_MINUS_FP64, deg, 1.0,
                        GrB_NULL),
              fail);
  ALGO_TRY_OR(GrB_eWiseMult(denom, GrB_NULL, GrB_NULL, GrB_TIMES_FP64, deg,
                            denom, GrB_NULL),
              fail);
  ALGO_TRY_OR(GrB_apply(denom, GrB_NULL, GrB_NULL, GrB_TIMES_FP64, denom,
                        0.5, GrB_NULL),
              fail);
  // Keep only denominators > 0 (degree >= 2) using 2.0 select.
  ALGO_TRY_OR(GrB_select(denom, GrB_NULL, GrB_NULL, GrB_VALUEGT_FP64, denom,
                         0.0, GrB_NULL),
              fail);
  // lcc = tri ./ denom on the surviving vertices.
  ALGO_TRY_OR(GrB_Vector_new(&out, GrB_FP64, n), fail);
  ALGO_TRY_OR(GrB_eWiseMult(out, GrB_NULL, GrB_NULL, GrB_DIV_FP64, tri,
                            denom, GrB_NULL),
              fail);
  GrB_free(&ones);
  GrB_free(&c);
  GrB_free(&tri);
  GrB_free(&deg);
  GrB_free(&denom);
  *lcc = out;
  return GrB_SUCCESS;
}

}  // namespace grb_algo
