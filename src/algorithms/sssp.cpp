// Bellman-Ford SSSP over the MIN_PLUS semiring.
#include "algorithms/algo_util.hpp"
#include "algorithms/algorithms.hpp"

namespace grb_algo {

GrB_Info sssp(GrB_Vector* dist, GrB_Matrix a, GrB_Index source) {
  if (dist == nullptr || a == nullptr) return GrB_NULL_POINTER;
  GrB_Index n;
  ALGO_TRY(GrB_Matrix_nrows(&n, a));
  if (source >= n) return GrB_INVALID_INDEX;

  GrB_Vector d = nullptr, t = nullptr;
  ALGO_TRY(GrB_Vector_new(&d, GrB_FP64, n));
  GrB_Info info = GrB_Vector_new(&t, GrB_FP64, n);
  if (info != GrB_SUCCESS) {
    GrB_free(&d);
    return info;
  }
  auto fail = [&](GrB_Info i) {
    GrB_free(&d);
    GrB_free(&t);
    return i;
  };

  ALGO_TRY_OR(GrB_Vector_setElement(d, 0.0, source), fail);
  for (GrB_Index iter = 0; iter < n; ++iter) {
    // t = d min.+ A ; relax all edges one step.
    ALGO_TRY_OR(GrB_vxm(t, GrB_NULL, GrB_NULL, GrB_MIN_PLUS_SEMIRING_FP64,
                        d, a, GrB_NULL),
                fail);
    // t = min(t, d): keep the best distance seen so far.
    ALGO_TRY_OR(GrB_eWiseAdd(t, GrB_NULL, GrB_NULL, GrB_MIN_FP64, t, d,
                             GrB_NULL),
                fail);
    // Converged when t == d (same structure, all values equal).
    GrB_Index nd = 0, nt = 0;
    ALGO_TRY_OR(GrB_Vector_nvals(&nd, d), fail);
    ALGO_TRY_OR(GrB_Vector_nvals(&nt, t), fail);
    bool same = nd == nt;
    if (same && nd > 0) {
      GrB_Vector eq = nullptr;
      ALGO_TRY_OR(GrB_Vector_new(&eq, GrB_BOOL, n), fail);
      GrB_Info i2 = GrB_eWiseMult(eq, GrB_NULL, GrB_NULL, GrB_EQ_FP64, t, d,
                                  GrB_NULL);
      bool all = false;
      GrB_Index neq = 0;
      if (i2 == GrB_SUCCESS) i2 = GrB_Vector_nvals(&neq, eq);
      if (i2 == GrB_SUCCESS)
        i2 = GrB_reduce(&all, GrB_NULL, GrB_LAND_MONOID_BOOL, eq, GrB_NULL);
      GrB_free(&eq);
      if (i2 != GrB_SUCCESS) return fail(i2);
      same = all && neq == nd;
    }
    // d <-> t (adopt the relaxed distances).
    std::swap(d, t);
    if (same) break;
  }
  GrB_free(&t);
  *dist = d;
  return GrB_SUCCESS;
}

}  // namespace grb_algo
