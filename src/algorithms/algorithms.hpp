// Graph algorithms built on the public GraphBLAS 2.0 C API — the
// LAGraph-analog layer demonstrating that the specification supports real
// workloads.  Several algorithms deliberately exercise the paper's new
// 2.0 features: BFS-parent uses the ROWINDEX index-unary apply (§VIII.B),
// triangle counting and k-truss use GrB_select (§VIII.C), and everything
// runs in either blocking or nonblocking mode.
//
// Conventions: adjacency matrices are square; "undirected" algorithms
// expect a symmetric pattern (use RmatParams::symmetrize or
// make_undirected below).  Outputs are freshly allocated; callers free
// them with GrB_free.
#pragma once

#include "graphblas/GraphBLAS.h"

namespace grb_algo {

// A = A | A' (pattern-symmetrized, FP64 values summed).
GrB_Info make_undirected(GrB_Matrix* out, GrB_Matrix a);

// BFS levels from `source`: level[v] = hops from source (INT32; source=0).
GrB_Info bfs_level(GrB_Vector* level, GrB_Matrix a, GrB_Index source);

// BFS parents from `source` (INT64; parent[source] = source).  Uses the
// GraphBLAS 2.0 ROWINDEX index-unary operator to materialize vertex ids
// without storing indices in values (the paper's §II motivation).
GrB_Info bfs_parent(GrB_Vector* parent, GrB_Matrix a, GrB_Index source);

// Single-source shortest paths (Bellman-Ford over MIN_PLUS, FP64).
GrB_Info sssp(GrB_Vector* dist, GrB_Matrix a, GrB_Index source);

// PageRank with uniform teleport; returns the FP64 rank vector.
GrB_Info pagerank(GrB_Vector* rank, GrB_Matrix a, double damping,
                  int max_iters, double tol);

// Triangle count for an undirected graph (Sandia LL: C<L> = L*L', L =
// strict lower triangle via GrB_select/GrB_TRIL).
GrB_Info triangle_count(uint64_t* count, GrB_Matrix a);

// Connected components (Shiloach-Vishkin style min-label propagation,
// INT64 component labels).  Expects a symmetric pattern.
GrB_Info connected_components(GrB_Vector* comp, GrB_Matrix a);

// Maximal independent set (Luby), BOOL membership vector.
GrB_Info mis(GrB_Vector* iset, GrB_Matrix a, uint64_t seed);

// k-truss pattern of an undirected simple graph: the INT64 support
// matrix of the k-truss subgraph (edges with >= k-2 triangles).
GrB_Info ktruss(GrB_Matrix* truss, GrB_Matrix a, uint32_t k);

// Local clustering coefficient per vertex (FP64).
GrB_Info local_clustering_coefficient(GrB_Vector* lcc, GrB_Matrix a);

// k-core decomposition (iterative peeling via GrB_select/GrB_VALUELT).
// Returns INT64 coreness per vertex; vertices with no entry have
// coreness 0 (isolated).  Expects a symmetric pattern.
GrB_Info kcore(GrB_Vector* coreness, GrB_Matrix a);

// Batch betweenness centrality (Brandes) from the given source vertices;
// returns the (unnormalized) FP64 dependency sums.  Treats the graph as
// unweighted; expects no self-loops.
GrB_Info betweenness_centrality(GrB_Vector* bc, GrB_Matrix a,
                                const GrB_Index* sources,
                                GrB_Index num_sources);

}  // namespace grb_algo
