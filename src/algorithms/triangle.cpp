// Triangle counting (Sandia LL): ntri = sum(C) where C<L,struct> = L*L'
// and L is the strict lower triangle of the (symmetric, unweighted)
// adjacency matrix.  L is produced with the GraphBLAS 2.0 select/GrB_TRIL
// operation — the paper's §VIII.C flagship use case.
#include "algorithms/algo_util.hpp"
#include "algorithms/algorithms.hpp"

namespace grb_algo {

GrB_Info triangle_count(uint64_t* count, GrB_Matrix a) {
  if (count == nullptr || a == nullptr) return GrB_NULL_POINTER;
  GrB_Index n;
  ALGO_TRY(GrB_Matrix_nrows(&n, a));

  GrB_Matrix l = nullptr, ones = nullptr, c = nullptr;
  auto fail = [&](GrB_Info i) {
    GrB_free(&l);
    GrB_free(&ones);
    GrB_free(&c);
    return i;
  };
  // ones = pattern of A with INT64 value 1 everywhere.
  ALGO_TRY(GrB_Matrix_new(&ones, GrB_INT64, n, n));
  ALGO_TRY_OR(GrB_apply(ones, GrB_NULL, GrB_NULL, GrB_ONEB_INT64, a,
                        static_cast<int64_t>(1), GrB_NULL),
              fail);
  // l = strict lower triangle: select TRIL with s = -1 (j <= i - 1).
  ALGO_TRY_OR(GrB_Matrix_new(&l, GrB_INT64, n, n), fail);
  ALGO_TRY_OR(GrB_select(l, GrB_NULL, GrB_NULL, GrB_TRIL, ones,
                         static_cast<int64_t>(-1), GrB_NULL),
              fail);
  // c<l, structure> = l * l'
  ALGO_TRY_OR(GrB_Matrix_new(&c, GrB_INT64, n, n), fail);
  ALGO_TRY_OR(GrB_mxm(c, l, GrB_NULL, GrB_PLUS_TIMES_SEMIRING_INT64, l, l,
                      GrB_DESC_ST1),
              fail);
  int64_t ntri = 0;
  ALGO_TRY_OR(
      GrB_reduce(&ntri, GrB_NULL, GrB_PLUS_MONOID_INT64, c, GrB_NULL),
      fail);
  GrB_free(&l);
  GrB_free(&ones);
  GrB_free(&c);
  *count = static_cast<uint64_t>(ntri);
  return GrB_SUCCESS;
}

}  // namespace grb_algo
