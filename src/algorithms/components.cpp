// Connected components by min-label propagation with pointer jumping
// (Shiloach-Vishkin flavour).  Labels converge to the minimum vertex id
// of each component.  Expects a symmetric pattern.
#include "algorithms/algo_util.hpp"
#include "algorithms/algorithms.hpp"

#include <vector>

namespace grb_algo {
namespace {

// gp = f[f]: gather through the label vector (f is dense INT64).
GrB_Info gather(GrB_Vector gp, GrB_Vector f, GrB_Index n) {
  std::vector<GrB_Index> idx(n);
  std::vector<int64_t> vals(n);
  GrB_Index nv = n;
  ALGO_TRY(GrB_Vector_extractTuples(idx.data(), vals.data(), &nv, f));
  if (nv != n) return GrB_INVALID_OBJECT;  // algorithm keeps f dense
  std::vector<GrB_Index> through(n);
  for (GrB_Index k = 0; k < n; ++k)
    through[k] = static_cast<GrB_Index>(vals[k]);
  return GrB_extract(gp, GrB_NULL, GrB_NULL, f, through.data(), n,
                     GrB_NULL);
}

GrB_Info vectors_equal(bool* eq, GrB_Vector x, GrB_Vector y, GrB_Index n) {
  GrB_Vector cmp = nullptr;
  ALGO_TRY(GrB_Vector_new(&cmp, GrB_BOOL, n));
  GrB_Info info = GrB_eWiseMult(cmp, GrB_NULL, GrB_NULL, GrB_EQ_INT64, x, y,
                                GrB_NULL);
  bool all = true;
  GrB_Index nv = 0;
  if (info == GrB_SUCCESS) info = GrB_Vector_nvals(&nv, cmp);
  if (info == GrB_SUCCESS && nv > 0)
    info = GrB_reduce(&all, GrB_NULL, GrB_LAND_MONOID_BOOL, cmp, GrB_NULL);
  GrB_free(&cmp);
  if (info != GrB_SUCCESS) return info;
  *eq = all && nv == n;
  return GrB_SUCCESS;
}

}  // namespace

GrB_Info connected_components(GrB_Vector* comp, GrB_Matrix a) {
  if (comp == nullptr || a == nullptr) return GrB_NULL_POINTER;
  GrB_Index n;
  ALGO_TRY(GrB_Matrix_nrows(&n, a));

  GrB_Vector f = nullptr, mn = nullptr, prev = nullptr, gp = nullptr;
  auto fail = [&](GrB_Info i) {
    GrB_free(&f);
    GrB_free(&mn);
    GrB_free(&prev);
    GrB_free(&gp);
    return i;
  };
  ALGO_TRY(GrB_Vector_new(&f, GrB_INT64, n));
  ALGO_TRY_OR(GrB_Vector_new(&mn, GrB_INT64, n), fail);
  ALGO_TRY_OR(GrB_Vector_new(&gp, GrB_INT64, n), fail);
  // f[i] = i, built with the 2.0 ROWINDEX apply over a dense vector.
  ALGO_TRY_OR(GrB_assign(f, GrB_NULL, GrB_NULL, static_cast<int64_t>(0),
                         GrB_ALL, n, GrB_NULL),
              fail);
  ALGO_TRY_OR(GrB_apply(f, GrB_NULL, GrB_NULL, GrB_ROWINDEX_INT64, f,
                        static_cast<int64_t>(0), GrB_NULL),
              fail);

  for (GrB_Index iter = 0; iter < n; ++iter) {
    GrB_free(&prev);
    ALGO_TRY_OR(GrB_Vector_dup(&prev, f), fail);
    // mn[j] = min over in-neighbors i of f[i]; min with own label.
    ALGO_TRY_OR(GrB_vxm(mn, GrB_NULL, GrB_NULL,
                        GrB_MIN_FIRST_SEMIRING_INT64, f, a, GrB_DESC_R),
                fail);
    ALGO_TRY_OR(GrB_eWiseAdd(f, GrB_NULL, GrB_NULL, GrB_MIN_INT64, f, mn,
                             GrB_NULL),
                fail);
    // Pointer jumping: f = min(f, f[f]) until stable within the pass.
    for (GrB_Index hop = 0; hop < n; ++hop) {
      ALGO_TRY_OR(gather(gp, f, n), fail);
      bool same = false;
      ALGO_TRY_OR(vectors_equal(&same, gp, f, n), fail);
      if (same) break;
      ALGO_TRY_OR(GrB_eWiseAdd(f, GrB_NULL, GrB_NULL, GrB_MIN_INT64, f, gp,
                               GrB_NULL),
                  fail);
    }
    bool converged = false;
    ALGO_TRY_OR(vectors_equal(&converged, prev, f, n), fail);
    if (converged) break;
  }
  GrB_free(&mn);
  GrB_free(&prev);
  GrB_free(&gp);
  *comp = f;
  return GrB_SUCCESS;
}

}  // namespace grb_algo
