// PageRank with uniform teleportation (power iteration).
//
//   r_{k+1} = (1-damping)/n + damping * A' * (r_k ./ outdegree)
//
// Dangling vertices (no out-edges) are handled by redistributing their
// rank uniformly, which keeps the vector summing to 1.
#include <cmath>

#include "algorithms/algo_util.hpp"
#include "algorithms/algorithms.hpp"

namespace grb_algo {

GrB_Info pagerank(GrB_Vector* rank, GrB_Matrix a, double damping,
                  int max_iters, double tol) {
  if (rank == nullptr || a == nullptr) return GrB_NULL_POINTER;
  if (damping < 0.0 || damping >= 1.0) return GrB_INVALID_VALUE;
  GrB_Index n;
  ALGO_TRY(GrB_Matrix_nrows(&n, a));
  if (n == 0) return GrB_INVALID_VALUE;

  GrB_Vector r = nullptr, scaled = nullptr, outdeg = nullptr, diff = nullptr;
  auto fail = [&](GrB_Info i) {
    GrB_free(&r);
    GrB_free(&scaled);
    GrB_free(&outdeg);
    GrB_free(&diff);
    return i;
  };
  ALGO_TRY(GrB_Vector_new(&r, GrB_FP64, n));
  ALGO_TRY_OR(GrB_Vector_new(&scaled, GrB_FP64, n), fail);
  ALGO_TRY_OR(GrB_Vector_new(&outdeg, GrB_FP64, n), fail);
  ALGO_TRY_OR(GrB_Vector_new(&diff, GrB_FP64, n), fail);

  // outdeg[i] = number of out-edges (count via PLUS reduce of ONEB).
  GrB_Matrix ones = nullptr;
  ALGO_TRY_OR(GrB_Matrix_new(&ones, GrB_FP64, n, n), fail);
  GrB_Info info = GrB_apply(ones, GrB_NULL, GrB_NULL, GrB_ONEB_FP64, a, 1.0,
                            GrB_NULL);
  if (info == GrB_SUCCESS)
    info = GrB_reduce(outdeg, GrB_NULL, GrB_NULL, GrB_PLUS_MONOID_FP64, ones,
                      GrB_NULL);
  GrB_free(&ones);
  if (info != GrB_SUCCESS) return fail(info);

  // r = 1/n everywhere.
  ALGO_TRY_OR(
      GrB_assign(r, GrB_NULL, GrB_NULL, 1.0 / static_cast<double>(n),
                 GrB_ALL, n, GrB_NULL),
      fail);

  double teleport = (1.0 - damping) / static_cast<double>(n);
  for (int iter = 0; iter < max_iters; ++iter) {
    // scaled = r ./ outdeg on vertices with out-edges.
    ALGO_TRY_OR(GrB_eWiseMult(scaled, GrB_NULL, GrB_NULL, GrB_DIV_FP64, r,
                              outdeg, GrB_DESC_R),
                fail);
    // Dangling mass: total rank minus rank of non-dangling vertices.
    double total = 0.0, live = 0.0;
    ALGO_TRY_OR(
        GrB_reduce(&total, GrB_NULL, GrB_PLUS_MONOID_FP64, r, GrB_NULL),
        fail);
    GrB_Vector live_r = nullptr;
    ALGO_TRY_OR(GrB_Vector_new(&live_r, GrB_FP64, n), fail);
    info = GrB_eWiseMult(live_r, GrB_NULL, GrB_NULL, GrB_FIRST_FP64, r,
                         outdeg, GrB_NULL);
    if (info == GrB_SUCCESS)
      info = GrB_reduce(&live, GrB_NULL, GrB_PLUS_MONOID_FP64, live_r,
                        GrB_NULL);
    GrB_free(&live_r);
    if (info != GrB_SUCCESS) return fail(info);
    double dangling = total - live;

    // diff = previous r (for the convergence test).
    GrB_free(&diff);
    ALGO_TRY_OR(GrB_Vector_dup(&diff, r), fail);
    // r = teleport + damping * (scaled * A) + damping * dangling / n.
    // PLUS_FIRST propagates the scaled rank along edges structurally
    // (PageRank ignores edge weights).
    ALGO_TRY_OR(GrB_vxm(r, GrB_NULL, GrB_NULL, GrB_PLUS_FIRST_SEMIRING_FP64,
                        scaled, a, GrB_DESC_R),
                fail);
    ALGO_TRY_OR(GrB_apply(r, GrB_NULL, GrB_NULL, GrB_TIMES_FP64, r, damping,
                          GrB_NULL),
                fail);
    double base = teleport + damping * dangling / static_cast<double>(n);
    // r += base everywhere (accumulate so sparse r becomes dense).
    ALGO_TRY_OR(GrB_assign(r, GrB_NULL, GrB_PLUS_FP64, base, GrB_ALL, n,
                           GrB_NULL),
                fail);

    // L1 delta = reduce(|r - diff|).
    ALGO_TRY_OR(GrB_eWiseAdd(diff, GrB_NULL, GrB_NULL, GrB_MINUS_FP64, r,
                             diff, GrB_NULL),
                fail);
    ALGO_TRY_OR(GrB_apply(diff, GrB_NULL, GrB_NULL, GrB_ABS_FP64, diff,
                          GrB_NULL),
                fail);
    double delta = 0.0;
    ALGO_TRY_OR(
        GrB_reduce(&delta, GrB_NULL, GrB_PLUS_MONOID_FP64, diff, GrB_NULL),
        fail);
    if (delta < tol) break;
  }
  GrB_free(&scaled);
  GrB_free(&outdeg);
  GrB_free(&diff);
  *rank = r;
  return GrB_SUCCESS;
}

}  // namespace grb_algo
