// k-truss: iteratively keep edges supported by >= k-2 triangles.
// Uses the GraphBLAS 2.0 select operation with GrB_VALUEGE each round —
// the "functional input mask" of paper §VIII.C.
#include "algorithms/algo_util.hpp"
#include "algorithms/algorithms.hpp"

namespace grb_algo {

GrB_Info ktruss(GrB_Matrix* truss, GrB_Matrix a, uint32_t k) {
  if (truss == nullptr || a == nullptr) return GrB_NULL_POINTER;
  if (k < 3) return GrB_INVALID_VALUE;
  GrB_Index n;
  ALGO_TRY(GrB_Matrix_nrows(&n, a));

  GrB_Matrix b = nullptr, c = nullptr;
  auto fail = [&](GrB_Info i) {
    GrB_free(&b);
    GrB_free(&c);
    return i;
  };
  // b = pattern of A (minus diagonal) with INT64 ones.
  ALGO_TRY(GrB_Matrix_new(&b, GrB_INT64, n, n));
  ALGO_TRY_OR(GrB_select(b, GrB_NULL, GrB_NULL, GrB_OFFDIAG, a,
                         static_cast<int64_t>(0), GrB_NULL),
              fail);
  ALGO_TRY_OR(GrB_apply(b, GrB_NULL, GrB_NULL, GrB_ONEB_INT64, b,
                        static_cast<int64_t>(1), GrB_NULL),
              fail);
  ALGO_TRY_OR(GrB_Matrix_new(&c, GrB_INT64, n, n), fail);

  int64_t support = static_cast<int64_t>(k) - 2;
  GrB_Index last_nvals = ~GrB_Index{0};
  for (;;) {
    // c<b, structure, replace> = b * b' : per-edge triangle support.
    ALGO_TRY_OR(GrB_mxm(c, b, GrB_NULL, GrB_PLUS_TIMES_SEMIRING_INT64, b, b,
                        GrB_DESC_RST1),
                fail);
    // b = select(c, support >= k-2), keeping the support as the value.
    ALGO_TRY_OR(GrB_select(b, GrB_NULL, GrB_NULL, GrB_VALUEGE_INT64, c,
                           support, GrB_NULL),
                fail);
    GrB_Index nv = 0;
    ALGO_TRY_OR(GrB_Matrix_nvals(&nv, b), fail);
    if (nv == last_nvals || nv == 0) break;
    last_nvals = nv;
    // Reset values to 1 for the next support count.
    ALGO_TRY_OR(GrB_apply(b, GrB_NULL, GrB_NULL, GrB_ONEB_INT64, b,
                          static_cast<int64_t>(1), GrB_NULL),
                fail);
  }
  GrB_free(&c);
  *truss = b;
  return GrB_SUCCESS;
}

}  // namespace grb_algo
