// Internal helpers shared by the algorithm implementations.
#pragma once

#include "graphblas/GraphBLAS.h"

// Early-return helper for C-API call chains.
#define ALGO_TRY(expr)                                   \
  do {                                                   \
    GrB_Info algo_try_info_ = (expr);                    \
    if (algo_try_info_ != GrB_SUCCESS) {                 \
      return algo_try_info_;                             \
    }                                                    \
  } while (0)

// Like ALGO_TRY but routes through a cleanup lambda `fail`.
#define ALGO_TRY_OR(expr, fail)                          \
  do {                                                   \
    GrB_Info algo_try_info_ = (expr);                    \
    if (algo_try_info_ != GrB_SUCCESS) {                 \
      return (fail)(algo_try_info_);                     \
    }                                                    \
  } while (0)
