// Batch betweenness centrality (Brandes' algorithm in the language of
// linear algebra, after LAGraph's BC-batch): one forward BFS wave for a
// whole batch of sources at once (an ns x n frontier matrix), then the
// backward dependency accumulation, all through mxm with structural
// masks.
#include <vector>

#include "algorithms/algo_util.hpp"
#include "algorithms/algorithms.hpp"

namespace grb_algo {

GrB_Info betweenness_centrality(GrB_Vector* bc, GrB_Matrix a,
                                const GrB_Index* sources,
                                GrB_Index num_sources) {
  if (bc == nullptr || a == nullptr || sources == nullptr)
    return GrB_NULL_POINTER;
  if (num_sources == 0) return GrB_INVALID_VALUE;
  GrB_Index n;
  ALGO_TRY(GrB_Matrix_nrows(&n, a));
  for (GrB_Index s = 0; s < num_sources; ++s)
    if (sources[s] >= n) return GrB_INVALID_INDEX;

  const GrB_Index ns = num_sources;
  GrB_Matrix frontier = nullptr, numsp = nullptr, bcu = nullptr;
  GrB_Matrix w = nullptr;
  std::vector<GrB_Matrix> stack;  // boolean frontiers per level
  auto fail = [&](GrB_Info info) {
    GrB_free(&frontier);
    GrB_free(&numsp);
    GrB_free(&bcu);
    GrB_free(&w);
    for (GrB_Matrix& s : stack) GrB_free(&s);
    return info;
  };

  // frontier(s, sources[s]) = 1 ; numsp = frontier.
  ALGO_TRY(GrB_Matrix_new(&frontier, GrB_FP64, ns, n));
  for (GrB_Index s = 0; s < ns; ++s)
    ALGO_TRY_OR(GrB_Matrix_setElement(frontier, 1.0, s, sources[s]), fail);
  ALGO_TRY_OR(GrB_Matrix_dup(&numsp, frontier), fail);

  // Forward phase: frontier <!numsp, replace> = frontier +.first A;
  // numsp += frontier; stack records each level's pattern.
  for (GrB_Index depth = 0; depth < n; ++depth) {
    GrB_Index nf = 0;
    ALGO_TRY_OR(GrB_Matrix_nvals(&nf, frontier), fail);
    if (nf == 0) break;
    GrB_Matrix level = nullptr;
    ALGO_TRY_OR(GrB_Matrix_dup(&level, frontier), fail);
    stack.push_back(level);
    ALGO_TRY_OR(GrB_mxm(frontier, numsp, GrB_NULL,
                        GrB_PLUS_FIRST_SEMIRING_FP64, frontier, a,
                        GrB_DESC_RSC),
                fail);
    ALGO_TRY_OR(GrB_eWiseAdd(numsp, GrB_NULL, GrB_NULL, GrB_PLUS_FP64,
                             numsp, frontier, GrB_NULL),
                fail);
  }

  // Backward phase: accumulate dependencies level by level.
  //   w = S_k .* (1 + bcu) ./ numsp
  //   w = (w +.first A') masked by S_{k-1}
  //   bcu += w .* numsp
  ALGO_TRY_OR(GrB_Matrix_new(&bcu, GrB_FP64, ns, n), fail);
  ALGO_TRY_OR(GrB_Matrix_new(&w, GrB_FP64, ns, n), fail);
  for (size_t k = stack.size(); k-- > 1;) {
    // w<S_k, replace> = (1 + bcu) ./ numsp, restricted to level k:
    // first ones on the level's pattern, then add bcu under the mask.
    ALGO_TRY_OR(GrB_apply(w, stack[k], GrB_NULL, GrB_ONEB_FP64, stack[k],
                          1.0, GrB_DESC_RS),
                fail);
    ALGO_TRY_OR(GrB_eWiseAdd(w, stack[k], GrB_NULL, GrB_PLUS_FP64, w, bcu,
                             GrB_DESC_S),
                fail);
    ALGO_TRY_OR(GrB_eWiseMult(w, GrB_NULL, GrB_NULL, GrB_DIV_FP64, w,
                              numsp, GrB_NULL),
                fail);
    // Propagate along incoming edges: w<S_{k-1}, replace> = w +.first A'.
    ALGO_TRY_OR(GrB_mxm(w, stack[k - 1], GrB_NULL,
                        GrB_PLUS_FIRST_SEMIRING_FP64, w, a,
                        GrB_DESC_RST1),
                fail);
    // bcu += w .* numsp
    ALGO_TRY_OR(GrB_eWiseMult(w, GrB_NULL, GrB_NULL, GrB_TIMES_FP64, w,
                              numsp, GrB_NULL),
                fail);
    ALGO_TRY_OR(GrB_eWiseAdd(bcu, GrB_NULL, GrB_NULL, GrB_PLUS_FP64, bcu,
                             w, GrB_NULL),
                fail);
  }

  // Brandes excludes w == s: drop each source's own dependency entry
  // before summing.
  for (GrB_Index si = 0; si < ns; ++si)
    ALGO_TRY_OR(GrB_Matrix_removeElement(bcu, si, sources[si]), fail);
  // bc = column sums of bcu.
  GrB_Vector out = nullptr;
  ALGO_TRY_OR(GrB_Vector_new(&out, GrB_FP64, n), fail);
  ALGO_TRY_OR(GrB_reduce(out, GrB_NULL, GrB_NULL, GrB_PLUS_MONOID_FP64,
                         bcu, GrB_DESC_T0),
              fail);
  GrB_free(&frontier);
  GrB_free(&numsp);
  GrB_free(&bcu);
  GrB_free(&w);
  for (GrB_Matrix& s : stack) GrB_free(&s);
  *bc = out;
  return GrB_SUCCESS;
}

}  // namespace grb_algo
