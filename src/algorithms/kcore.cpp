// k-core decomposition by iterative peeling, driven by the GraphBLAS 2.0
// select operation: each round selects the vertices whose remaining
// degree is <= k (GrB_VALUELE), records their coreness, and subtracts
// their edges from the survivors' degrees.
#include "algorithms/algo_util.hpp"
#include "algorithms/algorithms.hpp"

namespace grb_algo {

GrB_Info kcore(GrB_Vector* coreness, GrB_Matrix a) {
  if (coreness == nullptr || a == nullptr) return GrB_NULL_POINTER;
  GrB_Index n;
  ALGO_TRY(GrB_Matrix_nrows(&n, a));

  GrB_Vector deg = nullptr, core = nullptr, sel = nullptr, ones = nullptr;
  GrB_Vector delta = nullptr;
  GrB_Matrix pattern = nullptr;
  auto fail = [&](GrB_Info info) {
    GrB_free(&deg);
    GrB_free(&core);
    GrB_free(&sel);
    GrB_free(&ones);
    GrB_free(&delta);
    GrB_free(&pattern);
    return info;
  };

  // pattern = off-diagonal structure with INT64 ones; deg = row degrees.
  ALGO_TRY(GrB_Matrix_new(&pattern, GrB_INT64, n, n));
  ALGO_TRY_OR(GrB_select(pattern, GrB_NULL, GrB_NULL, GrB_OFFDIAG, a,
                         int64_t{0}, GrB_NULL),
              fail);
  ALGO_TRY_OR(GrB_apply(pattern, GrB_NULL, GrB_NULL, GrB_ONEB_INT64,
                        pattern, int64_t{1}, GrB_NULL),
              fail);
  ALGO_TRY_OR(GrB_Vector_new(&deg, GrB_INT64, n), fail);
  ALGO_TRY_OR(GrB_reduce(deg, GrB_NULL, GrB_NULL, GrB_PLUS_MONOID_INT64,
                         pattern, GrB_NULL),
              fail);
  ALGO_TRY_OR(GrB_Vector_new(&core, GrB_INT64, n), fail);
  ALGO_TRY_OR(GrB_Vector_new(&sel, GrB_INT64, n), fail);
  ALGO_TRY_OR(GrB_Vector_new(&ones, GrB_INT64, n), fail);
  ALGO_TRY_OR(GrB_Vector_new(&delta, GrB_INT64, n), fail);
  // Isolated vertices (degree 0 / no entry in deg) have coreness 0.

  int64_t k = 1;
  for (;;) {
    GrB_Index remaining = 0;
    ALGO_TRY_OR(GrB_Vector_nvals(&remaining, deg), fail);
    if (remaining == 0) break;
    // sel = active vertices with degree < k.
    ALGO_TRY_OR(GrB_select(sel, GrB_NULL, GrB_NULL, GrB_VALUELT_INT64,
                           deg, k, GrB_NULL),
                fail);
    GrB_Index npeel = 0;
    ALGO_TRY_OR(GrB_Vector_nvals(&npeel, sel), fail);
    if (npeel == 0) {
      ++k;
      continue;
    }
    // Their coreness is k-1.
    ALGO_TRY_OR(GrB_assign(core, sel, GrB_NULL, k - 1, GrB_ALL, n,
                           GrB_DESC_S),
                fail);
    // Remove them from the active degree vector.
    ALGO_TRY_OR(GrB_apply(deg, sel, GrB_NULL, GrB_IDENTITY_INT64, deg,
                          GrB_DESC_RSC),
                fail);
    // Each removed vertex decrements its neighbours' degrees.
    ALGO_TRY_OR(GrB_apply(ones, GrB_NULL, GrB_NULL, GrB_ONEB_INT64, sel,
                          int64_t{1}, GrB_DESC_R),
                fail);
    ALGO_TRY_OR(GrB_vxm(delta, GrB_NULL, GrB_NULL,
                        GrB_PLUS_FIRST_SEMIRING_INT64, ones, pattern,
                        GrB_DESC_R),
                fail);
    // deg -= delta on the intersection, leaving untouched degrees alone:
    // tmp = deg - delta (intersection only), then merge via SECOND.
    ALGO_TRY_OR(GrB_eWiseMult(delta, GrB_NULL, GrB_NULL, GrB_MINUS_INT64,
                              deg, delta, GrB_NULL),
                fail);
    ALGO_TRY_OR(GrB_eWiseAdd(deg, GrB_NULL, GrB_NULL, GrB_SECOND_INT64,
                             deg, delta, GrB_NULL),
                fail);
  }
  GrB_free(&deg);
  GrB_free(&sel);
  GrB_free(&ones);
  GrB_free(&delta);
  GrB_free(&pattern);
  *coreness = core;
  return GrB_SUCCESS;
}

}  // namespace grb_algo
