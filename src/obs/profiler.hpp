// Hardware-counter profiler (observability layer 4, DESIGN.md §16).
//
// ProfScope brackets a kernel region and attributes a perf_event_open
// counter group — cycles, instructions, cache-misses, branch-misses —
// to the (context, op, strategy) key of the code that ran, so the
// decision audit's "we chose hash here" rows can be joined against
// measured IPC and miss rates (tools/grb_prof_report.py).
//
// Graceful degradation is mandatory, not best-effort: the backend is
// probed when the profiler is first enabled (and on every re-enable, so
// tests can force the path), and when perf_event_open is denied — the
// normal state in containers and CI — the scope falls back to
// CLOCK_THREAD_CPUTIME_ID (or getrusage(RUSAGE_THREAD) where even that
// clock is missing) and still produces consistent per-key records with
// zero hardware counters.  GRB_PERF_EVENTS=0 (or "off") forces the
// degraded backend; prof_backend_name() reports which backend is live,
// and the Prometheus exposition carries it as grb_prof_backend_info.
//
// Overhead contract: off by default behind kProfFlag in the shared
// g_flags word — a disabled ProfScope costs one relaxed load in its
// constructor and one branch in its destructor.
#pragma once

#include <cstdint>
#include <string>

#include "obs/telemetry.hpp"

namespace grb {
namespace obs {

enum class ProfBackend : uint8_t {
  kOff = 0,        // never probed / profiler unusable
  kPerf = 1,       // perf_event_open hardware counter groups
  kThreadCpu = 2,  // CLOCK_THREAD_CPUTIME_ID (no hardware counters)
  kRusage = 3,     // getrusage(RUSAGE_THREAD) (coarsest fallback)
};

// The live backend (probes on first query).  Never kOff after a probe:
// degradation always lands on a working clock.
ProfBackend prof_backend();
const char* prof_backend_name();  // "perf" | "thread-cputime" | "getrusage"

// Flips kProfFlag; enabling (re-)probes the backend so a changed
// GRB_PERF_EVENTS takes effect even mid-process.
void prof_set_enabled(bool on);

void prof_reset();  // drop all aggregated regions and totals

namespace detail {
// Raw begin-of-region snapshot.  Lives in the header only so ProfScope
// can embed it by value; treat as opaque.
struct ProfStart {
  uint64_t wall0 = 0;
  uint64_t cpu0 = 0;
  uint64_t time_enabled0 = 0;
  uint64_t time_running0 = 0;
  uint64_t vals0[4] = {0, 0, 0, 0};
  int n_events = 0;
};
void prof_begin(ProfStart* st);
void prof_end(const ProfStart& st, const char* op, const char* strategy);
}  // namespace detail

// RAII region around a kernel.  `op` defaults to the TLS current op;
// `strategy` names the alternative that ran ("hash", "dense", "dot",
// "saxpy", "fused", ...) and is the join key against DecisionRecord
// .chosen.  Both must have static storage duration.
class ProfScope {
 public:
  explicit ProfScope(const char* strategy, const char* op = nullptr)
      : active_(prof_enabled()),
        op_(op != nullptr ? op : current_op()),
        strategy_(strategy) {
    if (active_) detail::prof_begin(&start_);
  }
  ~ProfScope() {
    if (active_) detail::prof_end(start_, op_, strategy_);
  }
  ProfScope(const ProfScope&) = delete;
  ProfScope& operator=(const ProfScope&) = delete;

 private:
  bool active_;
  const char* op_;
  const char* strategy_;
  detail::ProfStart start_;
};

// --- Introspection --------------------------------------------------------
// "prof.regions", "prof.backend" (ProfBackend numeric), "prof.cycles",
// "prof.instructions", "prof.cache_misses", "prof.branch_misses",
// "prof.cpu_ns" — process totals across all keys.
bool prof_stats_get(const char* name, uint64_t* value);

// The "prof" object embedded in stats_json: live backend, region totals
// and the per-(context, op, strategy) aggregate table — the profiler
// half of the grb_prof_report.py join.
std::string prof_json();

// Appends grb_prof_backend_info plus per-key region/cycle/instruction/
// miss families to a Prometheus exposition.
void prof_prometheus(std::string& out);

// GRB_PROF=1 enables at init; GRB_PERF_EVENTS=0 forces the degraded
// backend (honored at every probe).
void prof_env_activate();

}  // namespace obs
}  // namespace grb
