#include "obs/flight_recorder.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/info.hpp"
#include "obs/telemetry.hpp"

namespace grb {
namespace obs {

namespace {

// One ring slot.  All fields are relaxed atomics so concurrent writers
// that lap the ring (two threads landing on the same slot) stay data-
// race-free; `seq` brackets the payload (0 = in progress, seq+1 = done)
// so readers can detect and skip torn entries.
struct Slot {
  std::atomic<uint64_t> seq{0};
  std::atomic<uint64_t> ts{0};
  std::atomic<const char*> op{nullptr};
  std::atomic<uint64_t> meta{0};  // info<<32 | kind<<24 | tid
  std::atomic<uint64_t> ext{0};   // ctx<<32 | flow (32-bit truncated)
};

struct Ring {
  explicit Ring(uint64_t cap) : slots(new Slot[cap]), mask(cap - 1) {}
  std::unique_ptr<Slot[]> slots;
  uint64_t mask;
  std::atomic<uint64_t> head{0};
};

std::atomic<Ring*> g_ring{nullptr};

// Control-path state (resize, dumps) behind one mutex; the record path
// never takes it.
std::mutex& ctl_mu() {
  static std::mutex mu;
  return mu;
}
// Retired rings are kept alive forever: a writer preempted mid-record
// may still hold a pointer into one.  Resizes are once-per-process
// events (env at init), so the leak is bounded and deliberate.
std::vector<std::unique_ptr<Ring>>& retired() {
  static auto* r = new std::vector<std::unique_ptr<Ring>>();
  return *r;
}
std::string& dump_path() {
  static auto* p = new std::string();
  return *p;
}
std::string& last_dump() {
  static auto* s = new std::string();
  return *s;
}
int g_auto_dumps = 0;

constexpr uint64_t kDefaultCapacity = 4096;
constexpr uint64_t kMaxCapacity = uint64_t{1} << 24;
constexpr uint64_t kAutoDumpTail = 256;  // events rendered per auto-dump
constexpr int kAutoDumpStderrBudget = 4;

uint32_t fr_tid() {
  static thread_local const uint32_t tid = static_cast<uint32_t>(
      std::hash<std::thread::id>{}(std::this_thread::get_id()) & 0xffffffu);
  return tid;
}

uint64_t pack_meta(FrKind kind, int32_t info, uint32_t tid) {
  return (static_cast<uint64_t>(static_cast<uint32_t>(info)) << 32) |
         (static_cast<uint64_t>(static_cast<uint8_t>(kind)) << 24) |
         (tid & 0xffffffu);
}

const char* kind_name(uint8_t kind) {
  switch (static_cast<FrKind>(kind)) {
    case FrKind::kApiEnter: return "api-enter";
    case FrKind::kApiError: return "api-error";
    case FrKind::kDeferredExec: return "deferred-exec";
    case FrKind::kPoison: return "poison";
    case FrKind::kFusionPlan: return "fusion-plan";
    case FrKind::kFusionExec: return "fusion-exec";
    case FrKind::kEnqueue: return "enqueue";
    case FrKind::kWatchdog: return "watchdog";
    case FrKind::kDecision: return "decision";
  }
  return "?";
}

uint64_t round_up_pow2(uint64_t v) {
  uint64_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

struct DecodedEvent {
  uint64_t seq;
  uint64_t ts;
  const char* op;
  uint8_t kind;
  int32_t info;
  uint32_t tid;
  uint32_t ctx;
  uint32_t flow;
};

// Snapshots the readable window of the ring, oldest first.  Torn or
// overwritten slots are skipped.
std::vector<DecodedEvent> snapshot_events(uint64_t max_events) {
  std::vector<DecodedEvent> out;
  Ring* r = g_ring.load(std::memory_order_acquire);
  if (r == nullptr) return out;
  const uint64_t cap = r->mask + 1;
  const uint64_t head = r->head.load(std::memory_order_acquire);
  uint64_t start = head > cap ? head - cap : 0;
  if (max_events != 0 && head - start > max_events)
    start = head - max_events;
  out.reserve(static_cast<size_t>(head - start));
  for (uint64_t seq = start; seq < head; ++seq) {
    Slot& s = r->slots[seq & r->mask];
    if (s.seq.load(std::memory_order_acquire) != seq + 1) continue;
    DecodedEvent e;
    e.seq = seq;
    e.ts = s.ts.load(std::memory_order_relaxed);
    e.op = s.op.load(std::memory_order_relaxed);
    uint64_t meta = s.meta.load(std::memory_order_relaxed);
    uint64_t ext = s.ext.load(std::memory_order_relaxed);
    if (s.seq.load(std::memory_order_acquire) != seq + 1) continue;
    e.info = static_cast<int32_t>(static_cast<uint32_t>(meta >> 32));
    e.kind = static_cast<uint8_t>((meta >> 24) & 0xffu);
    e.tid = static_cast<uint32_t>(meta & 0xffffffu);
    e.ctx = static_cast<uint32_t>(ext >> 32);
    e.flow = static_cast<uint32_t>(ext & 0xffffffffu);
    if (e.op == nullptr) continue;
    out.push_back(e);
  }
  return out;
}

}  // namespace

void fr_resize(uint64_t capacity) {
  std::lock_guard<std::mutex> lock(ctl_mu());
  if (capacity == 0) {
    detail::g_flags.fetch_and(~kFlightFlag, std::memory_order_relaxed);
    Ring* old = g_ring.exchange(nullptr, std::memory_order_acq_rel);
    if (old != nullptr) retired().emplace_back(old);
    return;
  }
  uint64_t cap = round_up_pow2(capacity > kMaxCapacity ? kMaxCapacity
                                                       : capacity);
  Ring* cur = g_ring.load(std::memory_order_acquire);
  if (cur == nullptr || cur->mask + 1 != cap) {
    Ring* next = new Ring(cap);
    Ring* old = g_ring.exchange(next, std::memory_order_acq_rel);
    if (old != nullptr) retired().emplace_back(old);
  }
  detail::g_flags.fetch_or(kFlightFlag, std::memory_order_relaxed);
}

uint64_t fr_capacity() {
  Ring* r = g_ring.load(std::memory_order_acquire);
  return r == nullptr ? 0 : r->mask + 1;
}

uint64_t fr_event_count() {
  Ring* r = g_ring.load(std::memory_order_acquire);
  return r == nullptr ? 0 : r->head.load(std::memory_order_relaxed);
}

uint64_t fr_overwrites() {
  Ring* r = g_ring.load(std::memory_order_acquire);
  if (r == nullptr) return 0;
  uint64_t head = r->head.load(std::memory_order_relaxed);
  uint64_t cap = r->mask + 1;
  return head > cap ? head - cap : 0;
}

void fr_record(FrKind kind, const char* op, int32_t info, uint64_t ctx,
               uint64_t flow) {
  Ring* r = g_ring.load(std::memory_order_acquire);
  if (r == nullptr) return;
  uint64_t seq = r->head.fetch_add(1, std::memory_order_relaxed);
  Slot& s = r->slots[seq & r->mask];
  s.seq.store(0, std::memory_order_release);  // invalidate for readers
  s.ts.store(now_ns(), std::memory_order_relaxed);
  s.op.store(op, std::memory_order_relaxed);
  s.meta.store(pack_meta(kind, info, fr_tid()), std::memory_order_relaxed);
  s.ext.store((ctx << 32) | (flow & 0xffffffffu), std::memory_order_relaxed);
  s.seq.store(seq + 1, std::memory_order_release);
}

void fr_api_result(const char* op, int32_t info) {
  if (info >= 0) return;
  fr_record(FrKind::kApiError, op, info);
  if (info == static_cast<int32_t>(Info::kPanic))
    fr_auto_dump("GrB_PANIC returned");
}

std::string fr_text(uint64_t max_events) {
  std::vector<DecodedEvent> events = snapshot_events(max_events);
  char line[192];
  std::string out;
  std::snprintf(line, sizeof line,
                "  events=%llu capacity=%llu overwrites=%llu\n",
                static_cast<unsigned long long>(fr_event_count()),
                static_cast<unsigned long long>(fr_capacity()),
                static_cast<unsigned long long>(fr_overwrites()));
  out.append(line);
  for (const DecodedEvent& e : events) {
    std::snprintf(line, sizeof line, "  #%-8llu %12llu  %06x  %-13s %s",
                  static_cast<unsigned long long>(e.seq),
                  static_cast<unsigned long long>(e.ts), e.tid,
                  kind_name(e.kind), e.op);
    out.append(line);
    if (e.ctx != 0 || e.flow != 0) {
      std::snprintf(line, sizeof line, " ctx=%u", e.ctx);
      out.append(line);
      if (e.flow != 0) {
        std::snprintf(line, sizeof line, " flow=%u", e.flow);
        out.append(line);
      }
    }
    if (e.info < 0) {
      out.push_back(' ');
      out.append(info_name(static_cast<Info>(e.info)));
    }
    out.push_back('\n');
  }
  return out;
}

std::string fr_trace_json() {
  std::vector<DecodedEvent> events = snapshot_events(0);
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  char line[256];
  bool first = true;
  for (const DecodedEvent& e : events) {
    out.append(first ? "\n" : ",\n");
    first = false;
    std::snprintf(line, sizeof line,
                  "{\"name\":\"%s\",\"cat\":\"flight\",\"ph\":\"i\","
                  "\"s\":\"t\",\"pid\":1,\"tid\":%u,\"ts\":%.3f,"
                  "\"args\":{\"kind\":\"%s\",\"seq\":%llu,\"info\":%d,"
                  "\"ctx\":%u,\"flow\":%u}}",
                  e.op, e.tid, e.ts / 1000.0, kind_name(e.kind),
                  static_cast<unsigned long long>(e.seq), e.info, e.ctx,
                  e.flow);
    out.append(line);
  }
  out.append("\n]}\n");
  return out;
}

bool fr_dump_file(const char* path) {
  if (path == nullptr) {
    std::string text = "flight recorder dump\n" + fr_text(0);
    std::fputs(text.c_str(), stderr);
    return true;
  }
  size_t n = std::strlen(path);
  bool json = n > 5 && std::strcmp(path + n - 5, ".json") == 0;
  std::string body =
      json ? fr_trace_json() : "flight recorder dump\n" + fr_text(0);
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) return false;
  std::fputs(body.c_str(), f);
  return std::fclose(f) == 0;
}

void fr_auto_dump(const char* reason) {
  if ((flags() & kFlightFlag) == 0) return;
  std::string text = std::string("flight recorder dump: ") + reason + "\n" +
                     fr_text(kAutoDumpTail);
  std::lock_guard<std::mutex> lock(ctl_mu());
  last_dump() = text;
  ++g_auto_dumps;
  const std::string& path = dump_path();
  if (path == "0") return;  // GRB_FLIGHT_DUMP=0 silences auto-dumps
  if (!path.empty()) {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f != nullptr) {
      std::fputs(fr_trace_json().c_str(), f);
      std::fclose(f);
    }
  }
  if (g_auto_dumps <= kAutoDumpStderrBudget) {
    // A wrapped ring means the dump below is missing the oldest events
    // — say so loudly, once per dump, with the fix spelled out.
    if (fr_overwrites() >= fr_capacity()) {
      std::fprintf(stderr,
                   "flight recorder: ring wrapped %llu times its capacity "
                   "(%llu events lost) -- the history below is truncated; "
                   "set GRB_FLIGHT_RECORDER=N to enlarge the ring\n",
                   static_cast<unsigned long long>(
                       fr_overwrites() / (fr_capacity() ? fr_capacity() : 1)),
                   static_cast<unsigned long long>(fr_overwrites()));
    }
    std::fputs(text.c_str(), stderr);
    if (g_auto_dumps == kAutoDumpStderrBudget) {
      std::fputs(
          "flight recorder: further automatic dumps suppressed "
          "(use GxB_FlightRecorder_dump)\n",
          stderr);
    }
  }
}

std::string fr_last_dump_text() {
  std::lock_guard<std::mutex> lock(ctl_mu());
  return last_dump();
}

void fr_env_activate() {
  const char* dump = std::getenv("GRB_FLIGHT_DUMP");
  if (dump != nullptr) {
    std::lock_guard<std::mutex> lock(ctl_mu());
    dump_path() = dump;
  }
  const char* size = std::getenv("GRB_FLIGHT_RECORDER");
  uint64_t cap = kDefaultCapacity;
  if (size != nullptr && size[0] != '\0') {
    cap = std::strtoull(size, nullptr, 10);
  }
  fr_resize(cap);
}

}  // namespace obs
}  // namespace grb
