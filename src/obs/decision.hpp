// Decision audit (observability layer 4, DESIGN.md §16).
//
// Every adaptive cost-model branch in the library — the places where the
// runtime, not the user, picks an execution strategy — records what it
// chose, what it rejected, what the model predicted, and (filled in
// after the kernel ran) what actually happened.  Records land in a
// fixed-size lock-free ring tagged with the owning context, surfaced
// four ways: GxB_Explain renders the newest records as text, the
// "decisions" block of GxB_Stats_json carries per-site aggregates, the
// Prometheus exposition exports decision.* record/mispredict families,
// and (flight-gated) each record also lands as a kDecision flight-
// recorder event so post-mortems show strategy choices inline with the
// causal op history.
//
// Overhead contract: emission gates on one relaxed load of g_flags
// (kDecisionFlag); when the bit is clear the site pays only that load.
// The record path is allocation-free — fixed slots, static-string
// alternative names — so sites inside no-alloc lock zones (format.cpp,
// spgemm, fusion) may emit directly, though they should still prefer to
// emit outside critical sections.
//
// Registry: GRB_DECISION_SITES below names every translation unit that
// hosts a cost-model branch.  tools/grb_analyze.py's
// decision-audit-coverage rule checks it both ways — a listed file must
// emit a DecisionRecord and an emitting file must be listed — so a new
// adaptive heuristic cannot land unaudited (see DESIGN.md §16 for the
// how-to).
#pragma once

#include <cstdint>
#include <string>

#include "obs/telemetry.hpp"

// Files hosting adaptive cost-model branch sites.  Every file listed
// here must call obs::decision_record (directly), and every file calling
// it outside src/obs/ must be listed — parity is enforced both
// directions by tools/grb_analyze.py (decision-audit-coverage).
#define GRB_DECISION_SITES      \
  "src/exec/context.cpp",       \
  "src/exec/fusion.cpp",        \
  "src/ops/spgemm.hpp",         \
  "src/ops/mxm.cpp",            \
  "src/containers/format.cpp"

namespace grb {
namespace obs {

// One enum value per adaptive decision site family.  Order is part of
// the counter schema ("decision.<site_name>.*"); append only.
enum class DecisionSite : uint8_t {
  kExecPath = 0,        // serial vs. parallel (exec/context.cpp)
  kSpgemmAccum = 1,     // hash vs. dense SPA rows (ops/spgemm.hpp)
  kMaskedDot = 2,       // dot-product vs. saxpy masked mxm (ops/mxm.cpp)
  kFormatAdapt = 3,     // storage-format switch (containers/format.cpp)
  kTransposeCache = 4,  // cached vs. rebuilt A' view (containers/format.cpp)
  kFusionPlan = 5,      // fused chains vs. eager replay (exec/fusion.cpp)
};
constexpr int kDecisionSiteCount = 6;

const char* decision_site_name(DecisionSite site);

// A completed audit record as readers see it.  Cost units are
// site-specific (flops for the kernels, cells/bytes for formats, node
// counts for fusion) — predicted and alternative share units within one
// site, which is all the mispredict test needs.
struct DecisionRecord {
  uint64_t seq = 0;          // global emission sequence (1-based)
  uint64_t ts_ns = 0;        // now_ns() at decision time
  uint64_t ctx = 0;          // owning obs context id (0 = unattributed)
  DecisionSite site = DecisionSite::kExecPath;
  const char* op = nullptr;      // attributed GrB op (static string)
  const char* chosen = nullptr;  // strategy taken (static string)
  const char* rejected = nullptr;  // strategy passed over (static string)
  double predicted_cost = 0;     // model's cost for the chosen strategy
  double alternative_cost = 0;   // model's cost for the rejected one
  uint64_t measured_ns = 0;      // wall time of the governed region
  uint64_t measured_units = 0;   // actual work done, in predicted units
  bool measured = false;         // decision_measure completed the record
  bool mispredict = false;       // measured work off by >2x from predicted
};

// Handle returned by decision_record so the site can complete the
// record after the kernel ran.  Zero-initialized tickets (decisions
// emitted while the audit was disabled) are ignored by decision_measure.
struct DecisionTicket {
  uint64_t seq = 0;   // 0 = inactive
  uint64_t t0 = 0;    // now_ns() at record time
  double predicted = 0;
  DecisionSite site = DecisionSite::kExecPath;
};

// Emits one record (gated on decision_enabled(); returns an inactive
// ticket when off).  All strings must have static storage duration.
// Attribution (op when null, ctx) comes from the TLS current-op slots.
DecisionTicket decision_record(DecisionSite site, const char* chosen,
                               const char* rejected, double predicted_cost,
                               double alternative_cost,
                               const char* op = nullptr);

// Completes a record post-execution: stamps measured wall-ns (now -
// ticket.t0) and the actual work in predicted-cost units, and counts a
// mispredict when both are positive and off by more than 2x either way.
// Pass measured_units = 0 when the site has no work metric (timing-only
// sites); the ns still lands but cannot mispredict.  Safe to call with
// an inactive ticket (no-op); tolerates the ring having lapped the slot
// (aggregates still count, the ring text just lost the row).
void decision_measure(const DecisionTicket& ticket, uint64_t measured_units);

// --- Control / introspection ----------------------------------------------
void decision_set_enabled(bool on);  // flips kDecisionFlag
void decision_reset();               // zero counters, clear the ring

// Newest-first snapshot of readable ring records.  `op` filters by
// exact attributed-op match when non-null/non-empty; `ctx` filters by
// owning context when nonzero; `max_records` 0 = all readable.
// Torn/overwritten slots are skipped.
int decision_snapshot(DecisionRecord* out, int max_records, const char* op,
                      uint64_t ctx);

// Human-readable audit rendering (backs GxB_Explain): one line per
// record, newest first, plus a per-site aggregate header.  Never empty:
// reports "decision audit disabled" / "no decisions recorded" when
// there is nothing to show.
std::string decision_explain(const char* op, uint64_t ctx);

// Counter lookup for names under "decision."  (see stats_get):
// "decision.records" / ".measured" / ".mispredicts" totals, and
// "decision.<site>.records" / ".measured" / ".mispredicts" /
// ".predicted_units" / ".measured_units" per site.
bool decision_stats_get(const char* name, uint64_t* value);

// The "decisions" object embedded in stats_json (enabled flag, ring
// occupancy, per-site aggregates).
std::string decision_json();

// Appends the decision.* Prometheus families (records/mispredicts per
// site) to `out`, matching the exposition style of stats_prometheus.
void decision_prometheus(std::string& out);

uint64_t decision_ring_capacity();

// GRB_DECISIONS=1 enables the audit at init (GxB_Stats_enable also
// turns it on: counters without their why are half an answer).
void decision_env_activate();

}  // namespace obs
}  // namespace grb
