#include "obs/profiler.hpp"

#include <atomic>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <map>
#include <mutex>
#include <string>
#include <tuple>

#if defined(__linux__) && __has_include(<linux/perf_event.h>)
#define GRB_HAVE_PERF_EVENT 1
#include <linux/perf_event.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace grb {
namespace obs {

namespace {

std::atomic<uint8_t> g_backend{0};      // ProfBackend
std::atomic<uint32_t> g_generation{0};  // bumped per probe; 0 = never

std::atomic<uint64_t> g_regions{0};
std::atomic<uint64_t> g_cycles{0};
std::atomic<uint64_t> g_instructions{0};
std::atomic<uint64_t> g_cache_misses{0};
std::atomic<uint64_t> g_branch_misses{0};
std::atomic<uint64_t> g_cpu_ns{0};

struct Agg {
  uint64_t count = 0;
  uint64_t cycles = 0;
  uint64_t instructions = 0;
  uint64_t cache_misses = 0;
  uint64_t branch_misses = 0;
  uint64_t cpu_ns = 0;
  uint64_t wall_ns = 0;
};
using AggKey = std::tuple<uint64_t, std::string, std::string>;

std::mutex& agg_mu() {
  static std::mutex mu;
  return mu;
}
std::map<AggKey, Agg>& agg_map() {
  static auto* m = new std::map<AggKey, Agg>();
  return *m;
}

bool perf_forced_off() {
  const char* v = std::getenv("GRB_PERF_EVENTS");
  if (v == nullptr) return false;
  return std::strcmp(v, "0") == 0 || std::strcmp(v, "off") == 0 ||
         std::strcmp(v, "OFF") == 0;
}

#ifdef GRB_HAVE_PERF_EVENT
int perf_open(uint32_t type, uint64_t config, int group_fd) {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof attr);
  attr.size = sizeof attr;
  attr.type = type;
  attr.config = config;
  attr.exclude_kernel = 1;
  attr.exclude_hv = 1;
  attr.read_format = PERF_FORMAT_GROUP | PERF_FORMAT_TOTAL_TIME_ENABLED |
                     PERF_FORMAT_TOTAL_TIME_RUNNING;
  return static_cast<int>(
      syscall(__NR_perf_event_open, &attr, 0, -1, group_fd, 0));
}

// Per-thread counter group, opened lazily and kept for the thread's
// lifetime.  `generation` detects a re-probe (tests flipping
// GRB_PERF_EVENTS) and forces a reopen so the backend switch is honored
// on threads that already built a group.
struct ThreadGroup {
  int leader = -1;
  int n_events = 0;
  uint32_t generation = 0;
};
thread_local ThreadGroup t_group;

constexpr uint64_t kEventConfigs[4] = {
    PERF_COUNT_HW_CPU_CYCLES, PERF_COUNT_HW_INSTRUCTIONS,
    PERF_COUNT_HW_CACHE_MISSES, PERF_COUNT_HW_BRANCH_MISSES};

void thread_group_close(ThreadGroup* g) {
  // Closing the leader tears down the whole group; member fds were
  // already handed to the kernel via the group and closed on open.
  if (g->leader >= 0) close(g->leader);
  g->leader = -1;
  g->n_events = 0;
}

// Opens cycles as leader plus as many of the remaining events as the
// PMU grants; a partially granted group still profiles (the missing
// tail reads as zero).
bool thread_group_open(ThreadGroup* g) {
  g->leader = perf_open(PERF_TYPE_HARDWARE, kEventConfigs[0], -1);
  if (g->leader < 0) return false;
  g->n_events = 1;
  for (int i = 1; i < 4; ++i) {
    int fd = perf_open(PERF_TYPE_HARDWARE, kEventConfigs[i], g->leader);
    if (fd < 0) break;
    // The group owns the event; the fd itself is not read directly.
    g->n_events = i + 1;
    (void)fd;
  }
  return true;
}

struct GroupReading {
  uint64_t time_enabled = 0;
  uint64_t time_running = 0;
  uint64_t values[4] = {0, 0, 0, 0};
  int n = 0;
};

bool thread_group_read(const ThreadGroup& g, GroupReading* out) {
  if (g.leader < 0 || g.n_events <= 0) return false;
  uint64_t buf[3 + 4];  // nr, time_enabled, time_running, values[<=4]
  ssize_t need = static_cast<ssize_t>((3 + g.n_events) * sizeof(uint64_t));
  if (read(g.leader, buf, static_cast<size_t>(need)) != need) return false;
  int nr = static_cast<int>(buf[0]);
  if (nr < 1 || nr > 4) return false;
  out->time_enabled = buf[1];
  out->time_running = buf[2];
  out->n = nr;
  for (int i = 0; i < nr; ++i) out->values[i] = buf[3 + i];
  return true;
}
#endif  // GRB_HAVE_PERF_EVENT

uint64_t thread_cpu_ns(ProfBackend backend) {
  if (backend == ProfBackend::kRusage) {
#if defined(RUSAGE_THREAD)
    struct rusage ru;
    if (getrusage(RUSAGE_THREAD, &ru) == 0) {
      uint64_t us =
          static_cast<uint64_t>(ru.ru_utime.tv_sec) * 1000000u +
          static_cast<uint64_t>(ru.ru_utime.tv_usec) +
          static_cast<uint64_t>(ru.ru_stime.tv_sec) * 1000000u +
          static_cast<uint64_t>(ru.ru_stime.tv_usec);
      return us * 1000u;
    }
#endif
    return 0;
  }
  struct timespec ts;
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) return 0;
  return static_cast<uint64_t>(ts.tv_sec) * 1000000000u +
         static_cast<uint64_t>(ts.tv_nsec);
}

// Probe is cheap (one syscall attempt), so every enable re-runs it:
// forced-degradation tests and changed environments take effect without
// process restart.  Guarded by a mutex only against concurrent probes.
void prof_probe() {
  static std::mutex mu;
  std::lock_guard<std::mutex> lock(mu);
  ProfBackend backend = ProfBackend::kOff;
  if (!perf_forced_off()) {
#ifdef GRB_HAVE_PERF_EVENT
    int fd = perf_open(PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES, -1);
    if (fd >= 0) {
      close(fd);
      backend = ProfBackend::kPerf;
    }
#endif
  }
  if (backend == ProfBackend::kOff) {
    struct timespec ts;
    backend = clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0
                  ? ProfBackend::kThreadCpu
                  : ProfBackend::kRusage;
  }
  g_backend.store(static_cast<uint8_t>(backend), std::memory_order_relaxed);
  g_generation.fetch_add(1, std::memory_order_release);
}

ProfBackend backend_now() {
  if (g_generation.load(std::memory_order_acquire) == 0) prof_probe();
  return static_cast<ProfBackend>(g_backend.load(std::memory_order_relaxed));
}

}  // namespace

ProfBackend prof_backend() { return backend_now(); }

const char* prof_backend_name() {
  switch (backend_now()) {
    case ProfBackend::kPerf: return "perf";
    case ProfBackend::kThreadCpu: return "thread-cputime";
    case ProfBackend::kRusage: return "getrusage";
    case ProfBackend::kOff: break;
  }
  return "off";
}

void prof_set_enabled(bool on) {
  if (on) {
    prof_probe();
    detail::g_flags.fetch_or(kProfFlag, std::memory_order_relaxed);
  } else {
    detail::g_flags.fetch_and(~kProfFlag, std::memory_order_relaxed);
  }
}

void prof_reset() {
  std::lock_guard<std::mutex> lock(agg_mu());
  agg_map().clear();
  g_regions.store(0, std::memory_order_relaxed);
  g_cycles.store(0, std::memory_order_relaxed);
  g_instructions.store(0, std::memory_order_relaxed);
  g_cache_misses.store(0, std::memory_order_relaxed);
  g_branch_misses.store(0, std::memory_order_relaxed);
  g_cpu_ns.store(0, std::memory_order_relaxed);
}

namespace detail {

void prof_begin(ProfStart* st) {
  ProfBackend backend = backend_now();
  st->wall0 = now_ns();
  st->cpu0 = thread_cpu_ns(backend);
  st->n_events = 0;
#ifdef GRB_HAVE_PERF_EVENT
  if (backend == ProfBackend::kPerf) {
    uint32_t gen = g_generation.load(std::memory_order_acquire);
    if (t_group.generation != gen) {
      thread_group_close(&t_group);
      t_group.generation = gen;
      thread_group_open(&t_group);
    }
    GroupReading r;
    if (thread_group_read(t_group, &r)) {
      st->time_enabled0 = r.time_enabled;
      st->time_running0 = r.time_running;
      st->n_events = r.n;
      for (int i = 0; i < r.n; ++i) st->vals0[i] = r.values[i];
    }
  }
#endif
}

void prof_end(const ProfStart& st, const char* op, const char* strategy) {
  ProfBackend backend = backend_now();
  uint64_t wall_ns = now_ns() - st.wall0;
  uint64_t cpu_end = thread_cpu_ns(backend);
  uint64_t cpu_ns = cpu_end > st.cpu0 ? cpu_end - st.cpu0 : 0;
  uint64_t vals[4] = {0, 0, 0, 0};
#ifdef GRB_HAVE_PERF_EVENT
  if (backend == ProfBackend::kPerf && st.n_events > 0) {
    GroupReading r;
    if (thread_group_read(t_group, &r) && r.n == st.n_events) {
      double scale = 1.0;
      uint64_t de = r.time_enabled - st.time_enabled0;
      uint64_t dr = r.time_running - st.time_running0;
      if (dr > 0 && de > dr)  // group was multiplexed: scale up
        scale = static_cast<double>(de) / static_cast<double>(dr);
      for (int i = 0; i < r.n; ++i) {
        uint64_t d = r.values[i] - st.vals0[i];
        vals[i] = static_cast<uint64_t>(static_cast<double>(d) * scale);
      }
    }
  }
#endif

  g_regions.fetch_add(1, std::memory_order_relaxed);
  g_cycles.fetch_add(vals[0], std::memory_order_relaxed);
  g_instructions.fetch_add(vals[1], std::memory_order_relaxed);
  g_cache_misses.fetch_add(vals[2], std::memory_order_relaxed);
  g_branch_misses.fetch_add(vals[3], std::memory_order_relaxed);
  g_cpu_ns.fetch_add(cpu_ns, std::memory_order_relaxed);

  std::lock_guard<std::mutex> lock(agg_mu());
  Agg& a = agg_map()[AggKey{current_ctx(), op, strategy}];
  a.count += 1;
  a.cycles += vals[0];
  a.instructions += vals[1];
  a.cache_misses += vals[2];
  a.branch_misses += vals[3];
  a.cpu_ns += cpu_ns;
  a.wall_ns += wall_ns;
}

}  // namespace detail

bool prof_stats_get(const char* name, uint64_t* value) {
  *value = 0;
  if (std::strncmp(name, "prof.", 5) != 0) return false;
  const char* rest = name + 5;
  if (std::strcmp(rest, "regions") == 0)
    *value = g_regions.load(std::memory_order_relaxed);
  else if (std::strcmp(rest, "backend") == 0)
    *value = g_backend.load(std::memory_order_relaxed);
  else if (std::strcmp(rest, "cycles") == 0)
    *value = g_cycles.load(std::memory_order_relaxed);
  else if (std::strcmp(rest, "instructions") == 0)
    *value = g_instructions.load(std::memory_order_relaxed);
  else if (std::strcmp(rest, "cache_misses") == 0)
    *value = g_cache_misses.load(std::memory_order_relaxed);
  else if (std::strcmp(rest, "branch_misses") == 0)
    *value = g_branch_misses.load(std::memory_order_relaxed);
  else if (std::strcmp(rest, "cpu_ns") == 0)
    *value = g_cpu_ns.load(std::memory_order_relaxed);
  else
    return false;
  return true;
}

std::string prof_json() {
  std::string out = "{";
  char buf[320];
  std::snprintf(buf, sizeof buf,
                "\"backend\":\"%s\",\"enabled\":%s,\"regions_total\":%" PRIu64
                ",\"regions\":[",
                prof_backend_name(), prof_enabled() ? "true" : "false",
                g_regions.load(std::memory_order_relaxed));
  out.append(buf);
  std::lock_guard<std::mutex> lock(agg_mu());
  bool first = true;
  for (const auto& [key, a] : agg_map()) {
    if (!first) out.push_back(',');
    first = false;
    std::snprintf(
        buf, sizeof buf,
        "{\"ctx\":%" PRIu64 ",\"op\":\"%s\",\"strategy\":\"%s\","
        "\"count\":%" PRIu64 ",\"cycles\":%" PRIu64
        ",\"instructions\":%" PRIu64 ",\"cache_misses\":%" PRIu64
        ",\"branch_misses\":%" PRIu64 ",\"cpu_ns\":%" PRIu64
        ",\"wall_ns\":%" PRIu64 "}",
        std::get<0>(key), std::get<1>(key).c_str(), std::get<2>(key).c_str(),
        a.count, a.cycles, a.instructions, a.cache_misses, a.branch_misses,
        a.cpu_ns, a.wall_ns);
    out.append(buf);
  }
  out.append("]}");
  return out;
}

void prof_prometheus(std::string& out) {
  char buf[320];
  out.append(
      "# HELP grb_prof_backend_info Live hardware-profiler backend "
      "(1 = active).\n# TYPE grb_prof_backend_info gauge\n");
  std::snprintf(buf, sizeof buf, "grb_prof_backend_info{backend=\"%s\"} 1\n",
                prof_backend_name());
  out.append(buf);

  std::lock_guard<std::mutex> lock(agg_mu());
  const auto& m = agg_map();
  if (m.empty()) return;
  struct Family {
    const char* name;
    const char* help;
    uint64_t Agg::* field;
  };
  static constexpr Family kFamilies[] = {
      {"grb_prof_regions_total", "Profiled kernel regions.", &Agg::count},
      {"grb_prof_cycles_total", "CPU cycles in profiled regions.",
       &Agg::cycles},
      {"grb_prof_instructions_total",
       "Instructions retired in profiled regions.", &Agg::instructions},
      {"grb_prof_cache_misses_total", "Cache misses in profiled regions.",
       &Agg::cache_misses},
      {"grb_prof_branch_misses_total", "Branch misses in profiled regions.",
       &Agg::branch_misses},
      {"grb_prof_cpu_ns_total", "Thread CPU nanoseconds in profiled regions.",
       &Agg::cpu_ns},
  };
  for (const Family& fam : kFamilies) {
    std::snprintf(buf, sizeof buf, "# HELP %s %s\n# TYPE %s counter\n",
                  fam.name, fam.help, fam.name);
    out.append(buf);
    for (const auto& [key, a] : m) {
      std::snprintf(buf, sizeof buf,
                    "%s{op=\"%s\",strategy=\"%s\",context=\"%" PRIu64
                    "\"} %" PRIu64 "\n",
                    fam.name, std::get<1>(key).c_str(),
                    std::get<2>(key).c_str(), std::get<0>(key), a.*fam.field);
      out.append(buf);
    }
  }
}

void prof_env_activate() {
  const char* v = std::getenv("GRB_PROF");
  if (v != nullptr && v[0] != '\0' && std::strcmp(v, "0") != 0)
    prof_set_enabled(true);
}

}  // namespace obs
}  // namespace grb
