// Telemetry: always-compiled, near-zero-overhead-when-disabled
// observability for the nonblocking execution machinery.
//
// Three instruments, all off by default:
//  * per-operation counters (stats): calls, nanoseconds, scalars
//    processed, flops (mxm/mxv/vxm), serial-fallback vs. parallel-path
//    decisions, deferred executions — keyed by (context id, GrB op
//    name), so two tenants sharing a process stay distinguishable;
//  * gauges: deferred-queue depth and pending-tuple count sampled at
//    enqueue/complete, plus thread-pool utilization (busy workers,
//    submitted/executed chunks, steals, parks) per pool, plus per-site
//    lock-contention wait histograms;
//  * spans (trace): Chrome trace-event JSON ("X" complete events around
//    every GrB_*/GxB_* entry and every deferred-method execution, "C"
//    counter events for gauges, "s"/"t" flow events linking an enqueue
//    to the deferred/fused execution it produced), loadable in
//    chrome://tracing / Perfetto.
//
// Overhead contract: every hook begins with one relaxed atomic load of
// g_flags; when all instruments are off the hook does nothing else.
// The only unconditional state is the thread-local current-op name and
// current-context id set at the C API boundary — four TLS stores per
// entry — which also powers the deferred-error diagnostics (GrB_error
// names the failing method), so it is part of the error model, not
// just telemetry.
//
// Activation: GxB_Stats_enable / GxB_Trace_start (see GraphBLAS.h), or
// the environment: GRB_STATS=1 enables counters and prints a JSON
// summary to stderr at GrB_finalize; GRB_TRACE=path.json records spans
// and dumps the trace file at GrB_finalize; GRB_WATCHDOG=ms arms the
// stall watchdog (see below).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

namespace grb {
namespace obs {

enum Flag : uint32_t {
  kStatsFlag = 1u,
  kTraceFlag = 2u,
  // The flight recorder (obs/flight_recorder.hpp) shares the gate so the
  // C API veneer still pays exactly one relaxed load when everything is
  // off.  It is ON by default after GrB_init (GRB_FLIGHT_RECORDER=0
  // disables), so hooks that only serve stats/trace must gate on
  // telemetry_enabled(), not enabled().
  kFlightFlag = 4u,
  // Stall watchdog armed (GRB_WATCHDOG=ms).  Lock wrappers and the
  // completion path register in-progress waits in the stall table only
  // when this bit is set.
  kWatchdogFlag = 8u,
  // Decision audit (obs/decision.hpp): adaptive cost-model sites record
  // what they chose/rejected/predicted.  On with stats (GxB_Stats_enable
  // sets both) or standalone via GRB_DECISIONS=1.
  kDecisionFlag = 16u,
  // Hardware profiler (obs/profiler.hpp): ProfScope regions attribute
  // perf counter groups (or the degraded cpu-clock fallback) per
  // (context, op, strategy).  GRB_PROF=1 or prof_set_enabled.
  kProfFlag = 32u,
};

namespace detail {
// The single hot-path gate.  Relaxed is sufficient: hooks tolerate
// observing a stale value for a few instructions around enable/disable.
extern std::atomic<uint32_t> g_flags;
}  // namespace detail

inline uint32_t flags() {
  return detail::g_flags.load(std::memory_order_relaxed);
}
inline bool enabled() { return flags() != 0u; }
inline bool stats_enabled() { return (flags() & kStatsFlag) != 0u; }
inline bool trace_enabled() { return (flags() & kTraceFlag) != 0u; }
// Stats or trace on (the pre-flight-recorder meaning of enabled()):
// hooks that record counters or spans gate here so the always-on flight
// recorder does not drag them onto their slow paths.
inline bool telemetry_enabled() {
  return (flags() & (kStatsFlag | kTraceFlag)) != 0u;
}
inline bool flight_enabled() { return (flags() & kFlightFlag) != 0u; }
inline bool watchdog_enabled() { return (flags() & kWatchdogFlag) != 0u; }
inline bool decision_enabled() { return (flags() & kDecisionFlag) != 0u; }
inline bool prof_enabled() { return (flags() & kProfFlag) != 0u; }

// Nanoseconds since an arbitrary process-local epoch (steady clock).
uint64_t now_ns();

// --- Current-op / current-context attribution -----------------------------
// The C API veneer (grb_detail::guarded) names the entry point here so
// deeper layers — enqueue, exec_context, kernels — can attribute work
// and errors to the originating GrB op without plumbing a name through
// every signature.  Always maintained (error messages depend on it).
//
// The context id rides in a sibling slot: the execution layer sets it
// (sticky within the API scope) as soon as the target object's home
// context is known — defer_or_run, enqueue, complete — so api_return /
// deferred_return key their counters by (context, op).  Context id 0
// means "unattributed" (no object touched, or the serial helper
// context); the top context is always id 1.
namespace detail {
// TLS attribution slots (defined in telemetry.cpp).  The accessors are
// inline so the unconditional save/restore in every CurrentOpScope is a
// plain TLS load/store, not a cross-TU call — this pair is on the
// flags==0 fast path of every C API entry.
extern thread_local const char* t_current_op;
extern thread_local uint64_t t_current_ctx;
}  // namespace detail

inline const char* current_op() {              // never null
  return detail::t_current_op != nullptr ? detail::t_current_op
                                         : "(unknown)";
}
inline const char* set_current_op(const char* name) {  // returns previous
  const char* prev = detail::t_current_op;
  detail::t_current_op = name;
  return prev;
}
inline uint64_t current_ctx() { return detail::t_current_ctx; }
inline uint64_t set_current_ctx(uint64_t ctx_id) {     // returns previous
  uint64_t prev = detail::t_current_ctx;
  detail::t_current_ctx = ctx_id;
  return prev;
}

constexpr uint64_t kTopContextId = 1;

class CurrentOpScope {
 public:
  explicit CurrentOpScope(const char* name)
      : prev_(set_current_op(name)), prev_ctx_(current_ctx()) {}
  // Deferred-execution form: the node carries the context it was
  // enqueued under, so replayed work is attributed to its tenant even
  // when it runs outside any API scope.
  CurrentOpScope(const char* name, uint64_t ctx_id)
      : prev_(set_current_op(name)), prev_ctx_(set_current_ctx(ctx_id)) {}
  ~CurrentOpScope() {
    set_current_op(prev_);
    set_current_ctx(prev_ctx_);
  }
  CurrentOpScope(const CurrentOpScope&) = delete;
  CurrentOpScope& operator=(const CurrentOpScope&) = delete;

 private:
  const char* prev_;
  uint64_t prev_ctx_;
};

// --- Context registry ------------------------------------------------------
// context.cpp names every GrB_Context here: the top context registers as
// (1, parent 0) at GrB_init, children with their parent's id at
// GrB_Context_new.  ctx_retire marks a freed context dead and drains its
// per-op counters into the nearest live ancestor (exchange-based, so a
// racing bump is never lost); later bumps against the dead id fold into
// the ancestor at read time.  Ids are never reused within a process.
void ctx_register(uint64_t ctx_id, uint64_t parent_id);
void ctx_retire(uint64_t ctx_id);

// --- Hooks (each gates itself on flags()) --------------------------------
// C API entry returned: counts the call (keyed by current_ctx()) and
// emits its span.  `t0` is the now_ns() stamp taken at entry (caller
// reads it only when enabled()).
void api_return(const char* op, uint64_t t0, bool failed);

// A deferred method ran during complete().  `enq_ns` is the enqueue
// stamp (0 when telemetry was off at enqueue time) so the span carries
// the deferral gap between call and execution.
void deferred_return(const char* op, uint64_t t0, uint64_t enq_ns,
                     bool failed);

// Injects one duration sample into `op`'s latency histogram (stats-
// gated, attributed to current_ctx()).  api_return / deferred_return
// call it internally; tests use it to drive the percentile oracle with
// synthetic durations.
void latency_record(const char* op, uint64_t ns);

// Serial-fallback gate decision, attributed to current_op().
void count_path(bool parallel);

// Work volume, attributed to current_op().
void add_scalars(uint64_t n);
void add_flops(uint64_t n);

// SpGEMM engine decisions: rows routed to each accumulator kind
// ("spgemm.rows_hash" / "spgemm.rows_dense") and the symbolic-pass flop
// estimate total ("spgemm.flops_estimated").  Kernels batch per-block
// tallies and flush once, so these stay off the per-row path.
void spgemm_rows(uint64_t rows_hash, uint64_t rows_dense);
void spgemm_flops_estimated(uint64_t n);

// Scratch-arena request outcome: hit == the buffer was reused with no
// allocation or clear ("arena.reuse_hits" / "arena.reuse_misses").
void arena_request(bool hit);

// Fusion-planner outcome for one materialization batch: fused chains
// selected ("fusion.chains"), nodes inside them ("fusion.ops_fused"),
// and dead writes eliminated ("fusion.dead_writes_eliminated").
// Stats-gated; the planner calls it once per plan, never per node.
void fusion_plan(uint64_t chains, uint64_t ops_fused, uint64_t dead_writes);

// Emits a complete-event span ("fusion.plan" / "fusion.exec") covering
// planner or fused-group work.  Trace-gated; `t0` is the now_ns() stamp
// taken when the phase began.
void fusion_span(const char* name, uint64_t t0);

// Storage-format layer (containers/format.cpp).  format_switch counts a
// publish that stored a block in a different format than it arrived in
// ("format.switches"); format_transpose_cache counts descriptor-
// transpose reads served from / missing the per-snapshot cached CSC
// view ("format.transpose_cache_hits" / "format.transpose_cache_
// misses"); format_csr_convert counts lazy canonical-view expansions of
// non-CSR blocks ("format.csr_conversions").  All stats-gated.
void format_switch();
void format_transpose_cache(bool hit);
void format_csr_convert();

// --- Causal flow linking ---------------------------------------------------
// Chrome flow events tie the API span that enqueued a deferred method to
// the deferred/fused span that later executed it.  The enqueue site
// draws a flow id from next_flow_id(), emits the "s" (start) record
// inside the API span via flow_begin, and stashes the id on the node;
// the execution site emits the matching "t" (step) record via flow_step
// just after its span opens.  Both are trace-gated.
uint64_t next_flow_id();               // monotonic, never returns 0
void flow_begin(const char* op, uint64_t flow_id);
void flow_step(const char* op, uint64_t flow_id);

// Gauges: deferred-queue depth after an enqueue, entries drained by a
// complete() batch, pending-tuple count after a fast-path set_element.
void queue_depth_sample(size_t depth);
void queue_drained(size_t batch);
void pending_tuples_sample(size_t count);

// Thread-pool gauges, keyed by the pool's obs id.  pool_park carries
// the cv-wait duration of the park episode ("pool.park_ns").
int next_pool_id();
void pool_submit(int pool_id, uint64_t nchunks);
void pool_chunk(int pool_id, bool worker_lane);   // worker lane == "steal"
void pool_park(int pool_id, uint64_t wait_ns);
void pool_busy_enter(int pool_id);
void pool_busy_exit(int pool_id);

// --- Lock-contention profiler ---------------------------------------------
// The annotated Mutex/MutexLock/CvLock wrappers (util/thread_annotations
// .hpp) report here, keyed by lock *site* — the enclosing function name
// captured free via a __builtin_FUNCTION default argument.  Recording is
// allocation-free (fixed open-addressed slot table keyed by string
// pointer, merged by name on read) so it is safe from any context,
// including while other locks are held.  lock_acquired counts an
// uncontended acquisition; lock_wait counts a contended one plus its
// blocked duration (44-bucket log2 histogram per site).
void lock_acquired(const char* site);
void lock_wait(const char* site, uint64_t wait_ns);

// Holder breadcrumb for the watchdog: each Mutex embeds one; the scoped
// wrappers stamp it (watchdog-gated) on acquire and clear it on release
// so a stall report can name the holding site and tenant.  All-relaxed:
// this is diagnostic breadcrumb state, not synchronization.
struct LockOwnerInfo {
  std::atomic<const char*> site{nullptr};
  std::atomic<uint64_t> ctx{0};
  std::atomic<uint64_t> since_ns{0};

  void set(const char* s, uint64_t ctx_id, uint64_t now) {
    ctx.store(ctx_id, std::memory_order_relaxed);
    since_ns.store(now, std::memory_order_relaxed);
    site.store(s, std::memory_order_relaxed);
  }
  void clear() { site.store(nullptr, std::memory_order_relaxed); }
};

// --- Stall watchdog --------------------------------------------------------
// Opt-in via GRB_WATCHDOG=ms (or watchdog_start).  Threads about to
// block register the wait in a fixed stall table (stall_begin; token is
// -1 when the table is full — pass it to stall_end regardless).  A
// background thread scans every deadline/4 and, when a registered wait
// is older than the deadline, bumps "watchdog.trips", logs a flight-
// recorder event and auto-dumps the ring with the blocked context id —
// and, for lock waits, the holder site/context from LockOwnerInfo.
enum StallKind : uint32_t {
  kStallLockWait = 0,    // blocked acquiring a Mutex
  kStallCompletion = 1,  // draining a deferred queue (complete())
};
int stall_begin(StallKind kind, const char* what, uint64_t ctx_id,
                const LockOwnerInfo* holder);
void stall_end(int token);
void watchdog_start(uint64_t deadline_ms);
void watchdog_stop();
uint64_t watchdog_trips();

// --- Control / introspection (backs the GxB_* extension API) -------------
void stats_set_enabled(bool on);
void stats_reset();

// Dotted-name counter lookup.  Per-op (summed across contexts):
// "<op>.calls", ".ns", ".errors", ".scalars", ".flops", ".serial",
// ".parallel", ".deferred", ".deferred_ns", plus the histogram-derived
// ".p50_ns", ".p90_ns", ".p99_ns", ".max_ns" (log2-bucket upper bounds;
// max is exact).  Per-site lock contention: "lock.<site>.acquires",
// ".contended", ".wait_ns", ".p50_ns", ".p90_ns", ".p99_ns", ".max_ns".
// Globals: "queue.enqueued", "queue.high_water", "queue.drained",
// "pending.high_water", "pool.submitted", "pool.chunks", "pool.steals",
// "pool.parks", "pool.park_ns", "pool.busy_high_water", "trace.events",
// "trace.dropped", "spgemm.rows_hash", "spgemm.rows_dense",
// "spgemm.flops_estimated", "fusion.chains", "fusion.ops_fused",
// "fusion.dead_writes_eliminated", "format.switches",
// "format.transpose_cache_hits", "format.transpose_cache_misses",
// "format.csr_conversions", "arena.reuse_hits",
// "arena.reuse_misses", "mem.live_bytes", "mem.peak_bytes",
// "mem.arena_live_bytes", "mem.arena_peak_bytes", "mem.objects",
// "flight.events", "flight.overwrites", "flight.capacity",
// "watchdog.trips", "watchdog.deadline_ms".  Names under "decision."
// forward to decision_stats_get (obs/decision.hpp) and names under
// "prof." to prof_stats_get (obs/profiler.hpp).  Returns false (and
// *value = 0) for unknown names.
bool stats_get(const char* name, uint64_t* value);

// Per-context counter lookup (backs GxB_Context_stats): same per-op
// names as stats_get but restricted to one context subtree — entries
// whose nearest live ancestor is `ctx_id` — plus "mem.live_bytes",
// "mem.peak_bytes" (sum of per-object peaks) and "mem.objects" for the
// containers currently homed there.
bool stats_get_ctx(uint64_t ctx_id, const char* name, uint64_t* value);

// Full counter dump as a JSON object (ops, globals, per-pool breakdown,
// per-context breakdown, per-site lock contention, decision-audit and
// profiler blocks).  `trim_zero_rows` drops per-op and per-context
// entries whose counters are all zero — bench artifacts embed the dump
// and were dominated by zero rows — without changing the schema of the
// rows that remain.
std::string stats_json(bool trim_zero_rows = false);

// Prometheus text exposition (version 0.0.4): per-(op, context) call /
// error counters and latency summaries (quantile series from the
// histograms), per-context memory gauges, per-site lock-wait summaries,
// and the global memory / flight-recorder / watchdog families.  Backs
// GxB_Stats_prometheus and the GRB_METRICS finalize dump.
std::string stats_prometheus();

// Tracing.  trace_start enables span recording and remembers `path`
// (may be null: dump must then name one).  trace_dump writes the Chrome
// trace JSON, disables tracing and clears the buffer; returns false on
// I/O failure or no usable path.  trace_stop discards without writing.
bool trace_start(const char* path);
bool trace_dump(const char* path);
void trace_stop();

// Environment activation, called by library_init / library_finalize.
// GRB_STATS=1 prints the JSON summary at finalize; GRB_TRACE=path.json
// dumps a Chrome trace; GRB_METRICS=path.prom enables stats and writes
// the Prometheus exposition at finalize; GRB_STATS_JSON=path.json
// enables stats and writes the full stats_json document at finalize
// (the grb_prof_report.py input); GRB_FLIGHT_RECORDER=N sizes the
// flight recorder (default 4096, 0 disables); GRB_WATCHDOG=ms arms the
// stall watchdog with a deadline in milliseconds; GRB_DECISIONS=1
// enables the decision audit; GRB_PROF=1 enables the hardware profiler
// (GRB_PERF_EVENTS=0 forces its degraded backend).
void env_activate();
void env_finalize();

}  // namespace obs
}  // namespace grb
