// Telemetry: always-compiled, near-zero-overhead-when-disabled
// observability for the nonblocking execution machinery.
//
// Three instruments, all off by default:
//  * per-operation counters (stats): calls, nanoseconds, scalars
//    processed, flops (mxm/mxv/vxm), serial-fallback vs. parallel-path
//    decisions, deferred executions — keyed by GrB op name;
//  * gauges: deferred-queue depth and pending-tuple count sampled at
//    enqueue/complete, plus thread-pool utilization (busy workers,
//    submitted/executed chunks, steals, parks) per pool;
//  * spans (trace): Chrome trace-event JSON ("X" complete events around
//    every GrB_*/GxB_* entry and every deferred-method execution, "C"
//    counter events for gauges), loadable in chrome://tracing / Perfetto.
//
// Overhead contract: every hook begins with one relaxed atomic load of
// g_flags; when both instruments are off the hook does nothing else.
// The only unconditional state is the thread-local current-op name set
// at the C API boundary — two TLS stores per entry — which also powers
// the deferred-error diagnostics (GrB_error names the failing method),
// so it is part of the error model, not just telemetry.
//
// Activation: GxB_Stats_enable / GxB_Trace_start (see GraphBLAS.h), or
// the environment: GRB_STATS=1 enables counters and prints a JSON
// summary to stderr at GrB_finalize; GRB_TRACE=path.json records spans
// and dumps the trace file at GrB_finalize.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

namespace grb {
namespace obs {

enum Flag : uint32_t {
  kStatsFlag = 1u,
  kTraceFlag = 2u,
  // The flight recorder (obs/flight_recorder.hpp) shares the gate so the
  // C API veneer still pays exactly one relaxed load when everything is
  // off.  It is ON by default after GrB_init (GRB_FLIGHT_RECORDER=0
  // disables), so hooks that only serve stats/trace must gate on
  // telemetry_enabled(), not enabled().
  kFlightFlag = 4u,
};

namespace detail {
// The single hot-path gate.  Relaxed is sufficient: hooks tolerate
// observing a stale value for a few instructions around enable/disable.
extern std::atomic<uint32_t> g_flags;
}  // namespace detail

inline uint32_t flags() {
  return detail::g_flags.load(std::memory_order_relaxed);
}
inline bool enabled() { return flags() != 0u; }
inline bool stats_enabled() { return (flags() & kStatsFlag) != 0u; }
inline bool trace_enabled() { return (flags() & kTraceFlag) != 0u; }
// Stats or trace on (the pre-flight-recorder meaning of enabled()):
// hooks that record counters or spans gate here so the always-on flight
// recorder does not drag them onto their slow paths.
inline bool telemetry_enabled() {
  return (flags() & (kStatsFlag | kTraceFlag)) != 0u;
}
inline bool flight_enabled() { return (flags() & kFlightFlag) != 0u; }

// Nanoseconds since an arbitrary process-local epoch (steady clock).
uint64_t now_ns();

// --- Current-op attribution ----------------------------------------------
// The C API veneer (grb_detail::guarded) names the entry point here so
// deeper layers — enqueue, exec_context, kernels — can attribute work
// and errors to the originating GrB op without plumbing a name through
// every signature.  Always maintained (error messages depend on it).
const char* current_op();                       // never null
const char* set_current_op(const char* name);   // returns previous

class CurrentOpScope {
 public:
  explicit CurrentOpScope(const char* name) : prev_(set_current_op(name)) {}
  ~CurrentOpScope() { set_current_op(prev_); }
  CurrentOpScope(const CurrentOpScope&) = delete;
  CurrentOpScope& operator=(const CurrentOpScope&) = delete;

 private:
  const char* prev_;
};

// --- Hooks (each gates itself on flags()) --------------------------------
// C API entry returned: counts the call and emits its span.  `t0` is the
// now_ns() stamp taken at entry (caller reads it only when enabled()).
void api_return(const char* op, uint64_t t0, bool failed);

// A deferred method ran during complete().  `enq_ns` is the enqueue
// stamp (0 when telemetry was off at enqueue time) so the span carries
// the deferral gap between call and execution.
void deferred_return(const char* op, uint64_t t0, uint64_t enq_ns,
                     bool failed);

// Injects one duration sample into `op`'s latency histogram (stats-
// gated).  api_return / deferred_return call it internally; tests use it
// to drive the percentile oracle with synthetic durations.
void latency_record(const char* op, uint64_t ns);

// Serial-fallback gate decision, attributed to current_op().
void count_path(bool parallel);

// Work volume, attributed to current_op().
void add_scalars(uint64_t n);
void add_flops(uint64_t n);

// SpGEMM engine decisions: rows routed to each accumulator kind
// ("spgemm.rows_hash" / "spgemm.rows_dense") and the symbolic-pass flop
// estimate total ("spgemm.flops_estimated").  Kernels batch per-block
// tallies and flush once, so these stay off the per-row path.
void spgemm_rows(uint64_t rows_hash, uint64_t rows_dense);
void spgemm_flops_estimated(uint64_t n);

// Scratch-arena request outcome: hit == the buffer was reused with no
// allocation or clear ("arena.reuse_hits" / "arena.reuse_misses").
void arena_request(bool hit);

// Fusion-planner outcome for one materialization batch: fused chains
// selected ("fusion.chains"), nodes inside them ("fusion.ops_fused"),
// and dead writes eliminated ("fusion.dead_writes_eliminated").
// Stats-gated; the planner calls it once per plan, never per node.
void fusion_plan(uint64_t chains, uint64_t ops_fused, uint64_t dead_writes);

// Emits a complete-event span ("fusion.plan" / "fusion.exec") covering
// planner or fused-group work.  Trace-gated; `t0` is the now_ns() stamp
// taken when the phase began.
void fusion_span(const char* name, uint64_t t0);

// Gauges: deferred-queue depth after an enqueue, entries drained by a
// complete() batch, pending-tuple count after a fast-path set_element.
void queue_depth_sample(size_t depth);
void queue_drained(size_t batch);
void pending_tuples_sample(size_t count);

// Thread-pool gauges, keyed by the pool's obs id.
int next_pool_id();
void pool_submit(int pool_id, uint64_t nchunks);
void pool_chunk(int pool_id, bool worker_lane);   // worker lane == "steal"
void pool_park(int pool_id);
void pool_busy_enter(int pool_id);
void pool_busy_exit(int pool_id);

// --- Control / introspection (backs the GxB_* extension API) -------------
void stats_set_enabled(bool on);
void stats_reset();

// Dotted-name counter lookup.  Per-op: "<op>.calls", ".ns", ".errors",
// ".scalars", ".flops", ".serial", ".parallel", ".deferred",
// ".deferred_ns", plus the histogram-derived ".p50_ns", ".p90_ns",
// ".p99_ns", ".max_ns" (log2-bucket upper bounds; max is exact).
// Globals: "queue.enqueued", "queue.high_water", "queue.drained",
// "pending.high_water", "pool.submitted", "pool.chunks", "pool.steals",
// "pool.parks", "pool.busy_high_water", "trace.events", "trace.dropped",
// "spgemm.rows_hash", "spgemm.rows_dense", "spgemm.flops_estimated",
// "fusion.chains", "fusion.ops_fused", "fusion.dead_writes_eliminated",
// "arena.reuse_hits", "arena.reuse_misses", "mem.live_bytes",
// "mem.peak_bytes", "mem.arena_live_bytes", "mem.arena_peak_bytes",
// "mem.objects", "flight.events", "flight.overwrites",
// "flight.capacity".  Returns false (and *value = 0) for unknown names.
bool stats_get(const char* name, uint64_t* value);

// Full counter dump as a JSON object (ops, globals, per-pool breakdown).
std::string stats_json();

// Prometheus text exposition (version 0.0.4): per-op call/error
// counters, latency summaries (quantile series from the histograms),
// and live/peak memory gauges.  Backs GxB_Stats_prometheus and the
// GRB_METRICS finalize dump.
std::string stats_prometheus();

// Tracing.  trace_start enables span recording and remembers `path`
// (may be null: dump must then name one).  trace_dump writes the Chrome
// trace JSON, disables tracing and clears the buffer; returns false on
// I/O failure or no usable path.  trace_stop discards without writing.
bool trace_start(const char* path);
bool trace_dump(const char* path);
void trace_stop();

// Environment activation, called by library_init / library_finalize.
// GRB_STATS=1 prints the JSON summary at finalize; GRB_TRACE=path.json
// dumps a Chrome trace; GRB_METRICS=path.prom enables stats and writes
// the Prometheus exposition at finalize; GRB_FLIGHT_RECORDER=N sizes
// the flight recorder (default 4096, 0 disables).
void env_activate();
void env_finalize();

}  // namespace obs
}  // namespace grb
