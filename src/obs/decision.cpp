#include "obs/decision.hpp"

#include <atomic>
#include <bit>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "obs/flight_recorder.hpp"

namespace grb {
namespace obs {

namespace {

// One ring slot.  All fields are relaxed atomics so writers lapping the
// ring stay data-race-free; `seq` brackets the payload (0 = in
// progress, emission-seq = done) so readers detect and skip torn rows.
// Doubles travel as bit patterns inside uint64 atomics.
struct Slot {
  std::atomic<uint64_t> seq{0};
  std::atomic<uint64_t> ts{0};
  std::atomic<const char*> op{nullptr};
  std::atomic<const char*> chosen{nullptr};
  std::atomic<const char*> rejected{nullptr};
  std::atomic<uint64_t> ctx{0};
  std::atomic<uint8_t> site{0};
  std::atomic<uint64_t> predicted_bits{0};
  std::atomic<uint64_t> alternative_bits{0};
  std::atomic<uint64_t> measured_ns{0};
  std::atomic<uint64_t> measured_units{0};
  std::atomic<uint32_t> state{0};  // bit0 = measured, bit1 = mispredict
};

// Fixed capacity: the audit is a "last N decisions" window, not a log;
// aggregates carry the long-run truth.  Power of two for mask indexing.
constexpr uint64_t kRingCapacity = 256;
Slot g_slots[kRingCapacity];
std::atomic<uint64_t> g_head{0};

struct SiteCounters {
  std::atomic<uint64_t> records{0};
  std::atomic<uint64_t> measured{0};
  std::atomic<uint64_t> mispredicts{0};
  // Sums in site-specific cost units, so mispredict *rates* and the
  // aggregate predicted-vs-measured ratio survive ring wrap.
  std::atomic<uint64_t> predicted_units{0};
  std::atomic<uint64_t> measured_units{0};
};
SiteCounters g_sites[kDecisionSiteCount];

constexpr const char* kSiteNames[kDecisionSiteCount] = {
    "exec_path",      "spgemm_accum",    "masked_dot",
    "format_adapt",   "transpose_cache", "fusion_plan",
};

// A measurement counts as mispredicted when the model's work estimate
// for the chosen strategy was off by more than 2x either way — the
// cost inputs, not the comparison, were wrong.  Both values must be
// positive: timing-only sites (units 0) never mispredict.
bool is_mispredict(double predicted, uint64_t units) {
  if (units == 0 || !(predicted > 0)) return false;
  double u = static_cast<double>(units);
  return u > 2.0 * predicted || 2.0 * u < predicted;
}

bool read_slot(uint64_t seq_idx, DecisionRecord* out) {
  Slot& s = g_slots[seq_idx % kRingCapacity];
  uint64_t want = seq_idx + 1;
  if (s.seq.load(std::memory_order_acquire) != want) return false;
  DecisionRecord r;
  r.seq = want;
  r.ts_ns = s.ts.load(std::memory_order_relaxed);
  r.op = s.op.load(std::memory_order_relaxed);
  r.chosen = s.chosen.load(std::memory_order_relaxed);
  r.rejected = s.rejected.load(std::memory_order_relaxed);
  r.ctx = s.ctx.load(std::memory_order_relaxed);
  r.site = static_cast<DecisionSite>(s.site.load(std::memory_order_relaxed));
  r.predicted_cost =
      std::bit_cast<double>(s.predicted_bits.load(std::memory_order_relaxed));
  r.alternative_cost = std::bit_cast<double>(
      s.alternative_bits.load(std::memory_order_relaxed));
  r.measured_ns = s.measured_ns.load(std::memory_order_relaxed);
  r.measured_units = s.measured_units.load(std::memory_order_relaxed);
  uint32_t state = s.state.load(std::memory_order_relaxed);
  r.measured = (state & 1u) != 0u;
  r.mispredict = (state & 2u) != 0u;
  if (s.seq.load(std::memory_order_acquire) != want) return false;
  if (r.op == nullptr || r.chosen == nullptr) return false;
  *out = r;
  return true;
}

uint64_t cost_units(double cost) {
  if (!(cost > 0)) return 0;
  return static_cast<uint64_t>(std::llround(cost));
}

}  // namespace

const char* decision_site_name(DecisionSite site) {
  uint8_t i = static_cast<uint8_t>(site);
  return i < kDecisionSiteCount ? kSiteNames[i] : "?";
}

DecisionTicket decision_record(DecisionSite site, const char* chosen,
                               const char* rejected, double predicted_cost,
                               double alternative_cost, const char* op) {
  DecisionTicket ticket;
  if (!decision_enabled()) return ticket;
  const char* opname = op != nullptr ? op : current_op();
  uint64_t ctx = current_ctx();
  uint64_t seq_idx = g_head.fetch_add(1, std::memory_order_relaxed);
  Slot& s = g_slots[seq_idx % kRingCapacity];
  s.seq.store(0, std::memory_order_release);  // invalidate for readers
  s.ts.store(now_ns(), std::memory_order_relaxed);
  s.op.store(opname, std::memory_order_relaxed);
  s.chosen.store(chosen, std::memory_order_relaxed);
  s.rejected.store(rejected, std::memory_order_relaxed);
  s.ctx.store(ctx, std::memory_order_relaxed);
  s.site.store(static_cast<uint8_t>(site), std::memory_order_relaxed);
  s.predicted_bits.store(std::bit_cast<uint64_t>(predicted_cost),
                         std::memory_order_relaxed);
  s.alternative_bits.store(std::bit_cast<uint64_t>(alternative_cost),
                           std::memory_order_relaxed);
  s.measured_ns.store(0, std::memory_order_relaxed);
  s.measured_units.store(0, std::memory_order_relaxed);
  s.state.store(0, std::memory_order_relaxed);
  s.seq.store(seq_idx + 1, std::memory_order_release);

  SiteCounters& c = g_sites[static_cast<uint8_t>(site)];
  c.records.fetch_add(1, std::memory_order_relaxed);
  c.predicted_units.fetch_add(cost_units(predicted_cost),
                              std::memory_order_relaxed);
  if (flight_enabled())
    fr_record(FrKind::kDecision, decision_site_name(site),
              static_cast<int32_t>(0), ctx);

  ticket.seq = seq_idx + 1;
  ticket.t0 = now_ns();
  ticket.predicted = predicted_cost;
  ticket.site = site;
  return ticket;
}

void decision_measure(const DecisionTicket& ticket, uint64_t measured_units) {
  if (ticket.seq == 0 || !decision_enabled()) return;
  uint64_t ns = now_ns() - ticket.t0;
  bool mp = is_mispredict(ticket.predicted, measured_units);

  SiteCounters& c = g_sites[static_cast<uint8_t>(ticket.site)];
  c.measured.fetch_add(1, std::memory_order_relaxed);
  c.measured_units.fetch_add(measured_units, std::memory_order_relaxed);
  if (mp) c.mispredicts.fetch_add(1, std::memory_order_relaxed);

  // Best-effort ring fill-in: if the ring has lapped this slot the
  // aggregates above still count, only the rendered row lost its tail.
  // The seq re-check narrows (but cannot close) the race against a
  // lapping writer; a lost or mixed fill-in is benign diagnostic noise.
  Slot& s = g_slots[(ticket.seq - 1) % kRingCapacity];
  if (s.seq.load(std::memory_order_acquire) != ticket.seq) return;
  s.measured_ns.store(ns, std::memory_order_relaxed);
  s.measured_units.store(measured_units, std::memory_order_relaxed);
  s.state.store(mp ? 3u : 1u, std::memory_order_relaxed);
}

void decision_set_enabled(bool on) {
  if (on)
    detail::g_flags.fetch_or(kDecisionFlag, std::memory_order_relaxed);
  else
    detail::g_flags.fetch_and(~kDecisionFlag, std::memory_order_relaxed);
}

void decision_reset() {
  for (SiteCounters& c : g_sites) {
    c.records.store(0, std::memory_order_relaxed);
    c.measured.store(0, std::memory_order_relaxed);
    c.mispredicts.store(0, std::memory_order_relaxed);
    c.predicted_units.store(0, std::memory_order_relaxed);
    c.measured_units.store(0, std::memory_order_relaxed);
  }
  for (Slot& s : g_slots) s.seq.store(0, std::memory_order_release);
  g_head.store(0, std::memory_order_relaxed);
}

int decision_snapshot(DecisionRecord* out, int max_records, const char* op,
                      uint64_t ctx) {
  uint64_t head = g_head.load(std::memory_order_acquire);
  uint64_t start = head > kRingCapacity ? head - kRingCapacity : 0;
  int n = 0;
  for (uint64_t seq = head; seq > start; --seq) {
    if (max_records > 0 && n >= max_records) break;
    DecisionRecord r;
    if (!read_slot(seq - 1, &r)) continue;
    if (op != nullptr && op[0] != '\0' && std::strcmp(op, r.op) != 0)
      continue;
    if (ctx != 0 && r.ctx != ctx) continue;
    out[n++] = r;
  }
  return n;
}

std::string decision_explain(const char* op, uint64_t ctx) {
  std::string text;
  char line[256];
  if (!decision_enabled() &&
      g_head.load(std::memory_order_relaxed) == 0) {
    return "decision audit disabled: enable with GxB_Stats_enable(true) "
           "or GRB_DECISIONS=1\n";
  }
  uint64_t total_records = 0;
  uint64_t total_measured = 0;
  uint64_t total_mispredicts = 0;
  for (const SiteCounters& c : g_sites) {
    total_records += c.records.load(std::memory_order_relaxed);
    total_measured += c.measured.load(std::memory_order_relaxed);
    total_mispredicts += c.mispredicts.load(std::memory_order_relaxed);
  }
  std::snprintf(line, sizeof line,
                "decision audit: %" PRIu64 " recorded, %" PRIu64
                " measured, %" PRIu64 " mispredicted (ring capacity %" PRIu64
                ")\n",
                total_records, total_measured, total_mispredicts,
                kRingCapacity);
  text.append(line);
  for (int i = 0; i < kDecisionSiteCount; ++i) {
    const SiteCounters& c = g_sites[i];
    uint64_t r = c.records.load(std::memory_order_relaxed);
    if (r == 0) continue;
    std::snprintf(line, sizeof line,
                  "  site %-15s records=%" PRIu64 " measured=%" PRIu64
                  " mispredicts=%" PRIu64 " predicted_units=%" PRIu64
                  " measured_units=%" PRIu64 "\n",
                  kSiteNames[i], r, c.measured.load(std::memory_order_relaxed),
                  c.mispredicts.load(std::memory_order_relaxed),
                  c.predicted_units.load(std::memory_order_relaxed),
                  c.measured_units.load(std::memory_order_relaxed));
    text.append(line);
  }
  DecisionRecord rows[kRingCapacity];
  int n = decision_snapshot(rows, static_cast<int>(kRingCapacity), op, ctx);
  if (n == 0) {
    text.append(total_records == 0
                    ? "  no decisions recorded yet\n"
                    : "  no ring records match the filter\n");
    return text;
  }
  std::snprintf(line, sizeof line, "  newest %d record(s)%s%s:\n", n,
                (op != nullptr && op[0] != '\0') ? " for op " : "",
                (op != nullptr && op[0] != '\0') ? op : "");
  text.append(line);
  for (int i = 0; i < n; ++i) {
    const DecisionRecord& r = rows[i];
    std::snprintf(line, sizeof line,
                  "  [#%" PRIu64 "] %s %s ctx=%" PRIu64
                  ": chose %s over %s (predicted %g vs %g units)",
                  r.seq, r.op, decision_site_name(r.site), r.ctx, r.chosen,
                  r.rejected, r.predicted_cost, r.alternative_cost);
    text.append(line);
    if (r.measured) {
      std::snprintf(line, sizeof line,
                    "; measured %" PRIu64 " ns, %" PRIu64 " units%s",
                    r.measured_ns, r.measured_units,
                    r.mispredict ? " MISPREDICT" : "");
      text.append(line);
    }
    text.push_back('\n');
  }
  return text;
}

bool decision_stats_get(const char* name, uint64_t* value) {
  *value = 0;
  if (std::strncmp(name, "decision.", 9) != 0) return false;
  const char* rest = name + 9;
  uint64_t total_records = 0;
  uint64_t total_measured = 0;
  uint64_t total_mispredicts = 0;
  for (const SiteCounters& c : g_sites) {
    total_records += c.records.load(std::memory_order_relaxed);
    total_measured += c.measured.load(std::memory_order_relaxed);
    total_mispredicts += c.mispredicts.load(std::memory_order_relaxed);
  }
  if (std::strcmp(rest, "records") == 0) {
    *value = total_records;
    return true;
  }
  if (std::strcmp(rest, "measured") == 0) {
    *value = total_measured;
    return true;
  }
  if (std::strcmp(rest, "mispredicts") == 0) {
    *value = total_mispredicts;
    return true;
  }
  if (std::strcmp(rest, "ring_capacity") == 0) {
    *value = kRingCapacity;
    return true;
  }
  for (int i = 0; i < kDecisionSiteCount; ++i) {
    size_t len = std::strlen(kSiteNames[i]);
    if (std::strncmp(rest, kSiteNames[i], len) != 0 || rest[len] != '.')
      continue;
    const char* field = rest + len + 1;
    const SiteCounters& c = g_sites[i];
    if (std::strcmp(field, "records") == 0)
      *value = c.records.load(std::memory_order_relaxed);
    else if (std::strcmp(field, "measured") == 0)
      *value = c.measured.load(std::memory_order_relaxed);
    else if (std::strcmp(field, "mispredicts") == 0)
      *value = c.mispredicts.load(std::memory_order_relaxed);
    else if (std::strcmp(field, "predicted_units") == 0)
      *value = c.predicted_units.load(std::memory_order_relaxed);
    else if (std::strcmp(field, "measured_units") == 0)
      *value = c.measured_units.load(std::memory_order_relaxed);
    else
      return false;
    return true;
  }
  return false;
}

std::string decision_json() {
  std::string out = "{";
  char buf[256];
  uint64_t head = g_head.load(std::memory_order_relaxed);
  std::snprintf(buf, sizeof buf,
                "\"enabled\":%s,\"ring_capacity\":%" PRIu64
                ",\"recorded\":%" PRIu64 ",\"sites\":{",
                decision_enabled() ? "true" : "false", kRingCapacity, head);
  out.append(buf);
  bool first = true;
  for (int i = 0; i < kDecisionSiteCount; ++i) {
    const SiteCounters& c = g_sites[i];
    if (!first) out.push_back(',');
    first = false;
    std::snprintf(
        buf, sizeof buf,
        "\"%s\":{\"records\":%" PRIu64 ",\"measured\":%" PRIu64
        ",\"mispredicts\":%" PRIu64 ",\"predicted_units\":%" PRIu64
        ",\"measured_units\":%" PRIu64 "}",
        kSiteNames[i], c.records.load(std::memory_order_relaxed),
        c.measured.load(std::memory_order_relaxed),
        c.mispredicts.load(std::memory_order_relaxed),
        c.predicted_units.load(std::memory_order_relaxed),
        c.measured_units.load(std::memory_order_relaxed));
    out.append(buf);
  }
  out.append("}}");
  return out;
}

void decision_prometheus(std::string& out) {
  char buf[192];
  out.append(
      "# HELP grb_decision_records_total Adaptive cost-model decisions "
      "recorded per site.\n# TYPE grb_decision_records_total counter\n");
  for (int i = 0; i < kDecisionSiteCount; ++i) {
    std::snprintf(buf, sizeof buf,
                  "grb_decision_records_total{site=\"%s\"} %" PRIu64 "\n",
                  kSiteNames[i],
                  g_sites[i].records.load(std::memory_order_relaxed));
    out.append(buf);
  }
  out.append(
      "# HELP grb_decision_measured_total Decisions completed with a "
      "post-execution measurement.\n"
      "# TYPE grb_decision_measured_total counter\n");
  for (int i = 0; i < kDecisionSiteCount; ++i) {
    std::snprintf(buf, sizeof buf,
                  "grb_decision_measured_total{site=\"%s\"} %" PRIu64 "\n",
                  kSiteNames[i],
                  g_sites[i].measured.load(std::memory_order_relaxed));
    out.append(buf);
  }
  out.append(
      "# HELP grb_decision_mispredicts_total Measured decisions whose "
      "predicted work was off by more than 2x.\n"
      "# TYPE grb_decision_mispredicts_total counter\n");
  for (int i = 0; i < kDecisionSiteCount; ++i) {
    std::snprintf(buf, sizeof buf,
                  "grb_decision_mispredicts_total{site=\"%s\"} %" PRIu64 "\n",
                  kSiteNames[i],
                  g_sites[i].mispredicts.load(std::memory_order_relaxed));
    out.append(buf);
  }
}

uint64_t decision_ring_capacity() { return kRingCapacity; }

void decision_env_activate() {
  const char* v = std::getenv("GRB_DECISIONS");
  if (v != nullptr && v[0] != '\0' && std::strcmp(v, "0") != 0)
    decision_set_enabled(true);
}

}  // namespace obs
}  // namespace grb
