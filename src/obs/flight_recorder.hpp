// Always-on flight recorder (DESIGN.md §11).
//
// The 2.0 error model makes failures temporally detached from their
// cause: a method call validates, defers, and succeeds; the execution
// error surfaces later, from whatever call happened to force completion.
// The flight recorder closes that gap by keeping the causal op history
// in a fixed-size lock-free ring buffer — every C API entry point, every
// deferred method execution, and every error transition — at a cost of
// one relaxed fetch_add plus a handful of relaxed stores per event.
//
// Sizing: 4096 events by default; GRB_FLIGHT_RECORDER=N resizes (rounded
// up to a power of two), GRB_FLIGHT_RECORDER=0 disables.  When the ring
// wraps, the oldest events are overwritten and the overwrite count is
// surfaced via "flight.overwrites" in GxB_Stats_json.
//
// Dumps: whenever an object is poisoned or an entry point returns
// GrB_PANIC, the recorder renders the tail of the ring as annotated text
// (stderr, throttled after the first few) and — when GRB_FLIGHT_DUMP
// names a path — as Chrome trace-event JSON.  GxB_FlightRecorder_dump
// writes on demand (".json" suffix selects the trace form).
#pragma once

#include <cstdint>
#include <string>

namespace grb {
namespace obs {

enum class FrKind : uint8_t {
  kApiEnter = 0,   // a GrB_*/GxB_* entry point was invoked
  kApiError = 1,   // an entry point returned an execution error
  kDeferredExec = 2,  // a deferred method ran during complete()
  kPoison = 3,     // an object recorded its first deferred error
  kFusionPlan = 4,  // the fusion planner selected chains / dead writes
  kFusionExec = 5,  // a fused group ran (info = node count)
  kEnqueue = 6,    // a method was deferred onto an object's queue
  kWatchdog = 7,   // the stall watchdog tripped (info = stalled ms)
  kDecision = 8,   // an adaptive cost-model branch chose a strategy
};

// Ring sizing / lifecycle.  fr_resize(0) disables recording (and clears
// the kFlightFlag gate); any other capacity rounds up to a power of two
// and (re)enables.  Old rings are retired, never freed, so in-flight
// lock-free writers can not touch freed memory.
void fr_resize(uint64_t capacity);
uint64_t fr_capacity();
uint64_t fr_event_count();  // total events ever recorded (monotonic)
uint64_t fr_overwrites();   // events lost to ring wrap

// Records one event.  `op` must have static storage duration (entry
// point literals); `info` is the GrB_Info value for error kinds.
// `ctx` is the obs context id of the tenant the event belongs to and
// `flow` the enqueue→exec flow id (both truncated to 32 bits in the
// ring; 0 = unattributed), so post-mortem dumps answer "whose op" and
// "which enqueue produced this execution".
void fr_record(FrKind kind, const char* op, int32_t info, uint64_t ctx = 0,
               uint64_t flow = 0);

// C API veneer hook for an entry point's return value: records an
// api-error event for execution errors and auto-dumps on GrB_PANIC.
// No-op for nonnegative `info`.
void fr_api_result(const char* op, int32_t info);

// Renders the newest `max_events` buffered events (0 = everything still
// in the ring) as annotated text, oldest first.
std::string fr_text(uint64_t max_events);

// The same events as Chrome trace-event JSON instant events.
std::string fr_trace_json();

// Writes fr_text (or, when `path` ends in ".json", fr_trace_json) to
// `path`; nullptr writes the text to stderr.  Returns false on I/O error.
bool fr_dump_file(const char* path);

// Automatic post-mortem dump (poison / PANIC paths).  Always renders and
// retains the text (fr_last_dump_text); prints to stderr only for the
// first few triggers per process so cascading poisons cannot flood logs.
void fr_auto_dump(const char* reason);

// The text of the most recent automatic dump ("" when none happened).
std::string fr_last_dump_text();

// Env plumbing, called from env_activate/env_finalize:
// GRB_FLIGHT_RECORDER sizes the ring (default 4096), GRB_FLIGHT_DUMP
// redirects automatic dumps (a path for trace JSON, "0" to silence).
void fr_env_activate();

}  // namespace obs
}  // namespace grb
