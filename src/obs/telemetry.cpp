#include "obs/telemetry.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/flight_recorder.hpp"
#include "obs/memory.hpp"

namespace grb {
namespace obs {

namespace detail {
std::atomic<uint32_t> g_flags{0};
}  // namespace detail

namespace {

// --- time -----------------------------------------------------------------

std::chrono::steady_clock::time_point epoch() {
  static const auto t0 = std::chrono::steady_clock::now();
  return t0;
}

uint32_t this_tid() {
  static thread_local const uint32_t tid = static_cast<uint32_t>(
      std::hash<std::thread::id>{}(std::this_thread::get_id()) & 0x7fffffu);
  return tid;
}

void bump_high_water(std::atomic<uint64_t>& hw, uint64_t v) {
  uint64_t cur = hw.load(std::memory_order_relaxed);
  while (cur < v &&
         !hw.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

// --- latency histograms ---------------------------------------------------
// Log2-bucketed per-op duration histograms.  Bucket b holds durations v
// with bit_width(v) == b, i.e. v in [2^(b-1), 2^b); percentile estimates
// report a bucket's inclusive upper bound (2^b - 1), so they are exact
// upper bounds with at most 2x quantization — max_ns stays exact.
// Writes go to a per-thread shard (relaxed, lock-free) and are merged on
// read; 44 buckets cover durations past two hours.

constexpr int kHistBuckets = 44;
constexpr int kHistShards = 8;

int bit_width_u64(uint64_t v) {
#if defined(__GNUC__) || defined(__clang__)
  return v == 0 ? 0 : 64 - __builtin_clzll(v);
#else
  int b = 0;
  while (v != 0) {
    ++b;
    v >>= 1;
  }
  return b;
#endif
}

int hist_bucket(uint64_t ns) {
  int b = bit_width_u64(ns);
  return b < kHistBuckets ? b : kHistBuckets - 1;
}

uint64_t hist_bucket_upper(int b) {
  return b == 0 ? 0 : (uint64_t{1} << b) - 1;
}

// --- counters -------------------------------------------------------------

struct OpCounters {
  std::atomic<uint64_t> calls{0};
  std::atomic<uint64_t> ns{0};
  std::atomic<uint64_t> errors{0};
  std::atomic<uint64_t> scalars{0};
  std::atomic<uint64_t> flops{0};
  std::atomic<uint64_t> serial{0};
  std::atomic<uint64_t> parallel{0};
  std::atomic<uint64_t> deferred{0};
  std::atomic<uint64_t> deferred_ns{0};
  std::atomic<uint64_t> max_ns{0};
  std::atomic<uint64_t> hist[kHistShards][kHistBuckets] = {};

  void hist_add(uint64_t dur_ns) {
    hist[this_tid() & (kHistShards - 1)][hist_bucket(dur_ns)].fetch_add(
        1, std::memory_order_relaxed);
    bump_high_water(max_ns, dur_ns);
  }

  void reset() {
    // Explicit relaxed stores: the chained-assignment form is a silent
    // seq_cst store per counter (and a seq_cst load per link of the
    // chain).  Reset needs no ordering — readers tolerate torn resets
    // the same way they tolerate concurrent bumps.
    for (std::atomic<uint64_t>* c :
         {&calls, &ns, &errors, &scalars, &flops, &serial, &parallel,
          &deferred, &deferred_ns, &max_ns})
      c->store(0, std::memory_order_relaxed);
    for (auto& shard : hist)
      for (auto& bucket : shard) bucket.store(0, std::memory_order_relaxed);
  }
};

// Shard-merged histogram view with the percentile upper bounds.
struct HistSummary {
  uint64_t count = 0;
  uint64_t p50 = 0, p90 = 0, p99 = 0, max = 0;
};

HistSummary hist_summarize(const OpCounters& c) {
  uint64_t counts[kHistBuckets] = {};
  HistSummary s;
  for (int sh = 0; sh < kHistShards; ++sh) {
    for (int b = 0; b < kHistBuckets; ++b) {
      uint64_t n = c.hist[sh][b].load(std::memory_order_relaxed);
      counts[b] += n;
      s.count += n;
    }
  }
  s.max = c.max_ns.load(std::memory_order_relaxed);
  if (s.count == 0) return s;
  auto quantile = [&](uint64_t pct) -> uint64_t {
    uint64_t target = (s.count * pct + 99) / 100;  // ceil rank
    uint64_t cum = 0;
    for (int b = 0; b < kHistBuckets; ++b) {
      cum += counts[b];
      if (cum >= target) return hist_bucket_upper(b);
    }
    return hist_bucket_upper(kHistBuckets - 1);
  };
  s.p50 = quantile(50);
  s.p90 = quantile(90);
  s.p99 = quantile(99);
  return s;
}

struct PoolCounters {
  std::atomic<uint64_t> submitted{0};   // chunks handed to parallel_for
  std::atomic<uint64_t> chunks{0};      // chunks executed (any lane)
  std::atomic<uint64_t> steals{0};      // chunks executed by worker lanes
  std::atomic<uint64_t> parks{0};       // cv-wait episodes
  std::atomic<uint64_t> busy{0};        // currently-running lanes (gauge)
  std::atomic<uint64_t> busy_hw{0};     // high-water of busy

  void reset() {
    // busy is a live gauge; leave it to its owners.  Relaxed stores for
    // the rest: reset carries no ordering obligation.
    for (std::atomic<uint64_t>* c :
         {&submitted, &chunks, &steals, &parks, &busy_hw})
      c->store(0, std::memory_order_relaxed);
  }
};

struct Globals {
  std::atomic<uint64_t> queue_enqueued{0};
  std::atomic<uint64_t> queue_hw{0};
  std::atomic<uint64_t> queue_drained{0};
  std::atomic<uint64_t> pending_hw{0};
  std::atomic<uint64_t> pool_busy{0};  // sum over pools, for the C event
  std::atomic<uint64_t> trace_events{0};
  std::atomic<uint64_t> trace_dropped{0};
  // SpGEMM engine decisions (rows routed to each accumulator, symbolic
  // flop totals) and scratch-arena reuse outcomes.
  std::atomic<uint64_t> spgemm_rows_hash{0};
  std::atomic<uint64_t> spgemm_rows_dense{0};
  std::atomic<uint64_t> spgemm_flops_est{0};
  std::atomic<uint64_t> arena_hits{0};
  std::atomic<uint64_t> arena_misses{0};
  // Fusion-planner outcomes (chains selected, nodes fused into them,
  // dead writes eliminated) accumulated across materialization batches.
  std::atomic<uint64_t> fusion_chains{0};
  std::atomic<uint64_t> fusion_ops_fused{0};
  std::atomic<uint64_t> fusion_dead_writes{0};
};

Globals g_globals;

// Registries.  std::map keeps stats_json deterministic; lookups happen
// only on enabled paths, so a lock per hook is acceptable there.
std::mutex& reg_mu() {
  static std::mutex mu;
  return mu;
}
std::map<std::string, std::unique_ptr<OpCounters>>& op_registry() {
  static auto* reg = new std::map<std::string, std::unique_ptr<OpCounters>>();
  return *reg;
}
std::map<int, std::unique_ptr<PoolCounters>>& pool_registry() {
  static auto* reg = new std::map<int, std::unique_ptr<PoolCounters>>();
  return *reg;
}

OpCounters& op_counters(const char* name) {
  std::lock_guard<std::mutex> lock(reg_mu());
  auto& slot = op_registry()[name];
  if (slot == nullptr) slot = std::make_unique<OpCounters>();
  return *slot;
}

PoolCounters& pool_counters(int pool_id) {
  std::lock_guard<std::mutex> lock(reg_mu());
  auto& slot = pool_registry()[pool_id];
  if (slot == nullptr) slot = std::make_unique<PoolCounters>();
  return *slot;
}

// --- trace ------------------------------------------------------------------

// One recorded event.  `name`/`cat`/`akey` point at static-storage
// strings (function-name literals, hook-site literals), never owned.
struct Event {
  const char* name;
  const char* cat;
  char ph;        // 'X' complete span, 'C' counter
  uint32_t tid;
  uint64_t ts_ns;
  uint64_t dur_ns;
  const char* akey;  // optional single arg (nullptr = none)
  uint64_t aval;
};

constexpr size_t kMaxTraceEvents = 1u << 20;

std::mutex& trace_mu() {
  static std::mutex mu;
  return mu;
}
std::vector<Event>& trace_buf() {
  static auto* buf = new std::vector<Event>();
  return *buf;
}
std::string& trace_path() {
  static auto* path = new std::string();
  return *path;
}

void record_event(const char* name, const char* cat, char ph, uint64_t ts_ns,
                  uint64_t dur_ns, const char* akey, uint64_t aval) {
  std::lock_guard<std::mutex> lock(trace_mu());
  if (!trace_enabled()) return;  // raced with a dump/stop; drop silently
  auto& buf = trace_buf();
  if (buf.size() >= kMaxTraceEvents) {
    g_globals.trace_dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  buf.push_back(Event{name, cat, ph, this_tid(), ts_ns, dur_ns, akey, aval});
  g_globals.trace_events.fetch_add(1, std::memory_order_relaxed);
}

void set_flag(uint32_t flag, bool on) {
  if (on) {
    detail::g_flags.fetch_or(flag, std::memory_order_relaxed);
  } else {
    detail::g_flags.fetch_and(~flag, std::memory_order_relaxed);
  }
}

// --- env activation state ---------------------------------------------------

bool g_env_stats = false;
bool g_env_trace = false;
std::string& env_metrics_path() {
  static auto* path = new std::string();
  return *path;
}

void json_append_escaped(std::string* out, const char* s) {
  for (; *s != '\0'; ++s) {
    char c = *s;
    if (c == '"' || c == '\\') {
      out->push_back('\\');
      out->push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", c);
      out->append(buf);
    } else {
      out->push_back(c);
    }
  }
}

}  // namespace

uint64_t now_ns() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch())
          .count());
}

// --- current op -------------------------------------------------------------

namespace {
thread_local const char* t_current_op = nullptr;
}

const char* current_op() {
  return t_current_op != nullptr ? t_current_op : "(unknown)";
}

const char* set_current_op(const char* name) {
  const char* prev = t_current_op;
  t_current_op = name;
  return prev;
}

// --- hooks ------------------------------------------------------------------

void api_return(const char* op, uint64_t t0, bool failed) {
  uint32_t f = flags();
  if ((f & (kStatsFlag | kTraceFlag)) == 0) return;
  uint64_t t1 = now_ns();
  if ((f & kStatsFlag) != 0) {
    OpCounters& c = op_counters(op);
    c.calls.fetch_add(1, std::memory_order_relaxed);
    c.ns.fetch_add(t1 - t0, std::memory_order_relaxed);
    c.hist_add(t1 - t0);
    if (failed) c.errors.fetch_add(1, std::memory_order_relaxed);
  }
  if ((f & kTraceFlag) != 0) {
    record_event(op, "api", 'X', t0, t1 - t0,
                 failed ? "failed" : nullptr, 1);
  }
}

void deferred_return(const char* op, uint64_t t0, uint64_t enq_ns,
                     bool failed) {
  uint32_t f = flags();
  if ((f & (kStatsFlag | kTraceFlag)) == 0) return;
  uint64_t t1 = now_ns();
  if ((f & kStatsFlag) != 0) {
    OpCounters& c = op_counters(op);
    c.deferred.fetch_add(1, std::memory_order_relaxed);
    c.deferred_ns.fetch_add(t1 - t0, std::memory_order_relaxed);
    c.hist_add(t1 - t0);
    if (failed) c.errors.fetch_add(1, std::memory_order_relaxed);
  }
  if ((f & kTraceFlag) != 0) {
    uint64_t gap_us =
        (enq_ns != 0 && t0 > enq_ns) ? (t0 - enq_ns) / 1000u : 0;
    record_event(op, "deferred", 'X', t0, t1 - t0, "gap_us", gap_us);
  }
}

void latency_record(const char* op, uint64_t ns) {
  if (!stats_enabled()) return;
  op_counters(op).hist_add(ns);
}

void count_path(bool parallel) {
  if (!stats_enabled()) return;
  OpCounters& c = op_counters(current_op());
  (parallel ? c.parallel : c.serial).fetch_add(1, std::memory_order_relaxed);
}

void add_scalars(uint64_t n) {
  if (!stats_enabled()) return;
  op_counters(current_op()).scalars.fetch_add(n, std::memory_order_relaxed);
}

void add_flops(uint64_t n) {
  if (!stats_enabled()) return;
  op_counters(current_op()).flops.fetch_add(n, std::memory_order_relaxed);
}

void spgemm_rows(uint64_t rows_hash, uint64_t rows_dense) {
  if (!stats_enabled()) return;
  if (rows_hash != 0)
    g_globals.spgemm_rows_hash.fetch_add(rows_hash, std::memory_order_relaxed);
  if (rows_dense != 0)
    g_globals.spgemm_rows_dense.fetch_add(rows_dense,
                                          std::memory_order_relaxed);
}

void spgemm_flops_estimated(uint64_t n) {
  if (!stats_enabled()) return;
  g_globals.spgemm_flops_est.fetch_add(n, std::memory_order_relaxed);
}

void arena_request(bool hit) {
  if (!stats_enabled()) return;
  (hit ? g_globals.arena_hits : g_globals.arena_misses)
      .fetch_add(1, std::memory_order_relaxed);
}

void fusion_plan(uint64_t chains, uint64_t ops_fused, uint64_t dead_writes) {
  if (!stats_enabled()) return;
  if (chains != 0)
    g_globals.fusion_chains.fetch_add(chains, std::memory_order_relaxed);
  if (ops_fused != 0)
    g_globals.fusion_ops_fused.fetch_add(ops_fused, std::memory_order_relaxed);
  if (dead_writes != 0)
    g_globals.fusion_dead_writes.fetch_add(dead_writes,
                                           std::memory_order_relaxed);
}

void fusion_span(const char* name, uint64_t t0) {
  if (!trace_enabled()) return;
  record_event(name, "fusion", 'X', t0, now_ns() - t0, nullptr, 0);
}

void queue_depth_sample(size_t depth) {
  uint32_t f = flags();
  if ((f & (kStatsFlag | kTraceFlag)) == 0) return;
  g_globals.queue_enqueued.fetch_add(1, std::memory_order_relaxed);
  bump_high_water(g_globals.queue_hw, depth);
  if ((f & kTraceFlag) != 0) {
    record_event("queue.depth", "gauge", 'C', now_ns(), 0, "value", depth);
  }
}

void queue_drained(size_t batch) {
  if (!telemetry_enabled()) return;
  g_globals.queue_drained.fetch_add(batch, std::memory_order_relaxed);
}

void pending_tuples_sample(size_t count) {
  uint32_t f = flags();
  if ((f & (kStatsFlag | kTraceFlag)) == 0) return;
  bump_high_water(g_globals.pending_hw, count);
  if ((f & kTraceFlag) != 0) {
    record_event("pending.tuples", "gauge", 'C', now_ns(), 0, "value", count);
  }
}

int next_pool_id() {
  static std::atomic<int> next{0};
  return next.fetch_add(1, std::memory_order_relaxed);
}

void pool_submit(int pool_id, uint64_t nchunks) {
  if (!telemetry_enabled()) return;
  pool_counters(pool_id).submitted.fetch_add(nchunks,
                                             std::memory_order_relaxed);
}

void pool_chunk(int pool_id, bool worker_lane) {
  if (!telemetry_enabled()) return;
  PoolCounters& c = pool_counters(pool_id);
  c.chunks.fetch_add(1, std::memory_order_relaxed);
  if (worker_lane) c.steals.fetch_add(1, std::memory_order_relaxed);
}

void pool_park(int pool_id) {
  if (!telemetry_enabled()) return;
  pool_counters(pool_id).parks.fetch_add(1, std::memory_order_relaxed);
}

void pool_busy_enter(int pool_id) {
  uint32_t f = flags();
  if ((f & (kStatsFlag | kTraceFlag)) == 0) return;
  PoolCounters& c = pool_counters(pool_id);
  uint64_t busy = c.busy.fetch_add(1, std::memory_order_relaxed) + 1;
  bump_high_water(c.busy_hw, busy);
  uint64_t total =
      g_globals.pool_busy.fetch_add(1, std::memory_order_relaxed) + 1;
  if ((f & kTraceFlag) != 0) {
    record_event("pool.busy", "gauge", 'C', now_ns(), 0, "value", total);
  }
}

void pool_busy_exit(int pool_id) {
  uint32_t f = flags();
  if ((f & (kStatsFlag | kTraceFlag)) == 0) return;
  pool_counters(pool_id).busy.fetch_sub(1, std::memory_order_relaxed);
  uint64_t total =
      g_globals.pool_busy.fetch_sub(1, std::memory_order_relaxed) - 1;
  if ((f & kTraceFlag) != 0) {
    record_event("pool.busy", "gauge", 'C', now_ns(), 0, "value", total);
  }
}

// --- control / introspection ------------------------------------------------

void stats_set_enabled(bool on) { set_flag(kStatsFlag, on); }

void stats_reset() {
  std::lock_guard<std::mutex> lock(reg_mu());
  for (auto& kv : op_registry()) kv.second->reset();
  for (auto& kv : pool_registry()) kv.second->reset();
  g_globals.queue_enqueued = 0;
  g_globals.queue_hw = 0;
  g_globals.queue_drained = 0;
  g_globals.pending_hw = 0;
  g_globals.spgemm_rows_hash = 0;
  g_globals.spgemm_rows_dense = 0;
  g_globals.spgemm_flops_est = 0;
  g_globals.arena_hits = 0;
  g_globals.arena_misses = 0;
  g_globals.fusion_chains = 0;
  g_globals.fusion_ops_fused = 0;
  g_globals.fusion_dead_writes = 0;
  // trace_events / trace_dropped reset with the trace buffer, and the
  // pool_busy live gauge belongs to in-flight parallel_for calls.
}

namespace {

struct FieldRef {
  const char* name;
  const std::atomic<uint64_t>* value;
};

// The per-op fields, in stats_json order.
std::vector<FieldRef> op_fields(const OpCounters& c) {
  return {{"calls", &c.calls},       {"ns", &c.ns},
          {"errors", &c.errors},     {"scalars", &c.scalars},
          {"flops", &c.flops},       {"serial", &c.serial},
          {"parallel", &c.parallel}, {"deferred", &c.deferred},
          {"deferred_ns", &c.deferred_ns}};
}

std::vector<FieldRef> pool_fields(const PoolCounters& c) {
  return {{"submitted", &c.submitted},
          {"chunks", &c.chunks},
          {"steals", &c.steals},
          {"parks", &c.parks},
          {"busy_high_water", &c.busy_hw}};
}

uint64_t ld(const std::atomic<uint64_t>& v) {
  return v.load(std::memory_order_relaxed);
}

}  // namespace

namespace {

// Memory / flight-recorder gauges are function-backed, not stored
// atomics; one table serves stats_get, stats_json and the exposition.
struct FnGauge {
  const char* name;
  uint64_t (*value)();
};

const FnGauge kFnGauges[] = {
    {"mem.live_bytes", &mem_live_total},
    {"mem.peak_bytes", &mem_peak_total},
    {"mem.arena_live_bytes", &mem_arena_live},
    {"mem.arena_peak_bytes", &mem_arena_peak},
    {"mem.objects", &mem_object_count},
    {"flight.events", &fr_event_count},
    {"flight.overwrites", &fr_overwrites},
    {"flight.capacity", &fr_capacity},
};

}  // namespace

bool stats_get(const char* name, uint64_t* value) {
  *value = 0;
  if (name == nullptr) return false;
  for (const auto& g : kFnGauges) {
    if (std::strcmp(name, g.name) == 0) {
      *value = g.value();
      return true;
    }
  }
  // Globals first.
  struct GlobalRef {
    const char* name;
    const std::atomic<uint64_t>* value;
  };
  const GlobalRef globals[] = {
      {"queue.enqueued", &g_globals.queue_enqueued},
      {"queue.high_water", &g_globals.queue_hw},
      {"queue.drained", &g_globals.queue_drained},
      {"pending.high_water", &g_globals.pending_hw},
      {"trace.events", &g_globals.trace_events},
      {"trace.dropped", &g_globals.trace_dropped},
      {"spgemm.rows_hash", &g_globals.spgemm_rows_hash},
      {"spgemm.rows_dense", &g_globals.spgemm_rows_dense},
      {"spgemm.flops_estimated", &g_globals.spgemm_flops_est},
      {"arena.reuse_hits", &g_globals.arena_hits},
      {"arena.reuse_misses", &g_globals.arena_misses},
      {"fusion.chains", &g_globals.fusion_chains},
      {"fusion.ops_fused", &g_globals.fusion_ops_fused},
      {"fusion.dead_writes_eliminated", &g_globals.fusion_dead_writes},
  };
  for (const auto& g : globals) {
    if (std::strcmp(name, g.name) == 0) {
      *value = ld(*g.value);
      return true;
    }
  }
  std::lock_guard<std::mutex> lock(reg_mu());
  // Pool aggregates: "pool.<field>" sums over every pool.
  if (std::strncmp(name, "pool.", 5) == 0) {
    const char* field = name + 5;
    bool known = false;
    uint64_t sum = 0;
    for (auto& kv : pool_registry()) {
      for (const auto& f : pool_fields(*kv.second)) {
        if (std::strcmp(field, f.name) == 0) {
          sum += ld(*f.value);
          known = true;
        }
      }
    }
    if (!known) {
      // Field-name check against a throwaway instance, so "pool.parks"
      // resolves (to 0) even before any pool exists.
      static const PoolCounters probe;
      for (const auto& f : pool_fields(probe)) {
        if (std::strcmp(field, f.name) == 0) known = true;
      }
    }
    *value = sum;
    return known;
  }
  // Per-op: "<op>.<field>".
  const char* dot = std::strrchr(name, '.');
  if (dot == nullptr || dot == name) return false;
  std::string op(name, static_cast<size_t>(dot - name));
  auto it = op_registry().find(op);
  if (it == op_registry().end()) return false;
  for (const auto& f : op_fields(*it->second)) {
    if (std::strcmp(dot + 1, f.name) == 0) {
      *value = ld(*f.value);
      return true;
    }
  }
  // Histogram-derived fields, computed on read.
  const char* field = dot + 1;
  if (std::strcmp(field, "p50_ns") == 0 || std::strcmp(field, "p90_ns") == 0 ||
      std::strcmp(field, "p99_ns") == 0 || std::strcmp(field, "max_ns") == 0) {
    HistSummary s = hist_summarize(*it->second);
    *value = field[0] == 'm'   ? s.max
             : field[1] == '5' ? s.p50
             : field[1] == '9' && field[2] == '0' ? s.p90
                                                  : s.p99;
    return true;
  }
  return false;
}

std::string stats_json() {
  std::lock_guard<std::mutex> lock(reg_mu());
  std::string out = "{\"ops\":{";
  bool first = true;
  char buf[64];
  for (auto& kv : op_registry()) {
    if (!first) out.push_back(',');
    first = false;
    out.push_back('"');
    json_append_escaped(&out, kv.first.c_str());
    out.append("\":{");
    bool ffirst = true;
    for (const auto& f : op_fields(*kv.second)) {
      if (!ffirst) out.push_back(',');
      ffirst = false;
      std::snprintf(buf, sizeof buf, "\"%s\":%llu", f.name,
                    static_cast<unsigned long long>(ld(*f.value)));
      out.append(buf);
    }
    HistSummary hs = hist_summarize(*kv.second);
    char pbuf[160];
    std::snprintf(pbuf, sizeof pbuf,
                  ",\"p50_ns\":%llu,\"p90_ns\":%llu,\"p99_ns\":%llu,"
                  "\"max_ns\":%llu",
                  static_cast<unsigned long long>(hs.p50),
                  static_cast<unsigned long long>(hs.p90),
                  static_cast<unsigned long long>(hs.p99),
                  static_cast<unsigned long long>(hs.max));
    out.append(pbuf);
    out.push_back('}');
  }
  out.append("},\"global\":{");
  std::snprintf(buf, sizeof buf, "\"queue.enqueued\":%llu,",
                static_cast<unsigned long long>(ld(g_globals.queue_enqueued)));
  out.append(buf);
  std::snprintf(buf, sizeof buf, "\"queue.high_water\":%llu,",
                static_cast<unsigned long long>(ld(g_globals.queue_hw)));
  out.append(buf);
  std::snprintf(buf, sizeof buf, "\"queue.drained\":%llu,",
                static_cast<unsigned long long>(ld(g_globals.queue_drained)));
  out.append(buf);
  std::snprintf(buf, sizeof buf, "\"pending.high_water\":%llu,",
                static_cast<unsigned long long>(ld(g_globals.pending_hw)));
  out.append(buf);
  std::snprintf(buf, sizeof buf, "\"trace.events\":%llu,",
                static_cast<unsigned long long>(ld(g_globals.trace_events)));
  out.append(buf);
  std::snprintf(buf, sizeof buf, "\"trace.dropped\":%llu,",
                static_cast<unsigned long long>(ld(g_globals.trace_dropped)));
  out.append(buf);
  std::snprintf(buf, sizeof buf, "\"spgemm.rows_hash\":%llu,",
                static_cast<unsigned long long>(
                    ld(g_globals.spgemm_rows_hash)));
  out.append(buf);
  std::snprintf(buf, sizeof buf, "\"spgemm.rows_dense\":%llu,",
                static_cast<unsigned long long>(
                    ld(g_globals.spgemm_rows_dense)));
  out.append(buf);
  std::snprintf(buf, sizeof buf, "\"spgemm.flops_estimated\":%llu,",
                static_cast<unsigned long long>(
                    ld(g_globals.spgemm_flops_est)));
  out.append(buf);
  std::snprintf(buf, sizeof buf, "\"arena.reuse_hits\":%llu,",
                static_cast<unsigned long long>(ld(g_globals.arena_hits)));
  out.append(buf);
  std::snprintf(buf, sizeof buf, "\"arena.reuse_misses\":%llu,",
                static_cast<unsigned long long>(ld(g_globals.arena_misses)));
  out.append(buf);
  std::snprintf(buf, sizeof buf, "\"fusion.chains\":%llu,",
                static_cast<unsigned long long>(ld(g_globals.fusion_chains)));
  out.append(buf);
  std::snprintf(buf, sizeof buf, "\"fusion.ops_fused\":%llu,",
                static_cast<unsigned long long>(
                    ld(g_globals.fusion_ops_fused)));
  out.append(buf);
  std::snprintf(buf, sizeof buf, "\"fusion.dead_writes_eliminated\":%llu",
                static_cast<unsigned long long>(
                    ld(g_globals.fusion_dead_writes)));
  out.append(buf);
  // Memory-attribution and flight-recorder gauges (function-backed).
  for (const auto& g : kFnGauges) {
    std::snprintf(buf, sizeof buf, ",\"%s\":%llu", g.name,
                  static_cast<unsigned long long>(g.value()));
    out.append(buf);
  }
  out.append("},\"pools\":{");
  first = true;
  for (auto& kv : pool_registry()) {
    if (!first) out.push_back(',');
    first = false;
    std::snprintf(buf, sizeof buf, "\"%d\":{", kv.first);
    out.append(buf);
    bool ffirst = true;
    for (const auto& f : pool_fields(*kv.second)) {
      if (!ffirst) out.push_back(',');
      ffirst = false;
      std::snprintf(buf, sizeof buf, "\"%s\":%llu", f.name,
                    static_cast<unsigned long long>(ld(*f.value)));
      out.append(buf);
    }
    out.push_back('}');
  }
  out.append("}}");
  return out;
}

std::string stats_prometheus() {
  std::lock_guard<std::mutex> lock(reg_mu());
  std::string out;
  char buf[256];
  auto series = [&](const char* metric, const char* op, const char* extra,
                    uint64_t v) {
    if (op != nullptr) {
      std::snprintf(buf, sizeof buf, "%s{op=\"%s\"%s%s} %llu\n", metric, op,
                    extra[0] != '\0' ? "," : "", extra,
                    static_cast<unsigned long long>(v));
    } else {
      std::snprintf(buf, sizeof buf, "%s %llu\n", metric,
                    static_cast<unsigned long long>(v));
    }
    out.append(buf);
  };
  out.append("# HELP grb_op_calls_total C API entry-point invocations.\n"
             "# TYPE grb_op_calls_total counter\n");
  for (auto& kv : op_registry())
    series("grb_op_calls_total", kv.first.c_str(), "", ld(kv.second->calls));
  out.append("# HELP grb_op_errors_total Entry points returning an error.\n"
             "# TYPE grb_op_errors_total counter\n");
  for (auto& kv : op_registry())
    series("grb_op_errors_total", kv.first.c_str(), "",
           ld(kv.second->errors));
  // Per-op latency as a Prometheus summary: quantile series from the
  // log2 histograms (upper-bound estimates), exact sum/count/max.
  out.append("# HELP grb_op_latency_ns Per-op latency (log2-bucket "
             "quantile upper bounds).\n"
             "# TYPE grb_op_latency_ns summary\n");
  for (auto& kv : op_registry()) {
    HistSummary hs = hist_summarize(*kv.second);
    const char* op = kv.first.c_str();
    series("grb_op_latency_ns", op, "quantile=\"0.5\"", hs.p50);
    series("grb_op_latency_ns", op, "quantile=\"0.9\"", hs.p90);
    series("grb_op_latency_ns", op, "quantile=\"0.99\"", hs.p99);
    series("grb_op_latency_ns_sum", op, "",
           ld(kv.second->ns) + ld(kv.second->deferred_ns));
    series("grb_op_latency_ns_count", op, "", hs.count);
  }
  out.append("# HELP grb_op_latency_max_ns Exact worst-case latency.\n"
             "# TYPE grb_op_latency_max_ns gauge\n");
  for (auto& kv : op_registry()) {
    series("grb_op_latency_max_ns", kv.first.c_str(), "",
           ld(kv.second->max_ns));
  }
  out.append("# HELP grb_memory_live_bytes Tracked bytes currently "
             "allocated.\n"
             "# TYPE grb_memory_live_bytes gauge\n");
  series("grb_memory_live_bytes", nullptr, "", mem_live_total());
  out.append("# HELP grb_memory_peak_bytes High-water mark of tracked "
             "bytes.\n"
             "# TYPE grb_memory_peak_bytes gauge\n");
  series("grb_memory_peak_bytes", nullptr, "", mem_peak_total());
  out.append("# HELP grb_arena_live_bytes Scratch-arena bytes currently "
             "held.\n"
             "# TYPE grb_arena_live_bytes gauge\n");
  series("grb_arena_live_bytes", nullptr, "", mem_arena_live());
  out.append("# HELP grb_arena_peak_bytes Scratch-arena high-water mark.\n"
             "# TYPE grb_arena_peak_bytes gauge\n");
  series("grb_arena_peak_bytes", nullptr, "", mem_arena_peak());
  out.append("# HELP grb_objects Live GrB containers.\n"
             "# TYPE grb_objects gauge\n");
  series("grb_objects", nullptr, "", mem_object_count());
  out.append("# HELP grb_flight_recorder_events_total Flight-recorder "
             "events ever recorded.\n"
             "# TYPE grb_flight_recorder_events_total counter\n");
  series("grb_flight_recorder_events_total", nullptr, "", fr_event_count());
  out.append("# HELP grb_flight_recorder_overwrites_total Events lost to "
             "ring wrap.\n"
             "# TYPE grb_flight_recorder_overwrites_total counter\n");
  series("grb_flight_recorder_overwrites_total", nullptr, "",
         fr_overwrites());
  out.append("# HELP grb_trace_dropped_total Spans dropped by the capped "
             "trace buffer.\n"
             "# TYPE grb_trace_dropped_total counter\n");
  series("grb_trace_dropped_total", nullptr, "",
         ld(g_globals.trace_dropped));
  return out;
}

bool trace_start(const char* path) {
  std::lock_guard<std::mutex> lock(trace_mu());
  trace_buf().clear();
  trace_path() = path != nullptr ? path : "";
  g_globals.trace_events = 0;
  g_globals.trace_dropped = 0;
  set_flag(kTraceFlag, true);
  return true;
}

bool trace_dump(const char* path) {
  std::lock_guard<std::mutex> lock(trace_mu());
  set_flag(kTraceFlag, false);
  std::string target = path != nullptr ? path : trace_path();
  if (target.empty()) return false;
  std::FILE* f = std::fopen(target.c_str(), "w");
  if (f == nullptr) return false;
  // droppedEvents lets consumers (grb_trace_summarize.py) warn loudly
  // when the capped buffer truncated the recording.
  std::fprintf(f, "{\"displayTimeUnit\":\"ms\",\"droppedEvents\":%llu,"
                  "\"traceEvents\":[",
               static_cast<unsigned long long>(
                   g_globals.trace_dropped.load(std::memory_order_relaxed)));
  bool first = true;
  for (const Event& e : trace_buf()) {
    std::fputs(first ? "\n" : ",\n", f);
    first = false;
    if (e.ph == 'X') {
      std::fprintf(f,
                   "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\","
                   "\"pid\":1,\"tid\":%u,\"ts\":%.3f,\"dur\":%.3f",
                   e.name, e.cat, e.tid, e.ts_ns / 1000.0, e.dur_ns / 1000.0);
      if (e.akey != nullptr) {
        std::fprintf(f, ",\"args\":{\"%s\":%llu}", e.akey,
                     static_cast<unsigned long long>(e.aval));
      }
      std::fputs("}", f);
    } else {  // 'C'
      std::fprintf(f,
                   "{\"name\":\"%s\",\"ph\":\"C\",\"pid\":1,\"tid\":%u,"
                   "\"ts\":%.3f,\"args\":{\"%s\":%llu}}",
                   e.name, e.tid, e.ts_ns / 1000.0,
                   e.akey != nullptr ? e.akey : "value",
                   static_cast<unsigned long long>(e.aval));
    }
  }
  std::fputs("\n]}\n", f);
  bool ok = std::fclose(f) == 0;
  trace_buf().clear();
  trace_path().clear();
  return ok;
}

void trace_stop() {
  std::lock_guard<std::mutex> lock(trace_mu());
  set_flag(kTraceFlag, false);
  trace_buf().clear();
  trace_path().clear();
}

void env_activate() {
  const char* stats = std::getenv("GRB_STATS");
  if (stats != nullptr && stats[0] != '\0' &&
      std::strcmp(stats, "0") != 0) {
    stats_set_enabled(true);
    g_env_stats = true;
  }
  const char* trace = std::getenv("GRB_TRACE");
  if (trace != nullptr && trace[0] != '\0') {
    trace_start(trace);
    g_env_trace = true;
  }
  // GRB_METRICS=path.prom: counters on now, Prometheus text exposition
  // written at finalize.
  const char* metrics = std::getenv("GRB_METRICS");
  if (metrics != nullptr && metrics[0] != '\0') {
    env_metrics_path() = metrics;
    stats_set_enabled(true);
  }
  // GRB_FLIGHT_RECORDER / GRB_FLIGHT_DUMP; default-on (4096 events).
  fr_env_activate();
}

void env_finalize() {
  if (g_env_trace) {
    if (!trace_dump(nullptr)) {
      std::fprintf(stderr, "grb-obs: failed to write GRB_TRACE file\n");
    }
    g_env_trace = false;
  }
  if (!env_metrics_path().empty()) {
    std::FILE* f = std::fopen(env_metrics_path().c_str(), "w");
    if (f != nullptr) {
      std::fputs(stats_prometheus().c_str(), f);
      std::fclose(f);
    } else {
      std::fprintf(stderr, "grb-obs: failed to write GRB_METRICS file\n");
    }
    env_metrics_path().clear();
    if (!g_env_stats) {
      stats_set_enabled(false);
      stats_reset();
    }
  }
  if (g_env_stats) {
    std::fprintf(stderr, "GRB_STATS %s\n", stats_json().c_str());
    stats_set_enabled(false);
    stats_reset();
    g_env_stats = false;
  }
}

}  // namespace obs
}  // namespace grb
