#include "obs/telemetry.hpp"

#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/decision.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/memory.hpp"
#include "obs/profiler.hpp"

namespace grb {
namespace obs {

namespace detail {
std::atomic<uint32_t> g_flags{0};
}  // namespace detail

namespace {

// --- time -----------------------------------------------------------------

std::chrono::steady_clock::time_point epoch() {
  static const auto t0 = std::chrono::steady_clock::now();
  return t0;
}

uint32_t this_tid() {
  static thread_local const uint32_t tid = static_cast<uint32_t>(
      std::hash<std::thread::id>{}(std::this_thread::get_id()) & 0x7fffffu);
  return tid;
}

void bump_high_water(std::atomic<uint64_t>& hw, uint64_t v) {
  uint64_t cur = hw.load(std::memory_order_relaxed);
  while (cur < v &&
         !hw.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

// --- latency histograms ---------------------------------------------------
// Log2-bucketed per-op duration histograms.  Bucket b holds durations v
// with bit_width(v) == b, i.e. v in [2^(b-1), 2^b); percentile estimates
// report a bucket's inclusive upper bound (2^b - 1), so they are exact
// upper bounds with at most 2x quantization — max_ns stays exact.
// Writes go to a per-thread shard (relaxed, lock-free) and are merged on
// read; 44 buckets cover durations past two hours.

constexpr int kHistBuckets = 44;
constexpr int kHistShards = 8;

int bit_width_u64(uint64_t v) {
#if defined(__GNUC__) || defined(__clang__)
  return v == 0 ? 0 : 64 - __builtin_clzll(v);
#else
  int b = 0;
  while (v != 0) {
    ++b;
    v >>= 1;
  }
  return b;
#endif
}

int hist_bucket(uint64_t ns) {
  int b = bit_width_u64(ns);
  return b < kHistBuckets ? b : kHistBuckets - 1;
}

uint64_t hist_bucket_upper(int b) {
  return b == 0 ? 0 : (uint64_t{1} << b) - 1;
}

uint64_t ld(const std::atomic<uint64_t>& v) {
  return v.load(std::memory_order_relaxed);
}

// --- counters -------------------------------------------------------------

struct OpCounters {
  std::atomic<uint64_t> calls{0};
  std::atomic<uint64_t> ns{0};
  std::atomic<uint64_t> errors{0};
  std::atomic<uint64_t> scalars{0};
  std::atomic<uint64_t> flops{0};
  std::atomic<uint64_t> serial{0};
  std::atomic<uint64_t> parallel{0};
  std::atomic<uint64_t> deferred{0};
  std::atomic<uint64_t> deferred_ns{0};
  std::atomic<uint64_t> max_ns{0};
  std::atomic<uint64_t> hist[kHistShards][kHistBuckets] = {};

  void hist_add(uint64_t dur_ns) {
    hist[this_tid() & (kHistShards - 1)][hist_bucket(dur_ns)].fetch_add(
        1, std::memory_order_relaxed);
    bump_high_water(max_ns, dur_ns);
  }

  void reset() {
    // Explicit relaxed stores: the chained-assignment form is a silent
    // seq_cst store per counter (and a seq_cst load per link of the
    // chain).  Reset needs no ordering — readers tolerate torn resets
    // the same way they tolerate concurrent bumps.
    for (std::atomic<uint64_t>* c :
         {&calls, &ns, &errors, &scalars, &flops, &serial, &parallel,
          &deferred, &deferred_ns, &max_ns})
      c->store(0, std::memory_order_relaxed);
    for (auto& shard : hist)
      for (auto& bucket : shard) bucket.store(0, std::memory_order_relaxed);
  }

  // Context rollup on free: exchange-based drain so a bump racing the
  // drain lands either in the source (moved now) or the destination
  // (arriving after the exchange) — never lost, never double-counted.
  // The object itself stays alive (registry entries are never deleted),
  // so a late bump against a retired context still has a home and is
  // folded into the ancestor at read time.
  void drain_into(OpCounters& dst) {
    struct Pair {
      std::atomic<uint64_t>* from;
      std::atomic<uint64_t>* to;
    };
    for (Pair p : {Pair{&calls, &dst.calls}, Pair{&ns, &dst.ns},
                   Pair{&errors, &dst.errors}, Pair{&scalars, &dst.scalars},
                   Pair{&flops, &dst.flops}, Pair{&serial, &dst.serial},
                   Pair{&parallel, &dst.parallel},
                   Pair{&deferred, &dst.deferred},
                   Pair{&deferred_ns, &dst.deferred_ns}})
      p.to->fetch_add(p.from->exchange(0, std::memory_order_relaxed),
                      std::memory_order_relaxed);
    for (int sh = 0; sh < kHistShards; ++sh)
      for (int b = 0; b < kHistBuckets; ++b)
        dst.hist[sh][b].fetch_add(
            hist[sh][b].exchange(0, std::memory_order_relaxed),
            std::memory_order_relaxed);
    bump_high_water(dst.max_ns, max_ns.exchange(0, std::memory_order_relaxed));
  }
};

// Shard-merged histogram view with the percentile upper bounds.
struct HistSummary {
  uint64_t count = 0;
  uint64_t p50 = 0, p90 = 0, p99 = 0, max = 0;
};

HistSummary summarize_counts(const uint64_t counts[kHistBuckets],
                             uint64_t max) {
  HistSummary s;
  s.max = max;
  for (int b = 0; b < kHistBuckets; ++b) s.count += counts[b];
  if (s.count == 0) return s;
  auto quantile = [&](uint64_t pct) -> uint64_t {
    uint64_t target = (s.count * pct + 99) / 100;  // ceil rank
    uint64_t cum = 0;
    for (int b = 0; b < kHistBuckets; ++b) {
      cum += counts[b];
      if (cum >= target) return hist_bucket_upper(b);
    }
    return hist_bucket_upper(kHistBuckets - 1);
  };
  s.p50 = quantile(50);
  s.p90 = quantile(90);
  s.p99 = quantile(99);
  return s;
}

// Relaxed-merged snapshot of one (context, op) cell — or of several,
// when dead contexts fold into a live ancestor at read time.
struct OpAgg {
  uint64_t calls = 0;
  uint64_t ns = 0;
  uint64_t errors = 0;
  uint64_t scalars = 0;
  uint64_t flops = 0;
  uint64_t serial = 0;
  uint64_t parallel = 0;
  uint64_t deferred = 0;
  uint64_t deferred_ns = 0;
  uint64_t max_ns = 0;
  uint64_t counts[kHistBuckets] = {};

  // Members mirror the atomics' names; `this->` keeps the plain += from
  // pattern-matching as an implicit-order atomic access in grb_analyze.
  void add(const OpCounters& c) {
    this->calls += ld(c.calls);
    this->ns += ld(c.ns);
    this->errors += ld(c.errors);
    this->scalars += ld(c.scalars);
    this->flops += ld(c.flops);
    this->serial += ld(c.serial);
    this->parallel += ld(c.parallel);
    this->deferred += ld(c.deferred);
    this->deferred_ns += ld(c.deferred_ns);
    uint64_t m = ld(c.max_ns);
    if (m > this->max_ns) this->max_ns = m;
    for (int sh = 0; sh < kHistShards; ++sh)
      for (int b = 0; b < kHistBuckets; ++b)
        counts[b] += c.hist[sh][b].load(std::memory_order_relaxed);
  }

  HistSummary summarize() const { return summarize_counts(counts, max_ns); }
};

struct PoolCounters {
  std::atomic<uint64_t> submitted{0};   // chunks handed to parallel_for
  std::atomic<uint64_t> chunks{0};      // chunks executed (any lane)
  std::atomic<uint64_t> steals{0};      // chunks executed by worker lanes
  std::atomic<uint64_t> parks{0};       // cv-wait episodes
  std::atomic<uint64_t> park_ns{0};     // total cv-wait duration
  std::atomic<uint64_t> busy{0};        // currently-running lanes (gauge)
  std::atomic<uint64_t> busy_hw{0};     // high-water of busy

  void reset() {
    // busy is a live gauge; leave it to its owners.  Relaxed stores for
    // the rest: reset carries no ordering obligation.
    for (std::atomic<uint64_t>* c :
         {&submitted, &chunks, &steals, &parks, &park_ns, &busy_hw})
      c->store(0, std::memory_order_relaxed);
  }
};

struct Globals {
  std::atomic<uint64_t> queue_enqueued{0};
  std::atomic<uint64_t> queue_hw{0};
  std::atomic<uint64_t> queue_drained{0};
  std::atomic<uint64_t> pending_hw{0};
  std::atomic<uint64_t> pool_busy{0};  // sum over pools, for the C event
  std::atomic<uint64_t> trace_events{0};
  std::atomic<uint64_t> trace_dropped{0};
  // SpGEMM engine decisions (rows routed to each accumulator, symbolic
  // flop totals) and scratch-arena reuse outcomes.
  std::atomic<uint64_t> spgemm_rows_hash{0};
  std::atomic<uint64_t> spgemm_rows_dense{0};
  std::atomic<uint64_t> spgemm_flops_est{0};
  std::atomic<uint64_t> arena_hits{0};
  std::atomic<uint64_t> arena_misses{0};
  // Fusion-planner outcomes (chains selected, nodes fused into them,
  // dead writes eliminated) accumulated across materialization batches.
  std::atomic<uint64_t> fusion_chains{0};
  std::atomic<uint64_t> fusion_ops_fused{0};
  std::atomic<uint64_t> fusion_dead_writes{0};
  // Storage-format layer: publish-time format switches, descriptor-
  // transpose cache outcomes, and lazy canonical (CSR/sparse) view
  // expansions.
  std::atomic<uint64_t> format_switches{0};
  std::atomic<uint64_t> format_trans_hits{0};
  std::atomic<uint64_t> format_trans_misses{0};
  std::atomic<uint64_t> format_csr_conversions{0};
};

Globals g_globals;

// --- context-keyed op registry --------------------------------------------
// One entry per context id ever observed (registered by context.cpp or
// implicitly created by a bump).  Entries are never erased: a retired
// context's OpCounters objects stay alive so a racing or late bump
// never writes through a dangling reference; ctx_retire drains their
// values into the nearest live ancestor and read paths re-resolve, so
// retired entries stay logically empty.  std::map keeps stats_json
// deterministic; lookups happen only on enabled paths, so a lock per
// hook is acceptable there.

struct CtxEntry {
  uint64_t parent = 0;
  bool dead = false;
  std::map<std::string, std::unique_ptr<OpCounters>> ops;
};

std::mutex& reg_mu() {
  static std::mutex mu;
  return mu;
}
std::map<uint64_t, CtxEntry>& ctx_registry() {
  static auto* reg = new std::map<uint64_t, CtxEntry>();
  return *reg;
}
std::map<int, std::unique_ptr<PoolCounters>>& pool_registry() {
  static auto* reg = new std::map<int, std::unique_ptr<PoolCounters>>();
  return *reg;
}

// Nearest live ancestor of `id` (id itself when live or unregistered).
// Caller holds reg_mu.
uint64_t resolve_live(uint64_t id) {
  auto& reg = ctx_registry();
  uint64_t cur = id;
  for (int hop = 0; hop < 64; ++hop) {
    auto it = reg.find(cur);
    if (it == reg.end() || !it->second.dead) return cur;
    if (it->second.parent == cur) return cur;
    cur = it->second.parent;
  }
  return cur;
}

OpCounters& op_counters(uint64_t ctx_id, const char* name) {
  std::lock_guard<std::mutex> lock(reg_mu());
  auto& slot = ctx_registry()[ctx_id].ops[name];
  if (slot == nullptr) slot = std::make_unique<OpCounters>();
  return *slot;
}

OpCounters& op_counters(const char* name) {
  return op_counters(current_ctx(), name);
}

PoolCounters& pool_counters(int pool_id) {
  std::lock_guard<std::mutex> lock(reg_mu());
  auto& slot = pool_registry()[pool_id];
  if (slot == nullptr) slot = std::make_unique<PoolCounters>();
  return *slot;
}

// Aggregate one op across every context (the ungrouped stats_get view).
// Caller holds reg_mu.
bool agg_op(const char* op, OpAgg* out) {
  bool found = false;
  for (auto& ckv : ctx_registry()) {
    auto it = ckv.second.ops.find(op);
    if (it != ckv.second.ops.end()) {
      out->add(*it->second);
      found = true;
    }
  }
  return found;
}

// Resolved per-context view: every entry folded into its nearest live
// ancestor.  Caller holds reg_mu.
std::map<uint64_t, std::map<std::string, OpAgg>> ctx_view() {
  std::map<uint64_t, std::map<std::string, OpAgg>> view;
  for (auto& ckv : ctx_registry()) {
    if (ckv.second.ops.empty()) continue;
    uint64_t target = resolve_live(ckv.first);
    for (auto& okv : ckv.second.ops) view[target][okv.first].add(*okv.second);
  }
  return view;
}

// --- lock-contention profiler ---------------------------------------------
// Fixed open-addressed table keyed by the site-name string POINTER (a
// function-name literal), so recording is allocation-free and safe
// while arbitrary library mutexes are held — the exact property the
// no-alloc-under-lock analyzer rule exists to protect.  Two literals
// with identical text in different translation units claim separate
// slots; read paths merge by strcmp.  Hist is unsharded: contended
// acquisitions are orders of magnitude rarer than op bumps.

struct LockSiteSlot {
  std::atomic<const char*> name{nullptr};
  std::atomic<uint64_t> acquires{0};
  std::atomic<uint64_t> contended{0};
  std::atomic<uint64_t> wait_ns{0};
  std::atomic<uint64_t> max_wait_ns{0};
  std::atomic<uint64_t> hist[kHistBuckets] = {};
};

constexpr size_t kLockSiteCap = 256;  // power of two
LockSiteSlot g_lock_sites[kLockSiteCap];

LockSiteSlot* lock_site_slot(const char* site) {
  size_t h = (reinterpret_cast<uintptr_t>(site) >> 3) * 0x9E3779B97F4A7C15ull;
  h >>= 48;
  for (size_t probe = 0; probe < kLockSiteCap; ++probe) {
    LockSiteSlot& s = g_lock_sites[(h + probe) & (kLockSiteCap - 1)];
    const char* cur = s.name.load(std::memory_order_acquire);
    if (cur == site) return &s;
    if (cur == nullptr) {
      if (s.name.compare_exchange_strong(cur, site,
                                         std::memory_order_acq_rel,
                                         std::memory_order_acquire))
        return &s;
      if (cur == site) return &s;  // lost the race to ourselves
    }
  }
  return nullptr;  // table full: drop the sample (bounded by design)
}

struct LockAgg {
  uint64_t acquires = 0;
  uint64_t contended = 0;
  uint64_t wait_ns = 0;
  uint64_t max_ns = 0;
  uint64_t counts[kHistBuckets] = {};

  HistSummary summarize() const { return summarize_counts(counts, max_ns); }
};

// Name-merged read view of the site table (no lock needed: slots are
// all-atomic and never deleted).
std::map<std::string, LockAgg> lock_view() {
  std::map<std::string, LockAgg> view;
  for (const LockSiteSlot& s : g_lock_sites) {
    const char* name = s.name.load(std::memory_order_acquire);
    if (name == nullptr) continue;
    LockAgg& a = view[name];
    a.acquires += ld(s.acquires);
    a.contended += ld(s.contended);
    a.wait_ns += ld(s.wait_ns);
    uint64_t m = ld(s.max_wait_ns);
    if (m > a.max_ns) a.max_ns = m;
    for (int b = 0; b < kHistBuckets; ++b) a.counts[b] += ld(s.hist[b]);
  }
  return view;
}

void lock_sites_reset() {
  for (LockSiteSlot& s : g_lock_sites) {
    if (s.name.load(std::memory_order_acquire) == nullptr) continue;
    for (std::atomic<uint64_t>* c :
         {&s.acquires, &s.contended, &s.wait_ns, &s.max_wait_ns})
      c->store(0, std::memory_order_relaxed);
    for (auto& b : s.hist) b.store(0, std::memory_order_relaxed);
  }
}

// --- stall table + watchdog ------------------------------------------------

const char* const kStallClaimed = "(claiming)";

struct StallSlot {
  std::atomic<const char*> what{nullptr};  // null = free
  std::atomic<uint32_t> kind{0};
  std::atomic<uint64_t> ctx{0};
  std::atomic<uint64_t> since_ns{0};
  std::atomic<const LockOwnerInfo*> holder{nullptr};
  std::atomic<uint64_t> reported{0};  // since_ns value already tripped
};

constexpr int kStallCap = 64;
StallSlot g_stalls[kStallCap];

std::atomic<uint64_t> g_watchdog_deadline_ns{0};
std::atomic<uint64_t> g_watchdog_trips{0};

struct Watchdog {
  std::thread th;
  std::mutex mu;
  std::condition_variable cv;
  bool stop = false;
};

std::mutex& watchdog_ctl_mu() {
  static std::mutex mu;
  return mu;
}
Watchdog*& watchdog_instance() {
  static Watchdog* w = nullptr;
  return w;
}

void watchdog_scan() {
  const uint64_t deadline = g_watchdog_deadline_ns.load(
      std::memory_order_relaxed);
  if (deadline == 0) return;
  const uint64_t now = now_ns();
  for (StallSlot& s : g_stalls) {
    const char* what = s.what.load(std::memory_order_acquire);
    if (what == nullptr || what == kStallClaimed) continue;
    uint64_t since = s.since_ns.load(std::memory_order_relaxed);
    if (since == 0 || now <= since || now - since < deadline) continue;
    uint64_t rep = s.reported.load(std::memory_order_relaxed);
    if (rep == since) continue;  // this episode already reported
    if (!s.reported.compare_exchange_strong(rep, since,
                                            std::memory_order_relaxed,
                                            std::memory_order_relaxed))
      continue;
    const uint64_t ctx = s.ctx.load(std::memory_order_relaxed);
    const uint32_t kind = s.kind.load(std::memory_order_relaxed);
    const uint64_t age_ms = (now - since) / 1000000u;
    g_watchdog_trips.fetch_add(1, std::memory_order_relaxed);
    char reason[256];
    const LockOwnerInfo* holder =
        s.holder.load(std::memory_order_relaxed);
    const char* hsite =
        holder != nullptr ? holder->site.load(std::memory_order_relaxed)
                          : nullptr;
    if (hsite != nullptr) {
      std::snprintf(reason, sizeof reason,
                    "watchdog: %s \"%s\" blocked %llums (ctx=%llu) "
                    "holder=%s (ctx=%llu)",
                    kind == kStallLockWait ? "lock-wait" : "completion",
                    what, static_cast<unsigned long long>(age_ms),
                    static_cast<unsigned long long>(ctx), hsite,
                    static_cast<unsigned long long>(
                        holder->ctx.load(std::memory_order_relaxed)));
    } else {
      std::snprintf(reason, sizeof reason,
                    "watchdog: %s \"%s\" blocked %llums (ctx=%llu)",
                    kind == kStallLockWait ? "lock-wait" : "completion",
                    what, static_cast<unsigned long long>(age_ms),
                    static_cast<unsigned long long>(ctx));
    }
    fr_record(FrKind::kWatchdog, what,
              age_ms > 0x7fffffff ? 0x7fffffff
                                  : static_cast<int32_t>(age_ms),
              ctx, 0);
    fr_auto_dump(reason);
  }
}

void watchdog_loop() {
  Watchdog* w = watchdog_instance();  // stable: stop() joins before delete
  for (;;) {
    uint64_t deadline = g_watchdog_deadline_ns.load(
        std::memory_order_relaxed);
    uint64_t period_ns = deadline / 4;
    if (period_ns < 1000000u) period_ns = 1000000u;  // >= 1ms
    {
      std::unique_lock<std::mutex> lock(w->mu);
      w->cv.wait_for(lock, std::chrono::nanoseconds(period_ns));
      if (w->stop) return;
    }
    watchdog_scan();
  }
}

// --- trace ------------------------------------------------------------------

// One recorded event.  `name`/`cat`/`akey` point at static-storage
// strings (function-name literals, hook-site literals), never owned.
// `flow` is the flow-event binding id ('s'/'t' phases); `ctx` tags 'X'
// spans with the tenant context that produced them (0 = omit).
struct Event {
  const char* name;
  const char* cat;
  char ph;        // 'X' complete span, 'C' counter, 's'/'t' flow
  uint32_t tid;
  uint64_t ts_ns;
  uint64_t dur_ns;
  const char* akey;  // optional single arg (nullptr = none)
  uint64_t aval;
  uint64_t flow;
  uint64_t ctx;
};

constexpr size_t kMaxTraceEvents = 1u << 20;

std::mutex& trace_mu() {
  static std::mutex mu;
  return mu;
}
std::vector<Event>& trace_buf() {
  static auto* buf = new std::vector<Event>();
  return *buf;
}
std::string& trace_path() {
  static auto* path = new std::string();
  return *path;
}

void record_event(const char* name, const char* cat, char ph, uint64_t ts_ns,
                  uint64_t dur_ns, const char* akey, uint64_t aval,
                  uint64_t flow = 0, uint64_t ctx = 0) {
  std::lock_guard<std::mutex> lock(trace_mu());
  if (!trace_enabled()) return;  // raced with a dump/stop; drop silently
  auto& buf = trace_buf();
  if (buf.size() >= kMaxTraceEvents) {
    g_globals.trace_dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  buf.push_back(Event{name, cat, ph, this_tid(), ts_ns, dur_ns, akey, aval,
                      flow, ctx});
  g_globals.trace_events.fetch_add(1, std::memory_order_relaxed);
}

void set_flag(uint32_t flag, bool on) {
  if (on) {
    detail::g_flags.fetch_or(flag, std::memory_order_relaxed);
  } else {
    detail::g_flags.fetch_and(~flag, std::memory_order_relaxed);
  }
}

// --- env activation state ---------------------------------------------------

bool g_env_stats = false;
bool g_env_trace = false;
std::string& env_metrics_path() {
  static auto* path = new std::string();
  return *path;
}
std::string& env_stats_json_path() {
  static auto* path = new std::string();
  return *path;
}

void json_append_escaped(std::string* out, const char* s) {
  for (; *s != '\0'; ++s) {
    char c = *s;
    if (c == '"' || c == '\\') {
      out->push_back('\\');
      out->push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", c);
      out->append(buf);
    } else {
      out->push_back(c);
    }
  }
}

// Prometheus label-value escaping (exposition format 0.0.4): backslash,
// double-quote and newline must be escaped inside label values.
void prom_append_escaped(std::string* out, const char* s) {
  for (; *s != '\0'; ++s) {
    char c = *s;
    if (c == '\\' || c == '"') {
      out->push_back('\\');
      out->push_back(c);
    } else if (c == '\n') {
      out->append("\\n");
    } else {
      out->push_back(c);
    }
  }
}

}  // namespace

uint64_t now_ns() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch())
          .count());
}

// --- current op / current context -------------------------------------------

namespace detail {
thread_local const char* t_current_op = nullptr;
thread_local uint64_t t_current_ctx = 0;
}  // namespace detail

// --- context registry -------------------------------------------------------

void ctx_register(uint64_t ctx_id, uint64_t parent_id) {
  std::lock_guard<std::mutex> lock(reg_mu());
  CtxEntry& e = ctx_registry()[ctx_id];
  e.parent = parent_id;
  e.dead = false;
}

void ctx_retire(uint64_t ctx_id) {
  std::lock_guard<std::mutex> lock(reg_mu());
  auto& reg = ctx_registry();
  CtxEntry& e = reg[ctx_id];  // upsert: retire-before-bump is legal
  e.dead = true;
  uint64_t target = resolve_live(e.parent);
  if (target == ctx_id) return;  // no live ancestor: keep as-is
  for (auto& okv : e.ops) {
    auto& slot = reg[target].ops[okv.first];
    if (slot == nullptr) slot = std::make_unique<OpCounters>();
    okv.second->drain_into(*slot);
  }
}

// --- hooks ------------------------------------------------------------------

void api_return(const char* op, uint64_t t0, bool failed) {
  uint32_t f = flags();
  if ((f & (kStatsFlag | kTraceFlag)) == 0) return;
  uint64_t t1 = now_ns();
  if ((f & kStatsFlag) != 0) {
    OpCounters& c = op_counters(op);
    c.calls.fetch_add(1, std::memory_order_relaxed);
    c.ns.fetch_add(t1 - t0, std::memory_order_relaxed);
    c.hist_add(t1 - t0);
    if (failed) c.errors.fetch_add(1, std::memory_order_relaxed);
  }
  if ((f & kTraceFlag) != 0) {
    record_event(op, "api", 'X', t0, t1 - t0,
                 failed ? "failed" : nullptr, 1, 0, current_ctx());
  }
}

void deferred_return(const char* op, uint64_t t0, uint64_t enq_ns,
                     bool failed) {
  uint32_t f = flags();
  if ((f & (kStatsFlag | kTraceFlag)) == 0) return;
  uint64_t t1 = now_ns();
  if ((f & kStatsFlag) != 0) {
    OpCounters& c = op_counters(op);
    c.deferred.fetch_add(1, std::memory_order_relaxed);
    c.deferred_ns.fetch_add(t1 - t0, std::memory_order_relaxed);
    c.hist_add(t1 - t0);
    if (failed) c.errors.fetch_add(1, std::memory_order_relaxed);
  }
  if ((f & kTraceFlag) != 0) {
    uint64_t gap_us =
        (enq_ns != 0 && t0 > enq_ns) ? (t0 - enq_ns) / 1000u : 0;
    record_event(op, "deferred", 'X', t0, t1 - t0, "gap_us", gap_us, 0,
                 current_ctx());
  }
}

void latency_record(const char* op, uint64_t ns) {
  if (!stats_enabled()) return;
  op_counters(op).hist_add(ns);
}

void count_path(bool parallel) {
  if (!stats_enabled()) return;
  OpCounters& c = op_counters(current_op());
  (parallel ? c.parallel : c.serial).fetch_add(1, std::memory_order_relaxed);
}

void add_scalars(uint64_t n) {
  if (!stats_enabled()) return;
  op_counters(current_op()).scalars.fetch_add(n, std::memory_order_relaxed);
}

void add_flops(uint64_t n) {
  if (!stats_enabled()) return;
  op_counters(current_op()).flops.fetch_add(n, std::memory_order_relaxed);
}

void spgemm_rows(uint64_t rows_hash, uint64_t rows_dense) {
  if (!stats_enabled()) return;
  if (rows_hash != 0)
    g_globals.spgemm_rows_hash.fetch_add(rows_hash, std::memory_order_relaxed);
  if (rows_dense != 0)
    g_globals.spgemm_rows_dense.fetch_add(rows_dense,
                                          std::memory_order_relaxed);
}

void spgemm_flops_estimated(uint64_t n) {
  if (!stats_enabled()) return;
  g_globals.spgemm_flops_est.fetch_add(n, std::memory_order_relaxed);
}

void arena_request(bool hit) {
  if (!stats_enabled()) return;
  (hit ? g_globals.arena_hits : g_globals.arena_misses)
      .fetch_add(1, std::memory_order_relaxed);
}

void fusion_plan(uint64_t chains, uint64_t ops_fused, uint64_t dead_writes) {
  if (!stats_enabled()) return;
  if (chains != 0)
    g_globals.fusion_chains.fetch_add(chains, std::memory_order_relaxed);
  if (ops_fused != 0)
    g_globals.fusion_ops_fused.fetch_add(ops_fused, std::memory_order_relaxed);
  if (dead_writes != 0)
    g_globals.fusion_dead_writes.fetch_add(dead_writes,
                                           std::memory_order_relaxed);
}

void fusion_span(const char* name, uint64_t t0) {
  if (!trace_enabled()) return;
  record_event(name, "fusion", 'X', t0, now_ns() - t0, nullptr, 0, 0,
               current_ctx());
}

void format_switch() {
  if (!stats_enabled()) return;
  g_globals.format_switches.fetch_add(1, std::memory_order_relaxed);
}

void format_transpose_cache(bool hit) {
  if (!stats_enabled()) return;
  (hit ? g_globals.format_trans_hits : g_globals.format_trans_misses)
      .fetch_add(1, std::memory_order_relaxed);
}

void format_csr_convert() {
  if (!stats_enabled()) return;
  g_globals.format_csr_conversions.fetch_add(1, std::memory_order_relaxed);
}

// --- causal flow linking ----------------------------------------------------

uint64_t next_flow_id() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

void flow_begin(const char* op, uint64_t flow_id) {
  if (!trace_enabled() || flow_id == 0) return;
  record_event(op, "flow", 's', now_ns(), 0, nullptr, 0, flow_id,
               current_ctx());
}

void flow_step(const char* op, uint64_t flow_id) {
  if (!trace_enabled() || flow_id == 0) return;
  record_event(op, "flow", 't', now_ns(), 0, nullptr, 0, flow_id,
               current_ctx());
}

void queue_depth_sample(size_t depth) {
  uint32_t f = flags();
  if ((f & (kStatsFlag | kTraceFlag)) == 0) return;
  g_globals.queue_enqueued.fetch_add(1, std::memory_order_relaxed);
  bump_high_water(g_globals.queue_hw, depth);
  if ((f & kTraceFlag) != 0) {
    record_event("queue.depth", "gauge", 'C', now_ns(), 0, "value", depth);
  }
}

void queue_drained(size_t batch) {
  if (!telemetry_enabled()) return;
  g_globals.queue_drained.fetch_add(batch, std::memory_order_relaxed);
}

void pending_tuples_sample(size_t count) {
  uint32_t f = flags();
  if ((f & (kStatsFlag | kTraceFlag)) == 0) return;
  bump_high_water(g_globals.pending_hw, count);
  if ((f & kTraceFlag) != 0) {
    record_event("pending.tuples", "gauge", 'C', now_ns(), 0, "value", count);
  }
}

int next_pool_id() {
  static std::atomic<int> next{0};
  return next.fetch_add(1, std::memory_order_relaxed);
}

void pool_submit(int pool_id, uint64_t nchunks) {
  if (!telemetry_enabled()) return;
  pool_counters(pool_id).submitted.fetch_add(nchunks,
                                             std::memory_order_relaxed);
}

void pool_chunk(int pool_id, bool worker_lane) {
  if (!telemetry_enabled()) return;
  PoolCounters& c = pool_counters(pool_id);
  c.chunks.fetch_add(1, std::memory_order_relaxed);
  if (worker_lane) c.steals.fetch_add(1, std::memory_order_relaxed);
}

void pool_park(int pool_id, uint64_t wait_ns) {
  if (!telemetry_enabled()) return;
  PoolCounters& c = pool_counters(pool_id);
  c.parks.fetch_add(1, std::memory_order_relaxed);
  c.park_ns.fetch_add(wait_ns, std::memory_order_relaxed);
  // Surface park waits beside lock waits in the contention profile:
  // a worker parked for long stretches under load is the same signal
  // class as a hot mutex.
  lock_wait("ThreadPool::park", wait_ns);
}

void pool_busy_enter(int pool_id) {
  uint32_t f = flags();
  if ((f & (kStatsFlag | kTraceFlag)) == 0) return;
  PoolCounters& c = pool_counters(pool_id);
  uint64_t busy = c.busy.fetch_add(1, std::memory_order_relaxed) + 1;
  bump_high_water(c.busy_hw, busy);
  uint64_t total =
      g_globals.pool_busy.fetch_add(1, std::memory_order_relaxed) + 1;
  if ((f & kTraceFlag) != 0) {
    record_event("pool.busy", "gauge", 'C', now_ns(), 0, "value", total);
  }
}

void pool_busy_exit(int pool_id) {
  uint32_t f = flags();
  if ((f & (kStatsFlag | kTraceFlag)) == 0) return;
  pool_counters(pool_id).busy.fetch_sub(1, std::memory_order_relaxed);
  uint64_t total =
      g_globals.pool_busy.fetch_sub(1, std::memory_order_relaxed) - 1;
  if ((f & kTraceFlag) != 0) {
    record_event("pool.busy", "gauge", 'C', now_ns(), 0, "value", total);
  }
}

// --- lock-contention profiler -----------------------------------------------

void lock_acquired(const char* site) {
  if (!stats_enabled()) return;
  LockSiteSlot* s = lock_site_slot(site);
  if (s != nullptr) s->acquires.fetch_add(1, std::memory_order_relaxed);
}

void lock_wait(const char* site, uint64_t wait_ns) {
  if (!stats_enabled()) return;
  LockSiteSlot* s = lock_site_slot(site);
  if (s == nullptr) return;
  s->acquires.fetch_add(1, std::memory_order_relaxed);
  s->contended.fetch_add(1, std::memory_order_relaxed);
  s->wait_ns.fetch_add(wait_ns, std::memory_order_relaxed);
  s->hist[hist_bucket(wait_ns)].fetch_add(1, std::memory_order_relaxed);
  bump_high_water(s->max_wait_ns, wait_ns);
}

// --- stall table + watchdog -------------------------------------------------

int stall_begin(StallKind kind, const char* what, uint64_t ctx_id,
                const LockOwnerInfo* holder) {
  for (int i = 0; i < kStallCap; ++i) {
    const char* expected = nullptr;
    if (!g_stalls[i].what.compare_exchange_strong(
            expected, kStallClaimed, std::memory_order_acquire,
            std::memory_order_relaxed))
      continue;
    StallSlot& s = g_stalls[i];
    s.kind.store(kind, std::memory_order_relaxed);
    s.ctx.store(ctx_id, std::memory_order_relaxed);
    s.since_ns.store(now_ns(), std::memory_order_relaxed);
    s.holder.store(holder, std::memory_order_relaxed);
    s.reported.store(0, std::memory_order_relaxed);
    s.what.store(what, std::memory_order_release);
    return i;
  }
  return -1;  // table full: this wait is invisible to the watchdog
}

void stall_end(int token) {
  if (token < 0) return;
  g_stalls[token].what.store(nullptr, std::memory_order_release);
}

void watchdog_start(uint64_t deadline_ms) {
  if (deadline_ms == 0) return;
  std::lock_guard<std::mutex> lock(watchdog_ctl_mu());
  g_watchdog_deadline_ns.store(deadline_ms * 1000000ull,
                               std::memory_order_relaxed);
  if (watchdog_instance() != nullptr) return;  // re-arm: new deadline only
  auto* w = new Watchdog();
  watchdog_instance() = w;
  set_flag(kWatchdogFlag, true);
  w->th = std::thread(&watchdog_loop);
}

void watchdog_stop() {
  std::lock_guard<std::mutex> lock(watchdog_ctl_mu());
  Watchdog* w = watchdog_instance();
  if (w == nullptr) return;
  set_flag(kWatchdogFlag, false);
  {
    std::lock_guard<std::mutex> l(w->mu);
    w->stop = true;
  }
  w->cv.notify_all();
  w->th.join();
  delete w;
  watchdog_instance() = nullptr;
  g_watchdog_deadline_ns.store(0, std::memory_order_relaxed);
}

uint64_t watchdog_trips() {
  return g_watchdog_trips.load(std::memory_order_relaxed);
}

// --- control / introspection ------------------------------------------------

void stats_set_enabled(bool on) {
  set_flag(kStatsFlag, on);
  // Counters without their why are half an answer: the decision audit
  // rides the same switch, so GxB_Stats_enable always yields an
  // explainable plan.  (Disabling stats disables the audit too; the
  // profiler stays independent — it has real per-region cost.)
  set_flag(kDecisionFlag, on);
}

void stats_reset() {
  std::lock_guard<std::mutex> lock(reg_mu());
  for (auto& ckv : ctx_registry())
    for (auto& okv : ckv.second.ops) okv.second->reset();
  for (auto& kv : pool_registry()) kv.second->reset();
  lock_sites_reset();
  g_watchdog_trips.store(0, std::memory_order_relaxed);
  g_globals.queue_enqueued = 0;
  g_globals.queue_hw = 0;
  g_globals.queue_drained = 0;
  g_globals.pending_hw = 0;
  g_globals.spgemm_rows_hash = 0;
  g_globals.spgemm_rows_dense = 0;
  g_globals.spgemm_flops_est = 0;
  g_globals.arena_hits = 0;
  g_globals.arena_misses = 0;
  g_globals.fusion_chains = 0;
  g_globals.fusion_ops_fused = 0;
  g_globals.fusion_dead_writes = 0;
  g_globals.format_switches = 0;
  g_globals.format_trans_hits = 0;
  g_globals.format_trans_misses = 0;
  g_globals.format_csr_conversions = 0;
  // trace_events / trace_dropped reset with the trace buffer, and the
  // pool_busy live gauge belongs to in-flight parallel_for calls.
  decision_reset();
  prof_reset();
}

namespace {

struct AggField {
  const char* name;
  uint64_t value;
};

// The per-op fields, in stats_json order.
std::vector<AggField> agg_fields(const OpAgg& a) {
  return {{"calls", a.calls},       {"ns", a.ns},
          {"errors", a.errors},     {"scalars", a.scalars},
          {"flops", a.flops},       {"serial", a.serial},
          {"parallel", a.parallel}, {"deferred", a.deferred},
          {"deferred_ns", a.deferred_ns}};
}

struct FieldRef {
  const char* name;
  const std::atomic<uint64_t>* value;
};

std::vector<FieldRef> pool_fields(const PoolCounters& c) {
  return {{"submitted", &c.submitted},
          {"chunks", &c.chunks},
          {"steals", &c.steals},
          {"parks", &c.parks},
          {"park_ns", &c.park_ns},
          {"busy_high_water", &c.busy_hw}};
}

// Memory / flight-recorder / watchdog gauges are function-backed, not
// stored atomics; one table serves stats_get, stats_json and the
// exposition.
struct FnGauge {
  const char* name;
  uint64_t (*value)();
};

uint64_t watchdog_deadline_ms_now() {
  return g_watchdog_deadline_ns.load(std::memory_order_relaxed) / 1000000u;
}

const FnGauge kFnGauges[] = {
    {"mem.live_bytes", &mem_live_total},
    {"mem.peak_bytes", &mem_peak_total},
    {"mem.arena_live_bytes", &mem_arena_live},
    {"mem.arena_peak_bytes", &mem_arena_peak},
    {"mem.objects", &mem_object_count},
    {"flight.events", &fr_event_count},
    {"flight.overwrites", &fr_overwrites},
    {"flight.capacity", &fr_capacity},
    {"watchdog.trips", &watchdog_trips},
    {"watchdog.deadline_ms", &watchdog_deadline_ms_now},
};

// Histogram-derived per-op field names share one decoder.
bool pick_hist_field(const char* field, const HistSummary& s,
                     uint64_t* value) {
  if (std::strcmp(field, "p50_ns") == 0) {
    *value = s.p50;
  } else if (std::strcmp(field, "p90_ns") == 0) {
    *value = s.p90;
  } else if (std::strcmp(field, "p99_ns") == 0) {
    *value = s.p99;
  } else if (std::strcmp(field, "max_ns") == 0) {
    *value = s.max;
  } else {
    return false;
  }
  return true;
}

bool agg_field_get(const OpAgg& a, const char* field, uint64_t* value) {
  for (const AggField& f : agg_fields(a)) {
    if (std::strcmp(field, f.name) == 0) {
      *value = f.value;
      return true;
    }
  }
  return pick_hist_field(field, a.summarize(), value);
}

}  // namespace

bool stats_get(const char* name, uint64_t* value) {
  *value = 0;
  if (name == nullptr) return false;
  for (const auto& g : kFnGauges) {
    if (std::strcmp(name, g.name) == 0) {
      *value = g.value();
      return true;
    }
  }
  // Globals first.
  struct GlobalRef {
    const char* name;
    const std::atomic<uint64_t>* value;
  };
  const GlobalRef globals[] = {
      {"queue.enqueued", &g_globals.queue_enqueued},
      {"queue.high_water", &g_globals.queue_hw},
      {"queue.drained", &g_globals.queue_drained},
      {"pending.high_water", &g_globals.pending_hw},
      {"trace.events", &g_globals.trace_events},
      {"trace.dropped", &g_globals.trace_dropped},
      {"spgemm.rows_hash", &g_globals.spgemm_rows_hash},
      {"spgemm.rows_dense", &g_globals.spgemm_rows_dense},
      {"spgemm.flops_estimated", &g_globals.spgemm_flops_est},
      {"arena.reuse_hits", &g_globals.arena_hits},
      {"arena.reuse_misses", &g_globals.arena_misses},
      {"fusion.chains", &g_globals.fusion_chains},
      {"fusion.ops_fused", &g_globals.fusion_ops_fused},
      {"fusion.dead_writes_eliminated", &g_globals.fusion_dead_writes},
      {"format.switches", &g_globals.format_switches},
      {"format.transpose_cache_hits", &g_globals.format_trans_hits},
      {"format.transpose_cache_misses", &g_globals.format_trans_misses},
      {"format.csr_conversions", &g_globals.format_csr_conversions},
  };
  for (const auto& g : globals) {
    if (std::strcmp(name, g.name) == 0) {
      *value = ld(*g.value);
      return true;
    }
  }
  // Per-site lock contention: "lock.<site>.<field>" (site may itself
  // contain "::" but never a dot; the last dot splits the field).
  if (std::strncmp(name, "lock.", 5) == 0) {
    const char* dot = std::strrchr(name + 5, '.');
    if (dot == nullptr || dot == name + 5) return false;
    std::string site(name + 5, static_cast<size_t>(dot - (name + 5)));
    auto view = lock_view();
    auto it = view.find(site);
    if (it == view.end()) return false;
    const char* field = dot + 1;
    const LockAgg& a = it->second;
    if (std::strcmp(field, "acquires") == 0) {
      *value = a.acquires;
      return true;
    }
    if (std::strcmp(field, "contended") == 0) {
      *value = a.contended;
      return true;
    }
    if (std::strcmp(field, "wait_ns") == 0) {
      *value = a.wait_ns;
      return true;
    }
    return pick_hist_field(field, a.summarize(), value);
  }
  // Decision-audit and profiler counters live in their own modules;
  // forward by prefix before the per-op fallback can mistake
  // "decision.exec_path.records" for an op named "decision.exec_path".
  if (std::strncmp(name, "decision.", 9) == 0)
    return decision_stats_get(name, value);
  if (std::strncmp(name, "prof.", 5) == 0) return prof_stats_get(name, value);
  std::lock_guard<std::mutex> lock(reg_mu());
  // Pool aggregates: "pool.<field>" sums over every pool.
  if (std::strncmp(name, "pool.", 5) == 0) {
    const char* field = name + 5;
    bool known = false;
    uint64_t sum = 0;
    for (auto& kv : pool_registry()) {
      for (const auto& f : pool_fields(*kv.second)) {
        if (std::strcmp(field, f.name) == 0) {
          sum += ld(*f.value);
          known = true;
        }
      }
    }
    if (!known) {
      // Field-name check against a throwaway instance, so "pool.parks"
      // resolves (to 0) even before any pool exists.
      static const PoolCounters probe;
      for (const auto& f : pool_fields(probe)) {
        if (std::strcmp(field, f.name) == 0) known = true;
      }
    }
    *value = sum;
    return known;
  }
  // Per-op: "<op>.<field>", summed across every context.
  const char* dot = std::strrchr(name, '.');
  if (dot == nullptr || dot == name) return false;
  std::string op(name, static_cast<size_t>(dot - name));
  OpAgg agg;
  if (!agg_op(op.c_str(), &agg)) return false;
  return agg_field_get(agg, dot + 1, value);
}

bool stats_get_ctx(uint64_t ctx_id, const char* name, uint64_t* value) {
  *value = 0;
  if (name == nullptr) return false;
  // Per-context memory: group raw object slices, then resolve dead home
  // contexts to their nearest live ancestor.  mem_by_ctx takes obj_mu;
  // keep it strictly before reg_mu (same order as everywhere else).
  if (std::strncmp(name, "mem.", 4) == 0) {
    auto slices = mem_by_ctx();
    uint64_t live = 0, peak = 0, objects = 0;
    {
      std::lock_guard<std::mutex> lock(reg_mu());
      for (const auto& sl : slices) {
        if (resolve_live(sl.ctx) != ctx_id) continue;
        live += sl.live_bytes;
        peak += sl.peak_bytes;
        objects += sl.objects;
      }
    }
    if (std::strcmp(name, "mem.live_bytes") == 0) {
      *value = live;
      return true;
    }
    if (std::strcmp(name, "mem.peak_bytes") == 0) {
      *value = peak;
      return true;
    }
    if (std::strcmp(name, "mem.objects") == 0) {
      *value = objects;
      return true;
    }
    return false;
  }
  // Per-op within the context subtree (entries resolving here).
  const char* dot = std::strrchr(name, '.');
  if (dot == nullptr || dot == name) return false;
  std::string op(name, static_cast<size_t>(dot - name));
  std::lock_guard<std::mutex> lock(reg_mu());
  OpAgg agg;
  bool found = false;
  for (auto& ckv : ctx_registry()) {
    if (resolve_live(ckv.first) != ctx_id) continue;
    auto it = ckv.second.ops.find(op);
    if (it == ckv.second.ops.end()) continue;
    agg.add(*it->second);
    found = true;
  }
  if (!found) return false;
  return agg_field_get(agg, dot + 1, value);
}

namespace {

void json_append_op_agg(std::string* out, const OpAgg& a) {
  char buf[96];
  out->push_back('{');
  bool first = true;
  for (const AggField& f : agg_fields(a)) {
    if (!first) out->push_back(',');
    first = false;
    std::snprintf(buf, sizeof buf, "\"%s\":%llu", f.name,
                  static_cast<unsigned long long>(f.value));
    out->append(buf);
  }
  HistSummary hs = a.summarize();
  std::snprintf(buf, sizeof buf,
                ",\"p50_ns\":%llu,\"p90_ns\":%llu,\"p99_ns\":%llu,"
                "\"max_ns\":%llu",
                static_cast<unsigned long long>(hs.p50),
                static_cast<unsigned long long>(hs.p90),
                static_cast<unsigned long long>(hs.p99),
                static_cast<unsigned long long>(hs.max));
  out->append(buf);
  out->push_back('}');
}

// Row-trim predicate for stats_json(trim_zero_rows): an op aggregate
// with no calls and no deferred residue carries no information, only
// bytes (bench JSON lines grew past review-ability; see bench_util).
bool op_agg_all_zero(const OpAgg& a) {
  return a.calls == 0 && a.ns == 0 && a.errors == 0 && a.scalars == 0 &&
         a.flops == 0 && a.serial == 0 && a.parallel == 0 &&
         a.deferred == 0 && a.deferred_ns == 0 && a.max_ns == 0;
}

}  // namespace

std::string stats_json(bool trim_zero_rows) {
  // Memory slices first: obj_mu strictly before reg_mu.
  auto mem_slices = mem_by_ctx();
  std::lock_guard<std::mutex> lock(reg_mu());
  auto view = ctx_view();
  // Merge the per-context view into the flat per-op map the "ops"
  // section has always reported.
  std::map<std::string, OpAgg> flat;
  for (auto& ckv : view)
    for (auto& okv : ckv.second) {
      OpAgg& dst = flat[okv.first];
      // OpAgg::add wants an OpCounters; merge the already-aggregated
      // values directly instead.
      dst.calls += okv.second.calls;
      dst.ns += okv.second.ns;
      dst.errors += okv.second.errors;
      dst.scalars += okv.second.scalars;
      dst.flops += okv.second.flops;
      dst.serial += okv.second.serial;
      dst.parallel += okv.second.parallel;
      dst.deferred += okv.second.deferred;
      dst.deferred_ns += okv.second.deferred_ns;
      if (okv.second.max_ns > dst.max_ns) dst.max_ns = okv.second.max_ns;
      for (int b = 0; b < kHistBuckets; ++b)
        dst.counts[b] += okv.second.counts[b];
    }
  std::string out = "{\"ops\":{";
  bool first = true;
  char buf[96];
  for (auto& kv : flat) {
    if (trim_zero_rows && op_agg_all_zero(kv.second)) continue;
    if (!first) out.push_back(',');
    first = false;
    out.push_back('"');
    json_append_escaped(&out, kv.first.c_str());
    out.append("\":");
    json_append_op_agg(&out, kv.second);
  }
  out.append("},\"global\":{");
  std::snprintf(buf, sizeof buf, "\"queue.enqueued\":%llu,",
                static_cast<unsigned long long>(ld(g_globals.queue_enqueued)));
  out.append(buf);
  std::snprintf(buf, sizeof buf, "\"queue.high_water\":%llu,",
                static_cast<unsigned long long>(ld(g_globals.queue_hw)));
  out.append(buf);
  std::snprintf(buf, sizeof buf, "\"queue.drained\":%llu,",
                static_cast<unsigned long long>(ld(g_globals.queue_drained)));
  out.append(buf);
  std::snprintf(buf, sizeof buf, "\"pending.high_water\":%llu,",
                static_cast<unsigned long long>(ld(g_globals.pending_hw)));
  out.append(buf);
  std::snprintf(buf, sizeof buf, "\"trace.events\":%llu,",
                static_cast<unsigned long long>(ld(g_globals.trace_events)));
  out.append(buf);
  std::snprintf(buf, sizeof buf, "\"trace.dropped\":%llu,",
                static_cast<unsigned long long>(ld(g_globals.trace_dropped)));
  out.append(buf);
  std::snprintf(buf, sizeof buf, "\"spgemm.rows_hash\":%llu,",
                static_cast<unsigned long long>(
                    ld(g_globals.spgemm_rows_hash)));
  out.append(buf);
  std::snprintf(buf, sizeof buf, "\"spgemm.rows_dense\":%llu,",
                static_cast<unsigned long long>(
                    ld(g_globals.spgemm_rows_dense)));
  out.append(buf);
  std::snprintf(buf, sizeof buf, "\"spgemm.flops_estimated\":%llu,",
                static_cast<unsigned long long>(
                    ld(g_globals.spgemm_flops_est)));
  out.append(buf);
  std::snprintf(buf, sizeof buf, "\"arena.reuse_hits\":%llu,",
                static_cast<unsigned long long>(ld(g_globals.arena_hits)));
  out.append(buf);
  std::snprintf(buf, sizeof buf, "\"arena.reuse_misses\":%llu,",
                static_cast<unsigned long long>(ld(g_globals.arena_misses)));
  out.append(buf);
  std::snprintf(buf, sizeof buf, "\"fusion.chains\":%llu,",
                static_cast<unsigned long long>(ld(g_globals.fusion_chains)));
  out.append(buf);
  std::snprintf(buf, sizeof buf, "\"fusion.ops_fused\":%llu,",
                static_cast<unsigned long long>(
                    ld(g_globals.fusion_ops_fused)));
  out.append(buf);
  std::snprintf(buf, sizeof buf, "\"fusion.dead_writes_eliminated\":%llu,",
                static_cast<unsigned long long>(
                    ld(g_globals.fusion_dead_writes)));
  out.append(buf);
  std::snprintf(buf, sizeof buf, "\"format.switches\":%llu,",
                static_cast<unsigned long long>(
                    ld(g_globals.format_switches)));
  out.append(buf);
  std::snprintf(buf, sizeof buf, "\"format.transpose_cache_hits\":%llu,",
                static_cast<unsigned long long>(
                    ld(g_globals.format_trans_hits)));
  out.append(buf);
  std::snprintf(buf, sizeof buf, "\"format.transpose_cache_misses\":%llu,",
                static_cast<unsigned long long>(
                    ld(g_globals.format_trans_misses)));
  out.append(buf);
  std::snprintf(buf, sizeof buf, "\"format.csr_conversions\":%llu",
                static_cast<unsigned long long>(
                    ld(g_globals.format_csr_conversions)));
  out.append(buf);
  // Memory-attribution, flight-recorder and watchdog gauges
  // (function-backed).
  for (const auto& g : kFnGauges) {
    std::snprintf(buf, sizeof buf, ",\"%s\":%llu", g.name,
                  static_cast<unsigned long long>(g.value()));
    out.append(buf);
  }
  out.append("},\"pools\":{");
  first = true;
  for (auto& kv : pool_registry()) {
    if (!first) out.push_back(',');
    first = false;
    std::snprintf(buf, sizeof buf, "\"%d\":{", kv.first);
    out.append(buf);
    bool ffirst = true;
    for (const auto& f : pool_fields(*kv.second)) {
      if (!ffirst) out.push_back(',');
      ffirst = false;
      std::snprintf(buf, sizeof buf, "\"%s\":%llu", f.name,
                    static_cast<unsigned long long>(ld(*f.value)));
      out.append(buf);
    }
    out.push_back('}');
  }
  // Per-context breakdown: ops attributed to each live context (dead
  // contexts already folded into their nearest live ancestor) plus the
  // memory currently homed there.
  out.append("},\"contexts\":{");
  first = true;
  for (auto& ckv : view) {
    uint64_t parent = 0;
    bool live = true;
    auto rit = ctx_registry().find(ckv.first);
    if (rit != ctx_registry().end()) {
      parent = rit->second.parent;
      live = !rit->second.dead;
    }
    uint64_t mem_live = 0, mem_objects = 0;
    for (const auto& sl : mem_slices) {
      if (resolve_live(sl.ctx) != ckv.first) continue;
      mem_live += sl.live_bytes;
      mem_objects += sl.objects;
    }
    if (trim_zero_rows && mem_live == 0 && mem_objects == 0) {
      bool any = false;
      for (auto& okv : ckv.second)
        if (!op_agg_all_zero(okv.second)) any = true;
      if (!any) continue;
    }
    if (!first) out.push_back(',');
    first = false;
    std::snprintf(buf, sizeof buf,
                  "\"%llu\":{\"parent\":%llu,\"live\":%s,"
                  "\"mem.live_bytes\":%llu,\"mem.objects\":%llu,\"ops\":{",
                  static_cast<unsigned long long>(ckv.first),
                  static_cast<unsigned long long>(parent),
                  live ? "true" : "false",
                  static_cast<unsigned long long>(mem_live),
                  static_cast<unsigned long long>(mem_objects));
    out.append(buf);
    bool ofirst = true;
    for (auto& okv : ckv.second) {
      if (trim_zero_rows && op_agg_all_zero(okv.second)) continue;
      if (!ofirst) out.push_back(',');
      ofirst = false;
      out.push_back('"');
      json_append_escaped(&out, okv.first.c_str());
      out.append("\":");
      json_append_op_agg(&out, okv.second);
    }
    out.append("}}");
  }
  // Per-site lock contention.
  out.append("},\"locks\":{");
  first = true;
  for (auto& lkv : lock_view()) {
    if (!first) out.push_back(',');
    first = false;
    HistSummary hs = lkv.second.summarize();
    out.push_back('"');
    json_append_escaped(&out, lkv.first.c_str());
    char lbuf[192];
    std::snprintf(lbuf, sizeof lbuf,
                  "\":{\"acquires\":%llu,\"contended\":%llu,"
                  "\"wait_ns\":%llu,\"p50_ns\":%llu,\"p99_ns\":%llu,"
                  "\"max_ns\":%llu}",
                  static_cast<unsigned long long>(lkv.second.acquires),
                  static_cast<unsigned long long>(lkv.second.contended),
                  static_cast<unsigned long long>(lkv.second.wait_ns),
                  static_cast<unsigned long long>(hs.p50),
                  static_cast<unsigned long long>(hs.p99),
                  static_cast<unsigned long long>(hs.max));
    out.append(lbuf);
  }
  // Decision-audit and hardware-profiler blocks (DESIGN.md §16): the
  // two halves of the grb_prof_report.py join, shipped side by side.
  out.append("},\"decisions\":");
  out.append(decision_json());
  out.append(",\"prof\":");
  out.append(prof_json());
  out.push_back('}');
  return out;
}

std::string stats_prometheus() {
  // Memory slices first: obj_mu strictly before reg_mu.
  auto mem_slices = mem_by_ctx();
  std::lock_guard<std::mutex> lock(reg_mu());
  auto view = ctx_view();
  std::string out;
  char buf[128];
  // series emitter: metric name, then a fully-formed label body (no
  // braces; may be empty), then the value.
  auto series = [&](const char* metric, const std::string& labels,
                    uint64_t v) {
    out.append(metric);
    if (!labels.empty()) {
      out.push_back('{');
      out.append(labels);
      out.push_back('}');
    }
    std::snprintf(buf, sizeof buf, " %llu\n",
                  static_cast<unsigned long long>(v));
    out.append(buf);
  };
  auto op_ctx_labels = [&](const char* op, uint64_t ctx,
                           const char* extra) -> std::string {
    std::string l = "op=\"";
    prom_append_escaped(&l, op);
    std::snprintf(buf, sizeof buf, "\",context=\"%llu\"",
                  static_cast<unsigned long long>(ctx));
    l.append(buf);
    if (extra[0] != '\0') {
      l.push_back(',');
      l.append(extra);
    }
    return l;
  };
  auto ctx_labels = [&](uint64_t ctx) -> std::string {
    std::snprintf(buf, sizeof buf, "context=\"%llu\"",
                  static_cast<unsigned long long>(ctx));
    return std::string(buf);
  };
  out.append("# HELP grb_op_calls_total C API entry-point invocations.\n"
             "# TYPE grb_op_calls_total counter\n");
  for (auto& ckv : view)
    for (auto& okv : ckv.second)
      series("grb_op_calls_total",
             op_ctx_labels(okv.first.c_str(), ckv.first, ""),
             okv.second.calls);
  out.append("# HELP grb_op_errors_total Entry points returning an error.\n"
             "# TYPE grb_op_errors_total counter\n");
  for (auto& ckv : view)
    for (auto& okv : ckv.second)
      series("grb_op_errors_total",
             op_ctx_labels(okv.first.c_str(), ckv.first, ""),
             okv.second.errors);
  // Per-(op, context) latency as a Prometheus summary: quantile series
  // from the log2 histograms (upper-bound estimates), exact
  // sum/count/max.
  out.append("# HELP grb_op_latency_ns Per-op latency by context "
             "(log2-bucket quantile upper bounds).\n"
             "# TYPE grb_op_latency_ns summary\n");
  for (auto& ckv : view) {
    for (auto& okv : ckv.second) {
      const char* op = okv.first.c_str();
      HistSummary hs = okv.second.summarize();
      series("grb_op_latency_ns",
             op_ctx_labels(op, ckv.first, "quantile=\"0.5\""), hs.p50);
      series("grb_op_latency_ns",
             op_ctx_labels(op, ckv.first, "quantile=\"0.9\""), hs.p90);
      series("grb_op_latency_ns",
             op_ctx_labels(op, ckv.first, "quantile=\"0.99\""), hs.p99);
      series("grb_op_latency_ns_sum", op_ctx_labels(op, ckv.first, ""),
             okv.second.ns + okv.second.deferred_ns);
      series("grb_op_latency_ns_count", op_ctx_labels(op, ckv.first, ""),
             hs.count);
    }
  }
  out.append("# HELP grb_op_latency_max_ns Exact worst-case latency.\n"
             "# TYPE grb_op_latency_max_ns gauge\n");
  for (auto& ckv : view)
    for (auto& okv : ckv.second)
      series("grb_op_latency_max_ns",
             op_ctx_labels(okv.first.c_str(), ckv.first, ""),
             okv.second.max_ns);
  // Per-context memory attribution (dead home contexts resolved to
  // their nearest live ancestor at read time).
  out.append("# HELP grb_context_memory_live_bytes Tracked bytes homed in "
             "each context.\n"
             "# TYPE grb_context_memory_live_bytes gauge\n");
  {
    std::map<uint64_t, CtxMemSlice> by_ctx;
    for (const auto& sl : mem_slices) {
      CtxMemSlice& dst = by_ctx[resolve_live(sl.ctx)];
      dst.live_bytes += sl.live_bytes;
      dst.peak_bytes += sl.peak_bytes;
      dst.objects += sl.objects;
    }
    for (auto& kv : by_ctx)
      series("grb_context_memory_live_bytes", ctx_labels(kv.first),
             kv.second.live_bytes);
    out.append("# HELP grb_context_objects Live GrB containers homed in "
               "each context.\n"
               "# TYPE grb_context_objects gauge\n");
    for (auto& kv : by_ctx)
      series("grb_context_objects", ctx_labels(kv.first),
             kv.second.objects);
  }
  out.append("# HELP grb_memory_live_bytes Tracked bytes currently "
             "allocated.\n"
             "# TYPE grb_memory_live_bytes gauge\n");
  series("grb_memory_live_bytes", "", mem_live_total());
  out.append("# HELP grb_memory_peak_bytes High-water mark of tracked "
             "bytes.\n"
             "# TYPE grb_memory_peak_bytes gauge\n");
  series("grb_memory_peak_bytes", "", mem_peak_total());
  out.append("# HELP grb_arena_live_bytes Scratch-arena bytes currently "
             "held.\n"
             "# TYPE grb_arena_live_bytes gauge\n");
  series("grb_arena_live_bytes", "", mem_arena_live());
  out.append("# HELP grb_arena_peak_bytes Scratch-arena high-water mark.\n"
             "# TYPE grb_arena_peak_bytes gauge\n");
  series("grb_arena_peak_bytes", "", mem_arena_peak());
  out.append("# HELP grb_objects Live GrB containers.\n"
             "# TYPE grb_objects gauge\n");
  series("grb_objects", "", mem_object_count());
  // Per-site lock contention.
  {
    auto locks = lock_view();
    auto site_labels = [&](const std::string& site,
                           const char* extra) -> std::string {
      std::string l = "site=\"";
      prom_append_escaped(&l, site.c_str());
      l.push_back('"');
      if (extra[0] != '\0') {
        l.push_back(',');
        l.append(extra);
      }
      return l;
    };
    out.append("# HELP grb_lock_acquisitions_total Scoped-lock "
               "acquisitions by site.\n"
               "# TYPE grb_lock_acquisitions_total counter\n");
    for (auto& kv : locks)
      series("grb_lock_acquisitions_total", site_labels(kv.first, ""),
             kv.second.acquires);
    out.append("# HELP grb_lock_contended_total Acquisitions that "
               "blocked.\n"
               "# TYPE grb_lock_contended_total counter\n");
    for (auto& kv : locks)
      series("grb_lock_contended_total", site_labels(kv.first, ""),
             kv.second.contended);
    out.append("# HELP grb_lock_wait_ns Blocked-acquisition wait time by "
               "site (log2-bucket quantile upper bounds).\n"
               "# TYPE grb_lock_wait_ns summary\n");
    for (auto& kv : locks) {
      HistSummary hs = kv.second.summarize();
      series("grb_lock_wait_ns", site_labels(kv.first, "quantile=\"0.5\""),
             hs.p50);
      series("grb_lock_wait_ns", site_labels(kv.first, "quantile=\"0.9\""),
             hs.p90);
      series("grb_lock_wait_ns", site_labels(kv.first, "quantile=\"0.99\""),
             hs.p99);
      series("grb_lock_wait_ns_sum", site_labels(kv.first, ""),
             kv.second.wait_ns);
      series("grb_lock_wait_ns_count", site_labels(kv.first, ""), hs.count);
    }
    out.append("# HELP grb_lock_wait_max_ns Exact worst blocked wait by "
               "site.\n"
               "# TYPE grb_lock_wait_max_ns gauge\n");
    for (auto& kv : locks)
      series("grb_lock_wait_max_ns", site_labels(kv.first, ""),
             kv.second.max_ns);
  }
  out.append("# HELP grb_watchdog_trips_total Stall-watchdog deadline "
             "violations detected.\n"
             "# TYPE grb_watchdog_trips_total counter\n");
  series("grb_watchdog_trips_total", "", watchdog_trips());
  out.append("# HELP grb_flight_recorder_events_total Flight-recorder "
             "events ever recorded.\n"
             "# TYPE grb_flight_recorder_events_total counter\n");
  series("grb_flight_recorder_events_total", "", fr_event_count());
  out.append("# HELP grb_flight_recorder_overwrites_total Events lost to "
             "ring wrap.\n"
             "# TYPE grb_flight_recorder_overwrites_total counter\n");
  series("grb_flight_recorder_overwrites_total", "", fr_overwrites());
  out.append("# HELP grb_trace_dropped_total Spans dropped by the capped "
             "trace buffer.\n"
             "# TYPE grb_trace_dropped_total counter\n");
  series("grb_trace_dropped_total", "", ld(g_globals.trace_dropped));
  out.append("# HELP grb_format_switches_total Publish-time storage-"
             "format conversions.\n"
             "# TYPE grb_format_switches_total counter\n");
  series("grb_format_switches_total", "", ld(g_globals.format_switches));
  out.append("# HELP grb_format_transpose_cache_total Descriptor-"
             "transpose reads by cache outcome.\n"
             "# TYPE grb_format_transpose_cache_total counter\n");
  series("grb_format_transpose_cache_total", "outcome=\"hit\"",
         ld(g_globals.format_trans_hits));
  series("grb_format_transpose_cache_total", "outcome=\"miss\"",
         ld(g_globals.format_trans_misses));
  out.append("# HELP grb_format_csr_conversions_total Lazy canonical-"
             "view expansions of non-CSR blocks.\n"
             "# TYPE grb_format_csr_conversions_total counter\n");
  series("grb_format_csr_conversions_total", "",
         ld(g_globals.format_csr_conversions));
  decision_prometheus(out);
  prof_prometheus(out);
  return out;
}

bool trace_start(const char* path) {
  std::lock_guard<std::mutex> lock(trace_mu());
  trace_buf().clear();
  trace_path() = path != nullptr ? path : "";
  g_globals.trace_events = 0;
  g_globals.trace_dropped = 0;
  set_flag(kTraceFlag, true);
  return true;
}

bool trace_dump(const char* path) {
  std::lock_guard<std::mutex> lock(trace_mu());
  set_flag(kTraceFlag, false);
  std::string target = path != nullptr ? path : trace_path();
  if (target.empty()) return false;
  std::FILE* f = std::fopen(target.c_str(), "w");
  if (f == nullptr) return false;
  // droppedEvents lets consumers (grb_trace_summarize.py) warn loudly
  // when the capped buffer truncated the recording.
  std::fprintf(f, "{\"displayTimeUnit\":\"ms\",\"droppedEvents\":%llu,"
                  "\"traceEvents\":[",
               static_cast<unsigned long long>(
                   g_globals.trace_dropped.load(std::memory_order_relaxed)));
  bool first = true;
  for (const Event& e : trace_buf()) {
    std::fputs(first ? "\n" : ",\n", f);
    first = false;
    if (e.ph == 'X') {
      std::fprintf(f,
                   "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\","
                   "\"pid\":1,\"tid\":%u,\"ts\":%.3f,\"dur\":%.3f",
                   e.name, e.cat, e.tid, e.ts_ns / 1000.0, e.dur_ns / 1000.0);
      if (e.akey != nullptr || e.ctx != 0) {
        std::fputs(",\"args\":{", f);
        if (e.akey != nullptr) {
          std::fprintf(f, "\"%s\":%llu", e.akey,
                       static_cast<unsigned long long>(e.aval));
        }
        if (e.ctx != 0) {
          std::fprintf(f, "%s\"ctx\":%llu", e.akey != nullptr ? "," : "",
                       static_cast<unsigned long long>(e.ctx));
        }
        std::fputs("}", f);
      }
      std::fputs("}", f);
    } else if (e.ph == 's' || e.ph == 't') {
      // Flow events: same name/cat/id on both ends so the viewer draws
      // the arrow from the enqueue ("s") to the execution ("t"), each
      // binding to its enclosing slice by (tid, ts).
      std::fprintf(f,
                   "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"%c\","
                   "\"id\":%llu,\"pid\":1,\"tid\":%u,\"ts\":%.3f",
                   e.name, e.cat, e.ph,
                   static_cast<unsigned long long>(e.flow), e.tid,
                   e.ts_ns / 1000.0);
      if (e.ctx != 0) {
        std::fprintf(f, ",\"args\":{\"ctx\":%llu}",
                     static_cast<unsigned long long>(e.ctx));
      }
      std::fputs("}", f);
    } else {  // 'C'
      std::fprintf(f,
                   "{\"name\":\"%s\",\"ph\":\"C\",\"pid\":1,\"tid\":%u,"
                   "\"ts\":%.3f,\"args\":{\"%s\":%llu}}",
                   e.name, e.tid, e.ts_ns / 1000.0,
                   e.akey != nullptr ? e.akey : "value",
                   static_cast<unsigned long long>(e.aval));
    }
  }
  std::fputs("\n]}\n", f);
  bool ok = std::fclose(f) == 0;
  trace_buf().clear();
  trace_path().clear();
  return ok;
}

void trace_stop() {
  std::lock_guard<std::mutex> lock(trace_mu());
  set_flag(kTraceFlag, false);
  trace_buf().clear();
  trace_path().clear();
}

void env_activate() {
  const char* stats = std::getenv("GRB_STATS");
  if (stats != nullptr && stats[0] != '\0' &&
      std::strcmp(stats, "0") != 0) {
    stats_set_enabled(true);
    g_env_stats = true;
  }
  const char* trace = std::getenv("GRB_TRACE");
  if (trace != nullptr && trace[0] != '\0') {
    trace_start(trace);
    g_env_trace = true;
  }
  // GRB_METRICS=path.prom: counters on now, Prometheus text exposition
  // written at finalize.
  const char* metrics = std::getenv("GRB_METRICS");
  if (metrics != nullptr && metrics[0] != '\0') {
    env_metrics_path() = metrics;
    stats_set_enabled(true);
  }
  // GRB_WATCHDOG=ms: arm the stall watchdog.
  const char* wd = std::getenv("GRB_WATCHDOG");
  if (wd != nullptr && wd[0] != '\0') {
    watchdog_start(std::strtoull(wd, nullptr, 10));
  }
  // GRB_STATS_JSON=path: counters on now, the full stats_json document
  // (including the decisions / prof blocks) written at finalize — the
  // input side of tools/grb_prof_report.py.
  const char* sjson = std::getenv("GRB_STATS_JSON");
  if (sjson != nullptr && sjson[0] != '\0') {
    env_stats_json_path() = sjson;
    stats_set_enabled(true);
  }
  // GRB_DECISIONS=1 / GRB_PROF=1: decision audit and hardware profiler.
  decision_env_activate();
  prof_env_activate();
  // GRB_FLIGHT_RECORDER / GRB_FLIGHT_DUMP; default-on (4096 events).
  fr_env_activate();
}

void env_finalize() {
  watchdog_stop();
  if (g_env_trace) {
    if (!trace_dump(nullptr)) {
      std::fprintf(stderr, "grb-obs: failed to write GRB_TRACE file\n");
    }
    g_env_trace = false;
  }
  if (!env_metrics_path().empty()) {
    std::FILE* f = std::fopen(env_metrics_path().c_str(), "w");
    if (f != nullptr) {
      std::fputs(stats_prometheus().c_str(), f);
      std::fclose(f);
    } else {
      std::fprintf(stderr, "grb-obs: failed to write GRB_METRICS file\n");
    }
    env_metrics_path().clear();
    if (!g_env_stats && env_stats_json_path().empty()) {
      stats_set_enabled(false);
      stats_reset();
    }
  }
  if (!env_stats_json_path().empty()) {
    std::FILE* f = std::fopen(env_stats_json_path().c_str(), "w");
    if (f != nullptr) {
      std::fputs(stats_json().c_str(), f);
      std::fputc('\n', f);
      std::fclose(f);
    } else {
      std::fprintf(stderr, "grb-obs: failed to write GRB_STATS_JSON file\n");
    }
    env_stats_json_path().clear();
    if (!g_env_stats) {
      stats_set_enabled(false);
      stats_reset();
    }
  }
  if (g_env_stats) {
    std::fprintf(stderr, "GRB_STATS %s\n", stats_json().c_str());
    stats_set_enabled(false);
    stats_reset();
    g_env_stats = false;
  }
}

}  // namespace obs
}  // namespace grb
