#include "obs/telemetry.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace grb {
namespace obs {

namespace detail {
std::atomic<uint32_t> g_flags{0};
}  // namespace detail

namespace {

// --- time -----------------------------------------------------------------

std::chrono::steady_clock::time_point epoch() {
  static const auto t0 = std::chrono::steady_clock::now();
  return t0;
}

// --- counters -------------------------------------------------------------

struct OpCounters {
  std::atomic<uint64_t> calls{0};
  std::atomic<uint64_t> ns{0};
  std::atomic<uint64_t> errors{0};
  std::atomic<uint64_t> scalars{0};
  std::atomic<uint64_t> flops{0};
  std::atomic<uint64_t> serial{0};
  std::atomic<uint64_t> parallel{0};
  std::atomic<uint64_t> deferred{0};
  std::atomic<uint64_t> deferred_ns{0};

  void reset() {
    calls = ns = errors = scalars = flops = 0;
    serial = parallel = deferred = deferred_ns = 0;
  }
};

struct PoolCounters {
  std::atomic<uint64_t> submitted{0};   // chunks handed to parallel_for
  std::atomic<uint64_t> chunks{0};      // chunks executed (any lane)
  std::atomic<uint64_t> steals{0};      // chunks executed by worker lanes
  std::atomic<uint64_t> parks{0};       // cv-wait episodes
  std::atomic<uint64_t> busy{0};        // currently-running lanes (gauge)
  std::atomic<uint64_t> busy_hw{0};     // high-water of busy

  void reset() {
    submitted = chunks = steals = parks = busy_hw = 0;
    // busy is a live gauge; leave it to its owners.
  }
};

struct Globals {
  std::atomic<uint64_t> queue_enqueued{0};
  std::atomic<uint64_t> queue_hw{0};
  std::atomic<uint64_t> queue_drained{0};
  std::atomic<uint64_t> pending_hw{0};
  std::atomic<uint64_t> pool_busy{0};  // sum over pools, for the C event
  std::atomic<uint64_t> trace_events{0};
  std::atomic<uint64_t> trace_dropped{0};
  // SpGEMM engine decisions (rows routed to each accumulator, symbolic
  // flop totals) and scratch-arena reuse outcomes.
  std::atomic<uint64_t> spgemm_rows_hash{0};
  std::atomic<uint64_t> spgemm_rows_dense{0};
  std::atomic<uint64_t> spgemm_flops_est{0};
  std::atomic<uint64_t> arena_hits{0};
  std::atomic<uint64_t> arena_misses{0};
};

Globals g_globals;

void bump_high_water(std::atomic<uint64_t>& hw, uint64_t v) {
  uint64_t cur = hw.load(std::memory_order_relaxed);
  while (cur < v &&
         !hw.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

// Registries.  std::map keeps stats_json deterministic; lookups happen
// only on enabled paths, so a lock per hook is acceptable there.
std::mutex& reg_mu() {
  static std::mutex mu;
  return mu;
}
std::map<std::string, std::unique_ptr<OpCounters>>& op_registry() {
  static auto* reg = new std::map<std::string, std::unique_ptr<OpCounters>>();
  return *reg;
}
std::map<int, std::unique_ptr<PoolCounters>>& pool_registry() {
  static auto* reg = new std::map<int, std::unique_ptr<PoolCounters>>();
  return *reg;
}

OpCounters& op_counters(const char* name) {
  std::lock_guard<std::mutex> lock(reg_mu());
  auto& slot = op_registry()[name];
  if (slot == nullptr) slot = std::make_unique<OpCounters>();
  return *slot;
}

PoolCounters& pool_counters(int pool_id) {
  std::lock_guard<std::mutex> lock(reg_mu());
  auto& slot = pool_registry()[pool_id];
  if (slot == nullptr) slot = std::make_unique<PoolCounters>();
  return *slot;
}

// --- trace ------------------------------------------------------------------

// One recorded event.  `name`/`cat`/`akey` point at static-storage
// strings (function-name literals, hook-site literals), never owned.
struct Event {
  const char* name;
  const char* cat;
  char ph;        // 'X' complete span, 'C' counter
  uint32_t tid;
  uint64_t ts_ns;
  uint64_t dur_ns;
  const char* akey;  // optional single arg (nullptr = none)
  uint64_t aval;
};

constexpr size_t kMaxTraceEvents = 1u << 20;

std::mutex& trace_mu() {
  static std::mutex mu;
  return mu;
}
std::vector<Event>& trace_buf() {
  static auto* buf = new std::vector<Event>();
  return *buf;
}
std::string& trace_path() {
  static auto* path = new std::string();
  return *path;
}

uint32_t this_tid() {
  static thread_local const uint32_t tid = static_cast<uint32_t>(
      std::hash<std::thread::id>{}(std::this_thread::get_id()) & 0x7fffffu);
  return tid;
}

void record_event(const char* name, const char* cat, char ph, uint64_t ts_ns,
                  uint64_t dur_ns, const char* akey, uint64_t aval) {
  std::lock_guard<std::mutex> lock(trace_mu());
  if (!trace_enabled()) return;  // raced with a dump/stop; drop silently
  auto& buf = trace_buf();
  if (buf.size() >= kMaxTraceEvents) {
    g_globals.trace_dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  buf.push_back(Event{name, cat, ph, this_tid(), ts_ns, dur_ns, akey, aval});
  g_globals.trace_events.fetch_add(1, std::memory_order_relaxed);
}

void set_flag(uint32_t flag, bool on) {
  if (on) {
    detail::g_flags.fetch_or(flag, std::memory_order_relaxed);
  } else {
    detail::g_flags.fetch_and(~flag, std::memory_order_relaxed);
  }
}

// --- env activation state ---------------------------------------------------

bool g_env_stats = false;
bool g_env_trace = false;

void json_append_escaped(std::string* out, const char* s) {
  for (; *s != '\0'; ++s) {
    char c = *s;
    if (c == '"' || c == '\\') {
      out->push_back('\\');
      out->push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", c);
      out->append(buf);
    } else {
      out->push_back(c);
    }
  }
}

}  // namespace

uint64_t now_ns() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch())
          .count());
}

// --- current op -------------------------------------------------------------

namespace {
thread_local const char* t_current_op = nullptr;
}

const char* current_op() {
  return t_current_op != nullptr ? t_current_op : "(unknown)";
}

const char* set_current_op(const char* name) {
  const char* prev = t_current_op;
  t_current_op = name;
  return prev;
}

// --- hooks ------------------------------------------------------------------

void api_return(const char* op, uint64_t t0, bool failed) {
  uint32_t f = flags();
  if (f == 0) return;
  uint64_t t1 = now_ns();
  if ((f & kStatsFlag) != 0) {
    OpCounters& c = op_counters(op);
    c.calls.fetch_add(1, std::memory_order_relaxed);
    c.ns.fetch_add(t1 - t0, std::memory_order_relaxed);
    if (failed) c.errors.fetch_add(1, std::memory_order_relaxed);
  }
  if ((f & kTraceFlag) != 0) {
    record_event(op, "api", 'X', t0, t1 - t0,
                 failed ? "failed" : nullptr, 1);
  }
}

void deferred_return(const char* op, uint64_t t0, uint64_t enq_ns,
                     bool failed) {
  uint32_t f = flags();
  if (f == 0) return;
  uint64_t t1 = now_ns();
  if ((f & kStatsFlag) != 0) {
    OpCounters& c = op_counters(op);
    c.deferred.fetch_add(1, std::memory_order_relaxed);
    c.deferred_ns.fetch_add(t1 - t0, std::memory_order_relaxed);
    if (failed) c.errors.fetch_add(1, std::memory_order_relaxed);
  }
  if ((f & kTraceFlag) != 0) {
    uint64_t gap_us =
        (enq_ns != 0 && t0 > enq_ns) ? (t0 - enq_ns) / 1000u : 0;
    record_event(op, "deferred", 'X', t0, t1 - t0, "gap_us", gap_us);
  }
}

void count_path(bool parallel) {
  if (!stats_enabled()) return;
  OpCounters& c = op_counters(current_op());
  (parallel ? c.parallel : c.serial).fetch_add(1, std::memory_order_relaxed);
}

void add_scalars(uint64_t n) {
  if (!stats_enabled()) return;
  op_counters(current_op()).scalars.fetch_add(n, std::memory_order_relaxed);
}

void add_flops(uint64_t n) {
  if (!stats_enabled()) return;
  op_counters(current_op()).flops.fetch_add(n, std::memory_order_relaxed);
}

void spgemm_rows(uint64_t rows_hash, uint64_t rows_dense) {
  if (!stats_enabled()) return;
  if (rows_hash != 0)
    g_globals.spgemm_rows_hash.fetch_add(rows_hash, std::memory_order_relaxed);
  if (rows_dense != 0)
    g_globals.spgemm_rows_dense.fetch_add(rows_dense,
                                          std::memory_order_relaxed);
}

void spgemm_flops_estimated(uint64_t n) {
  if (!stats_enabled()) return;
  g_globals.spgemm_flops_est.fetch_add(n, std::memory_order_relaxed);
}

void arena_request(bool hit) {
  if (!stats_enabled()) return;
  (hit ? g_globals.arena_hits : g_globals.arena_misses)
      .fetch_add(1, std::memory_order_relaxed);
}

void queue_depth_sample(size_t depth) {
  uint32_t f = flags();
  if (f == 0) return;
  g_globals.queue_enqueued.fetch_add(1, std::memory_order_relaxed);
  bump_high_water(g_globals.queue_hw, depth);
  if ((f & kTraceFlag) != 0) {
    record_event("queue.depth", "gauge", 'C', now_ns(), 0, "value", depth);
  }
}

void queue_drained(size_t batch) {
  if (!enabled()) return;
  g_globals.queue_drained.fetch_add(batch, std::memory_order_relaxed);
}

void pending_tuples_sample(size_t count) {
  uint32_t f = flags();
  if (f == 0) return;
  bump_high_water(g_globals.pending_hw, count);
  if ((f & kTraceFlag) != 0) {
    record_event("pending.tuples", "gauge", 'C', now_ns(), 0, "value", count);
  }
}

int next_pool_id() {
  static std::atomic<int> next{0};
  return next.fetch_add(1, std::memory_order_relaxed);
}

void pool_submit(int pool_id, uint64_t nchunks) {
  if (!enabled()) return;
  pool_counters(pool_id).submitted.fetch_add(nchunks,
                                             std::memory_order_relaxed);
}

void pool_chunk(int pool_id, bool worker_lane) {
  if (!enabled()) return;
  PoolCounters& c = pool_counters(pool_id);
  c.chunks.fetch_add(1, std::memory_order_relaxed);
  if (worker_lane) c.steals.fetch_add(1, std::memory_order_relaxed);
}

void pool_park(int pool_id) {
  if (!enabled()) return;
  pool_counters(pool_id).parks.fetch_add(1, std::memory_order_relaxed);
}

void pool_busy_enter(int pool_id) {
  uint32_t f = flags();
  if (f == 0) return;
  PoolCounters& c = pool_counters(pool_id);
  uint64_t busy = c.busy.fetch_add(1, std::memory_order_relaxed) + 1;
  bump_high_water(c.busy_hw, busy);
  uint64_t total =
      g_globals.pool_busy.fetch_add(1, std::memory_order_relaxed) + 1;
  if ((f & kTraceFlag) != 0) {
    record_event("pool.busy", "gauge", 'C', now_ns(), 0, "value", total);
  }
}

void pool_busy_exit(int pool_id) {
  uint32_t f = flags();
  if (f == 0) return;
  pool_counters(pool_id).busy.fetch_sub(1, std::memory_order_relaxed);
  uint64_t total =
      g_globals.pool_busy.fetch_sub(1, std::memory_order_relaxed) - 1;
  if ((f & kTraceFlag) != 0) {
    record_event("pool.busy", "gauge", 'C', now_ns(), 0, "value", total);
  }
}

// --- control / introspection ------------------------------------------------

void stats_set_enabled(bool on) { set_flag(kStatsFlag, on); }

void stats_reset() {
  std::lock_guard<std::mutex> lock(reg_mu());
  for (auto& kv : op_registry()) kv.second->reset();
  for (auto& kv : pool_registry()) kv.second->reset();
  g_globals.queue_enqueued = 0;
  g_globals.queue_hw = 0;
  g_globals.queue_drained = 0;
  g_globals.pending_hw = 0;
  g_globals.spgemm_rows_hash = 0;
  g_globals.spgemm_rows_dense = 0;
  g_globals.spgemm_flops_est = 0;
  g_globals.arena_hits = 0;
  g_globals.arena_misses = 0;
  // trace_events / trace_dropped reset with the trace buffer, and the
  // pool_busy live gauge belongs to in-flight parallel_for calls.
}

namespace {

struct FieldRef {
  const char* name;
  const std::atomic<uint64_t>* value;
};

// The per-op fields, in stats_json order.
std::vector<FieldRef> op_fields(const OpCounters& c) {
  return {{"calls", &c.calls},       {"ns", &c.ns},
          {"errors", &c.errors},     {"scalars", &c.scalars},
          {"flops", &c.flops},       {"serial", &c.serial},
          {"parallel", &c.parallel}, {"deferred", &c.deferred},
          {"deferred_ns", &c.deferred_ns}};
}

std::vector<FieldRef> pool_fields(const PoolCounters& c) {
  return {{"submitted", &c.submitted},
          {"chunks", &c.chunks},
          {"steals", &c.steals},
          {"parks", &c.parks},
          {"busy_high_water", &c.busy_hw}};
}

uint64_t ld(const std::atomic<uint64_t>& v) {
  return v.load(std::memory_order_relaxed);
}

}  // namespace

bool stats_get(const char* name, uint64_t* value) {
  *value = 0;
  if (name == nullptr) return false;
  // Globals first.
  struct GlobalRef {
    const char* name;
    const std::atomic<uint64_t>* value;
  };
  const GlobalRef globals[] = {
      {"queue.enqueued", &g_globals.queue_enqueued},
      {"queue.high_water", &g_globals.queue_hw},
      {"queue.drained", &g_globals.queue_drained},
      {"pending.high_water", &g_globals.pending_hw},
      {"trace.events", &g_globals.trace_events},
      {"trace.dropped", &g_globals.trace_dropped},
      {"spgemm.rows_hash", &g_globals.spgemm_rows_hash},
      {"spgemm.rows_dense", &g_globals.spgemm_rows_dense},
      {"spgemm.flops_estimated", &g_globals.spgemm_flops_est},
      {"arena.reuse_hits", &g_globals.arena_hits},
      {"arena.reuse_misses", &g_globals.arena_misses},
  };
  for (const auto& g : globals) {
    if (std::strcmp(name, g.name) == 0) {
      *value = ld(*g.value);
      return true;
    }
  }
  std::lock_guard<std::mutex> lock(reg_mu());
  // Pool aggregates: "pool.<field>" sums over every pool.
  if (std::strncmp(name, "pool.", 5) == 0) {
    const char* field = name + 5;
    bool known = false;
    uint64_t sum = 0;
    for (auto& kv : pool_registry()) {
      for (const auto& f : pool_fields(*kv.second)) {
        if (std::strcmp(field, f.name) == 0) {
          sum += ld(*f.value);
          known = true;
        }
      }
    }
    if (!known) {
      // Field-name check against a throwaway instance, so "pool.parks"
      // resolves (to 0) even before any pool exists.
      static const PoolCounters probe;
      for (const auto& f : pool_fields(probe)) {
        if (std::strcmp(field, f.name) == 0) known = true;
      }
    }
    *value = sum;
    return known;
  }
  // Per-op: "<op>.<field>".
  const char* dot = std::strrchr(name, '.');
  if (dot == nullptr || dot == name) return false;
  std::string op(name, static_cast<size_t>(dot - name));
  auto it = op_registry().find(op);
  if (it == op_registry().end()) return false;
  for (const auto& f : op_fields(*it->second)) {
    if (std::strcmp(dot + 1, f.name) == 0) {
      *value = ld(*f.value);
      return true;
    }
  }
  return false;
}

std::string stats_json() {
  std::lock_guard<std::mutex> lock(reg_mu());
  std::string out = "{\"ops\":{";
  bool first = true;
  char buf[64];
  for (auto& kv : op_registry()) {
    if (!first) out.push_back(',');
    first = false;
    out.push_back('"');
    json_append_escaped(&out, kv.first.c_str());
    out.append("\":{");
    bool ffirst = true;
    for (const auto& f : op_fields(*kv.second)) {
      if (!ffirst) out.push_back(',');
      ffirst = false;
      std::snprintf(buf, sizeof buf, "\"%s\":%llu", f.name,
                    static_cast<unsigned long long>(ld(*f.value)));
      out.append(buf);
    }
    out.push_back('}');
  }
  out.append("},\"global\":{");
  std::snprintf(buf, sizeof buf, "\"queue.enqueued\":%llu,",
                static_cast<unsigned long long>(ld(g_globals.queue_enqueued)));
  out.append(buf);
  std::snprintf(buf, sizeof buf, "\"queue.high_water\":%llu,",
                static_cast<unsigned long long>(ld(g_globals.queue_hw)));
  out.append(buf);
  std::snprintf(buf, sizeof buf, "\"queue.drained\":%llu,",
                static_cast<unsigned long long>(ld(g_globals.queue_drained)));
  out.append(buf);
  std::snprintf(buf, sizeof buf, "\"pending.high_water\":%llu,",
                static_cast<unsigned long long>(ld(g_globals.pending_hw)));
  out.append(buf);
  std::snprintf(buf, sizeof buf, "\"trace.events\":%llu,",
                static_cast<unsigned long long>(ld(g_globals.trace_events)));
  out.append(buf);
  std::snprintf(buf, sizeof buf, "\"trace.dropped\":%llu,",
                static_cast<unsigned long long>(ld(g_globals.trace_dropped)));
  out.append(buf);
  std::snprintf(buf, sizeof buf, "\"spgemm.rows_hash\":%llu,",
                static_cast<unsigned long long>(
                    ld(g_globals.spgemm_rows_hash)));
  out.append(buf);
  std::snprintf(buf, sizeof buf, "\"spgemm.rows_dense\":%llu,",
                static_cast<unsigned long long>(
                    ld(g_globals.spgemm_rows_dense)));
  out.append(buf);
  std::snprintf(buf, sizeof buf, "\"spgemm.flops_estimated\":%llu,",
                static_cast<unsigned long long>(
                    ld(g_globals.spgemm_flops_est)));
  out.append(buf);
  std::snprintf(buf, sizeof buf, "\"arena.reuse_hits\":%llu,",
                static_cast<unsigned long long>(ld(g_globals.arena_hits)));
  out.append(buf);
  std::snprintf(buf, sizeof buf, "\"arena.reuse_misses\":%llu",
                static_cast<unsigned long long>(ld(g_globals.arena_misses)));
  out.append(buf);
  out.append("},\"pools\":{");
  first = true;
  for (auto& kv : pool_registry()) {
    if (!first) out.push_back(',');
    first = false;
    std::snprintf(buf, sizeof buf, "\"%d\":{", kv.first);
    out.append(buf);
    bool ffirst = true;
    for (const auto& f : pool_fields(*kv.second)) {
      if (!ffirst) out.push_back(',');
      ffirst = false;
      std::snprintf(buf, sizeof buf, "\"%s\":%llu", f.name,
                    static_cast<unsigned long long>(ld(*f.value)));
      out.append(buf);
    }
    out.push_back('}');
  }
  out.append("}}");
  return out;
}

bool trace_start(const char* path) {
  std::lock_guard<std::mutex> lock(trace_mu());
  trace_buf().clear();
  trace_path() = path != nullptr ? path : "";
  g_globals.trace_events = 0;
  g_globals.trace_dropped = 0;
  set_flag(kTraceFlag, true);
  return true;
}

bool trace_dump(const char* path) {
  std::lock_guard<std::mutex> lock(trace_mu());
  set_flag(kTraceFlag, false);
  std::string target = path != nullptr ? path : trace_path();
  if (target.empty()) return false;
  std::FILE* f = std::fopen(target.c_str(), "w");
  if (f == nullptr) return false;
  std::fputs("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[", f);
  bool first = true;
  for (const Event& e : trace_buf()) {
    std::fputs(first ? "\n" : ",\n", f);
    first = false;
    if (e.ph == 'X') {
      std::fprintf(f,
                   "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\","
                   "\"pid\":1,\"tid\":%u,\"ts\":%.3f,\"dur\":%.3f",
                   e.name, e.cat, e.tid, e.ts_ns / 1000.0, e.dur_ns / 1000.0);
      if (e.akey != nullptr) {
        std::fprintf(f, ",\"args\":{\"%s\":%llu}", e.akey,
                     static_cast<unsigned long long>(e.aval));
      }
      std::fputs("}", f);
    } else {  // 'C'
      std::fprintf(f,
                   "{\"name\":\"%s\",\"ph\":\"C\",\"pid\":1,\"tid\":%u,"
                   "\"ts\":%.3f,\"args\":{\"%s\":%llu}}",
                   e.name, e.tid, e.ts_ns / 1000.0,
                   e.akey != nullptr ? e.akey : "value",
                   static_cast<unsigned long long>(e.aval));
    }
  }
  std::fputs("\n]}\n", f);
  bool ok = std::fclose(f) == 0;
  trace_buf().clear();
  trace_path().clear();
  return ok;
}

void trace_stop() {
  std::lock_guard<std::mutex> lock(trace_mu());
  set_flag(kTraceFlag, false);
  trace_buf().clear();
  trace_path().clear();
}

void env_activate() {
  const char* stats = std::getenv("GRB_STATS");
  if (stats != nullptr && stats[0] != '\0' &&
      std::strcmp(stats, "0") != 0) {
    stats_set_enabled(true);
    g_env_stats = true;
  }
  const char* trace = std::getenv("GRB_TRACE");
  if (trace != nullptr && trace[0] != '\0') {
    trace_start(trace);
    g_env_trace = true;
  }
}

void env_finalize() {
  if (g_env_trace) {
    if (!trace_dump(nullptr)) {
      std::fprintf(stderr, "grb-obs: failed to write GRB_TRACE file\n");
    }
    g_env_trace = false;
  }
  if (g_env_stats) {
    std::fprintf(stderr, "GRB_STATS %s\n", stats_json().c_str());
    stats_set_enabled(false);
    stats_reset();
    g_env_stats = false;
  }
}

}  // namespace obs
}  // namespace grb
