#include "obs/memory.hpp"

#include <algorithm>
#include <cstdio>
#include <mutex>
#include <unordered_set>

namespace grb {
namespace obs {

namespace {

std::atomic<uint64_t> g_live{0};
std::atomic<uint64_t> g_peak{0};
MemAccount g_arena;

void bump_peak(std::atomic<uint64_t>& peak, uint64_t v) {
  uint64_t cur = peak.load(std::memory_order_relaxed);
  while (cur < v &&
         !peak.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

// Registry of live reportable objects.  Leaked (like every obs registry)
// so objects destroyed during static teardown can still unregister.
std::mutex& obj_mu() {
  static std::mutex mu;
  return mu;
}
std::unordered_set<const MemReportable*>& obj_registry() {
  static auto* reg = new std::unordered_set<const MemReportable*>();
  return *reg;
}

}  // namespace

uint64_t mem_live_total() { return g_live.load(std::memory_order_relaxed); }
uint64_t mem_peak_total() { return g_peak.load(std::memory_order_relaxed); }
uint64_t mem_arena_live() { return account_live(g_arena); }
uint64_t mem_arena_peak() { return account_peak(g_arena); }

void mem_charge(MemAccount* acct, size_t bytes) {
  if (bytes == 0) return;
  if (acct != nullptr) {
    uint64_t v =
        acct->live.fetch_add(bytes, std::memory_order_relaxed) + bytes;
    bump_peak(acct->peak, v);
  }
  uint64_t total = g_live.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  bump_peak(g_peak, total);
}

void mem_credit(MemAccount* acct, size_t bytes) {
  if (bytes == 0) return;
  if (acct != nullptr) acct->live.fetch_sub(bytes, std::memory_order_relaxed);
  g_live.fetch_sub(bytes, std::memory_order_relaxed);
}

void arena_charge(size_t bytes) { mem_charge(&g_arena, bytes); }
void arena_credit(size_t bytes) { mem_credit(&g_arena, bytes); }

void mem_register(const MemReportable* obj) {
  std::lock_guard<std::mutex> lock(obj_mu());
  obj_registry().insert(obj);
}

void mem_unregister(const MemReportable* obj) {
  std::lock_guard<std::mutex> lock(obj_mu());
  obj_registry().erase(obj);
}

uint64_t mem_object_count() {
  std::lock_guard<std::mutex> lock(obj_mu());
  return obj_registry().size();
}

std::vector<CtxMemSlice> mem_by_ctx() {
  std::vector<CtxMemSlice> slices;
  std::lock_guard<std::mutex> lock(obj_mu());
  for (const MemReportable* obj : obj_registry()) {
    MemReportable::Snapshot s;
    obj->mem_snapshot(&s);
    CtxMemSlice* slot = nullptr;
    for (auto& sl : slices) {
      if (sl.ctx == s.ctx) {
        slot = &sl;
        break;
      }
    }
    if (slot == nullptr) {
      slices.push_back(CtxMemSlice{s.ctx, 0, 0, 0});
      slot = &slices.back();
    }
    slot->live_bytes += s.live_bytes;
    slot->peak_bytes += s.peak_bytes;
    slot->objects += 1;
  }
  return slices;
}

std::string memory_report() {
  std::vector<MemReportable::Snapshot> snaps;
  {
    std::lock_guard<std::mutex> lock(obj_mu());
    snaps.reserve(obj_registry().size());
    for (const MemReportable* obj : obj_registry()) {
      MemReportable::Snapshot s;
      obj->mem_snapshot(&s);
      snaps.push_back(s);
    }
  }
  std::sort(snaps.begin(), snaps.end(),
            [](const MemReportable::Snapshot& a,
               const MemReportable::Snapshot& b) {
              return a.live_bytes > b.live_bytes;
            });
  char line[192];
  std::string out = "GraphBLAS memory report\n";
  std::snprintf(line, sizeof line, "  total: live=%llu peak=%llu\n",
                static_cast<unsigned long long>(mem_live_total()),
                static_cast<unsigned long long>(mem_peak_total()));
  out.append(line);
  std::snprintf(line, sizeof line, "  arena: live=%llu peak=%llu\n",
                static_cast<unsigned long long>(mem_arena_live()),
                static_cast<unsigned long long>(mem_arena_peak()));
  out.append(line);
  std::snprintf(line, sizeof line, "  objects: %llu\n",
                static_cast<unsigned long long>(snaps.size()));
  out.append(line);
  for (const auto& s : snaps) {
    std::snprintf(line, sizeof line,
                  "    %-6s %-6s %llux%llu nvals=%llu live=%llu peak=%llu "
                  "views=%llu ctx=%llu\n",
                  s.kind, s.format[0] != '\0' ? s.format : "-",
                  static_cast<unsigned long long>(s.rows),
                  static_cast<unsigned long long>(s.cols),
                  static_cast<unsigned long long>(s.nvals),
                  static_cast<unsigned long long>(s.live_bytes),
                  static_cast<unsigned long long>(s.peak_bytes),
                  static_cast<unsigned long long>(s.view_bytes),
                  static_cast<unsigned long long>(s.ctx));
    out.append(line);
  }
  return out;
}

}  // namespace obs
}  // namespace grb
