// Memory attribution: the second observability layer (DESIGN.md §11).
//
// Every container data block (CSR arrays, coordinate lists, value
// arrays, pending-tuple stores) and every scratch-arena buffer routes
// its allocations through a counting allocator hook, so three questions
// become answerable at run time:
//   * "which matrix ate 3 GiB" — per-object live/peak gauges
//     (GxB_Object_memory, GxB_Memory_report);
//   * "how much is the library holding right now" — library-wide
//     current/peak totals;
//   * "is the scratch arena the problem" — pool-arena live/peak.
//
// Accounting is ALWAYS ON: a charge is two relaxed atomic RMWs plus a
// relaxed peak CAS, paid once per container growth event (not per
// element), which is noise against the allocation itself.  Accounts are
// shared_ptr-owned by the allocator instances, so vectors moved out of a
// dying data block keep a live account to credit on destruction.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace grb {
namespace obs {

// One attribution bucket.  `live` is bytes currently allocated against
// the account; `peak` is its high-water mark.  Both relaxed: gauges
// tolerate momentary skew, sums are exact once quiescent.
struct MemAccount {
  std::atomic<uint64_t> live{0};
  std::atomic<uint64_t> peak{0};
};

// Library-wide totals (every tracked allocation, incl. the arena).
uint64_t mem_live_total();
uint64_t mem_peak_total();

// Scratch-arena (exec/thread_pool.hpp ScratchArena) slice of the totals.
uint64_t mem_arena_live();
uint64_t mem_arena_peak();

// Charge/credit `bytes` against `acct` (may be null: totals only) and
// the library totals.  The arena variants also feed the arena account.
void mem_charge(MemAccount* acct, size_t bytes);
void mem_credit(MemAccount* acct, size_t bytes);
void arena_charge(size_t bytes);
void arena_credit(size_t bytes);

inline uint64_t account_live(const MemAccount& a) {
  return a.live.load(std::memory_order_relaxed);
}
inline uint64_t account_peak(const MemAccount& a) {
  return a.peak.load(std::memory_order_relaxed);
}

// --- Counting allocator ----------------------------------------------------
// A std::allocator wrapper charging an account.  Stateful: propagates on
// copy/move/swap so bytes follow the container that owns them, and the
// shared_ptr keeps the account alive for as long as any container still
// holds memory charged to it.
template <class T>
class TrackedAlloc {
 public:
  using value_type = T;
  using propagate_on_container_copy_assignment = std::true_type;
  using propagate_on_container_move_assignment = std::true_type;
  using propagate_on_container_swap = std::true_type;
  using is_always_equal = std::false_type;

  TrackedAlloc() noexcept = default;
  explicit TrackedAlloc(std::shared_ptr<MemAccount> acct) noexcept
      : acct_(std::move(acct)) {}
  template <class U>
  TrackedAlloc(const TrackedAlloc<U>& other) noexcept
      : acct_(other.account()) {}

  T* allocate(size_t n) {
    T* p = std::allocator<T>{}.allocate(n);
    mem_charge(acct_.get(), n * sizeof(T));
    return p;
  }
  void deallocate(T* p, size_t n) noexcept {
    mem_credit(acct_.get(), n * sizeof(T));
    std::allocator<T>{}.deallocate(p, n);
  }

  const std::shared_ptr<MemAccount>& account() const noexcept {
    return acct_;
  }

  friend bool operator==(const TrackedAlloc& a, const TrackedAlloc& b) {
    return a.acct_ == b.acct_;
  }
  friend bool operator!=(const TrackedAlloc& a, const TrackedAlloc& b) {
    return !(a == b);
  }

 private:
  std::shared_ptr<MemAccount> acct_;
};

template <class T>
using TrackedVec = std::vector<T, TrackedAlloc<T>>;

// --- Per-object registry (GxB_Memory_report) -------------------------------
// Containers register themselves at the end of construction and
// unregister in their own destructor (while the derived vtable is still
// live), so the report can walk every live GrB object.
class MemReportable {
 public:
  struct Snapshot {
    const char* kind = "";    // "matrix" / "vector" / "scalar"
    const char* format = "";  // storage format ("csr", "hyper", ...)
    uint64_t rows = 0, cols = 0;
    uint64_t nvals = 0;
    uint64_t live_bytes = 0;
    uint64_t peak_bytes = 0;
    // Bytes held by cached canonical/transpose views of the current
    // block (included in live_bytes).
    uint64_t view_bytes = 0;
    uint64_t ctx = 0;         // home-context obs id (0 = unattributed)
  };
  virtual void mem_snapshot(Snapshot* out) const = 0;

 protected:
  ~MemReportable() = default;
};

void mem_register(const MemReportable* obj);
void mem_unregister(const MemReportable* obj);  // idempotent
uint64_t mem_object_count();

// Per-context memory attribution, computed at read time by walking the
// live-object registry and grouping snapshots by home-context id.  The
// ids are RAW (a freed context keeps attributing its surviving objects
// under its old id); telemetry.cpp resolves dead ids to the nearest
// live ancestor, so rollup-on-free holds exactly by construction —
// charge/credit balance never depends on when a context died.
// `peak_bytes` is the sum of per-object peaks, not a true group
// high-water mark.
struct CtxMemSlice {
  uint64_t ctx = 0;
  uint64_t live_bytes = 0;
  uint64_t peak_bytes = 0;
  uint64_t objects = 0;
};
std::vector<CtxMemSlice> mem_by_ctx();

// Annotated text report: totals, arena, then every live object sorted
// by live bytes descending.  Backs GxB_Memory_report.
std::string memory_report();

}  // namespace obs
}  // namespace grb
