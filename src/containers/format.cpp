// Storage-format policy, conversions, and cached canonical views
// (DESIGN.md §15).
//
// Lock discipline: the per-block view caches follow check-under-lock /
// compute-outside-lock / install-under-lock.  Two racing readers may
// both build the same view; the loser's copy is dropped and the first
// install wins, so no allocation ever happens under view_mu_ (enforced
// by tools/grb_analyze.py's no-alloc-under-lock zone).
#include "containers/format.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>

#include "obs/decision.hpp"
#include "obs/telemetry.hpp"

namespace grb {

// Raw counting-sort transpose (ops/transpose.cpp); format_transpose_view
// wraps it with the per-snapshot cache.
std::shared_ptr<const MatrixData> transpose_data(const MatrixData& a);

// SpGEMM scratch budget (ops/spgemm.cpp); the format cost model reuses
// it as the "affordable dense footprint" bound so one knob governs both
// dense-leaning decisions.
size_t spgemm_dense_budget();

namespace {

// Blocks doing less work than this stay in their current format: the
// conversion would cost more than any traversal win, and flapping on
// tiny intermediates would churn the telemetry.
constexpr uint64_t kFormatMinWork = 1024;
// Hypersparse pays off when the ptr scan dominates: many rows, few
// occupied.
constexpr uint64_t kHyperMinRows = 4096;
constexpr uint64_t kHyperRowRatio = 8;  // nonempty <= nrows/8

// -2 = not yet resolved (lazy, like GRB_SPGEMM); otherwise a
// FormatPolicy value.
std::atomic<int> g_policy{-2};
// 0 = off, 1 = on, -1 = unresolved (GRB_TRANSPOSE_CACHE).
std::atomic<int> g_trans_cache{-1};

thread_local uint64_t t_flops_hint = 0;

FormatPolicy resolve_policy_from_env() {
  const char* env = std::getenv("GRB_FORMAT");
  if (env != nullptr) {
    if (std::strcmp(env, "csr") == 0) return FormatPolicy::kCsr;
    if (std::strcmp(env, "hyper") == 0) return FormatPolicy::kHyper;
    if (std::strcmp(env, "bitmap") == 0) return FormatPolicy::kBitmap;
    if (std::strcmp(env, "dense") == 0) return FormatPolicy::kDense;
  }
  return FormatPolicy::kAuto;
}

// nrows*ncols when it fits in 64 bits (false on overflow or 0 cells).
bool cell_count(Index nrows, Index ncols, uint64_t* out) {
  if (nrows == 0 || ncols == 0) return false;
  if (nrows > ~uint64_t{0} / ncols) return false;
  *out = static_cast<uint64_t>(nrows) * ncols;
  return true;
}

uint64_t nonempty_rows(const MatrixData& m) {
  switch (m.format) {
    case MatFormat::kCsr: {
      uint64_t n = 0;
      for (Index r = 0; r < m.nrows; ++r)
        if (m.ptr[r + 1] > m.ptr[r]) ++n;
      return n;
    }
    case MatFormat::kHyper:
      return m.hrow.size();
    default:
      return m.nrows;  // bitmap/dense blocks are never hyper candidates
  }
}

void copy_value_bytes(ValueArray* dst, const ValueArray& src) {
  dst->resize(src.size());
  if (src.byte_size() != 0)
    std::memcpy(dst->data(), src.data(), src.byte_size());
}

// --- matrix conversions (all to/from canonical CSR) ---------------------

std::shared_ptr<const MatrixData> matrix_to_csr(const MatrixData& m) {
  auto out = std::make_shared<MatrixData>(m.type, m.nrows, m.ncols);
  switch (m.format) {
    case MatFormat::kHyper: {
      // Row lengths scatter into ptr, prefix sum, then col/vals copy
      // verbatim (the compact order is already CSR's).
      for (size_t h = 0; h < m.hrow.size(); ++h)
        out->ptr[m.hrow[h] + 1] = m.ptr[h + 1] - m.ptr[h];
      for (Index r = 0; r < m.nrows; ++r) out->ptr[r + 1] += out->ptr[r];
      out->col.assign(m.col.begin(), m.col.end());
      copy_value_bytes(&out->vals, m.vals);
      break;
    }
    case MatFormat::kBitmap: {
      out->col.reserve(m.full_nvals);
      out->vals.reserve(m.full_nvals);
      for (Index r = 0; r < m.nrows; ++r) {
        const size_t base = static_cast<size_t>(r) * m.ncols;
        for (Index j = 0; j < m.ncols; ++j) {
          if (m.bmap[base + j] != 0) {
            out->col.push_back(j);
            out->vals.push_back(m.vals.at(base + j));
          }
        }
        out->ptr[r + 1] = out->col.size();
      }
      break;
    }
    case MatFormat::kDense: {
      // Every cell present: CSR's row-major value order is exactly the
      // dense buffer, so the value bytes move in one copy.
      out->col.resize(static_cast<size_t>(m.nrows) * m.ncols);
      size_t k = 0;
      for (Index r = 0; r < m.nrows; ++r) {
        for (Index j = 0; j < m.ncols; ++j) out->col[k++] = j;
        out->ptr[r + 1] = k;
      }
      copy_value_bytes(&out->vals, m.vals);
      break;
    }
    case MatFormat::kCsr:
      break;  // unreachable; callers short-circuit
  }
  return out;
}

std::shared_ptr<const MatrixData> csr_to_hyper(const MatrixData& m) {
  auto out = std::make_shared<MatrixData>(m.type, m.nrows, m.ncols,
                                          MatFormat::kHyper);
  for (Index r = 0; r < m.nrows; ++r)
    if (m.ptr[r + 1] > m.ptr[r]) out->hrow.push_back(r);
  out->ptr.reserve(out->hrow.size() + 1);
  out->ptr.push_back(0);
  // Empty rows contribute nothing, so the compact prefix at nonempty
  // row r is m.ptr[r + 1] unchanged.
  for (size_t h = 0; h < out->hrow.size(); ++h)
    out->ptr.push_back(m.ptr[out->hrow[h] + 1]);
  out->col.assign(m.col.begin(), m.col.end());
  copy_value_bytes(&out->vals, m.vals);
  return out;
}

std::shared_ptr<const MatrixData> csr_to_bitmap(const MatrixData& m,
                                                uint64_t cells) {
  auto out = std::make_shared<MatrixData>(m.type, m.nrows, m.ncols,
                                          MatFormat::kBitmap);
  out->bmap.assign(cells, 0);
  out->vals.resize(cells);  // absent slots deterministically zero
  for (Index r = 0; r < m.nrows; ++r) {
    const size_t base = static_cast<size_t>(r) * m.ncols;
    for (size_t k = m.ptr[r]; k < m.ptr[r + 1]; ++k) {
      out->bmap[base + m.col[k]] = 1;
      out->vals.set(base + m.col[k], m.vals.at(k));
    }
  }
  out->full_nvals = m.nvals();
  return out;
}

std::shared_ptr<const MatrixData> csr_to_dense(const MatrixData& m,
                                               uint64_t cells) {
  auto out = std::make_shared<MatrixData>(m.type, m.nrows, m.ncols,
                                          MatFormat::kDense);
  copy_value_bytes(&out->vals, m.vals);  // full CSR == row-major dense
  out->full_nvals = cells;
  return out;
}

// The stored format a forced policy actually yields for this block:
// dense demands a full block, bitmap an affordable cell count; both
// degrade (dense -> bitmap -> csr) rather than fail.
MatFormat forced_matrix_target(const MatrixData& m, MatFormat want) {
  uint64_t cells = 0;
  const bool cells_ok = cell_count(m.nrows, m.ncols, &cells);
  const uint64_t vsize = m.type->size() != 0 ? m.type->size() : 1;
  const uint64_t budget = spgemm_dense_budget();
  if (want == MatFormat::kDense) {
    if (cells_ok && m.nvals() == cells && cells <= budget / vsize)
      return MatFormat::kDense;
    want = MatFormat::kBitmap;
  }
  if (want == MatFormat::kBitmap) {
    if (cells_ok && cells <= budget / (1 + vsize)) return MatFormat::kBitmap;
    return MatFormat::kCsr;
  }
  return want;  // hyper and csr are always representable
}

VecFormat forced_vector_target(const VectorData& v, VecFormat want) {
  const uint64_t vsize = v.type->size() != 0 ? v.type->size() : 1;
  const uint64_t budget = spgemm_dense_budget();
  if (want == VecFormat::kDense) {
    if (v.nvals() == v.n && v.n != 0 && v.n <= budget / vsize)
      return VecFormat::kDense;
    want = VecFormat::kBitmap;
  }
  if (want == VecFormat::kBitmap) {
    if (v.n != 0 && v.n <= budget / (1 + vsize)) return VecFormat::kBitmap;
    return VecFormat::kSparse;
  }
  return want;
}

// --- vector conversions -------------------------------------------------

std::shared_ptr<const VectorData> vector_to_sparse(const VectorData& v) {
  auto out = std::make_shared<VectorData>(v.type, v.n);
  if (v.format == VecFormat::kDense) {
    out->ind.resize(v.n);
    for (Index i = 0; i < v.n; ++i) out->ind[i] = i;
    copy_value_bytes(&out->vals, v.vals);
  } else {  // bitmap
    out->ind.reserve(v.full_nvals);
    out->vals.reserve(v.full_nvals);
    for (Index i = 0; i < v.n; ++i) {
      if (v.bmap[i] != 0) {
        out->ind.push_back(i);
        out->vals.push_back(v.vals.at(i));
      }
    }
  }
  return out;
}

std::shared_ptr<const VectorData> sparse_to_bitmap(const VectorData& v) {
  auto out =
      std::make_shared<VectorData>(v.type, v.n, VecFormat::kBitmap);
  out->bmap.assign(v.n, 0);
  out->vals.resize(v.n);
  for (size_t k = 0; k < v.ind.size(); ++k) {
    out->bmap[v.ind[k]] = 1;
    out->vals.set(v.ind[k], v.vals.at(k));
  }
  out->full_nvals = v.nvals();
  return out;
}

std::shared_ptr<const VectorData> sparse_to_dense(const VectorData& v) {
  auto out = std::make_shared<VectorData>(v.type, v.n, VecFormat::kDense);
  copy_value_bytes(&out->vals, v.vals);  // full: index order == position
  out->full_nvals = v.n;
  return out;
}

// Approximate storage footprints, the currency of the format chooser —
// exported to the decision audit so GxB_Explain shows the byte tradeoff
// a switch was predicted to win.
uint64_t approx_matrix_bytes(const MatrixData& m, MatFormat f) {
  const uint64_t vsize = m.type->size() != 0 ? m.type->size() : 1;
  const uint64_t nnz = m.nvals();
  uint64_t cells = 0;
  switch (f) {
    case MatFormat::kDense:
      if (cell_count(m.nrows, m.ncols, &cells)) return cells * vsize;
      break;
    case MatFormat::kBitmap:
      if (cell_count(m.nrows, m.ncols, &cells)) return cells * (1 + vsize);
      break;
    case MatFormat::kHyper:
    case MatFormat::kCsr:
      break;
  }
  return nnz * (sizeof(Index) + vsize);
}

uint64_t approx_vector_bytes(const VectorData& v, VecFormat f) {
  const uint64_t vsize = v.type->size() != 0 ? v.type->size() : 1;
  switch (f) {
    case VecFormat::kDense:
      return static_cast<uint64_t>(v.n) * vsize;
    case VecFormat::kBitmap:
      return static_cast<uint64_t>(v.n) * (1 + vsize);
    case VecFormat::kSparse:
      break;
  }
  return v.nvals() * (sizeof(Index) + vsize);
}

}  // namespace

const char* format_name(MatFormat f) {
  switch (f) {
    case MatFormat::kCsr: return "csr";
    case MatFormat::kHyper: return "hyper";
    case MatFormat::kBitmap: return "bitmap";
    case MatFormat::kDense: return "dense";
  }
  return "?";
}

const char* format_name(VecFormat f) {
  switch (f) {
    case VecFormat::kSparse: return "sparse";
    case VecFormat::kBitmap: return "bitmap";
    case VecFormat::kDense: return "dense";
  }
  return "?";
}

FormatPolicy format_policy() {
  int p = g_policy.load(std::memory_order_relaxed);
  if (p != -2) return static_cast<FormatPolicy>(p);
  FormatPolicy resolved = resolve_policy_from_env();
  g_policy.store(static_cast<int>(resolved), std::memory_order_relaxed);
  return resolved;
}

void set_format_policy(FormatPolicy p) {
  g_policy.store(static_cast<int>(p), std::memory_order_relaxed);
}

bool transpose_cache_enabled() {
  int v = g_trans_cache.load(std::memory_order_relaxed);
  if (v >= 0) return v != 0;
  const char* env = std::getenv("GRB_TRANSPOSE_CACHE");
  int resolved = (env != nullptr && std::strcmp(env, "0") == 0) ? 0 : 1;
  g_trans_cache.store(resolved, std::memory_order_relaxed);
  return resolved != 0;
}

void set_transpose_cache_enabled(bool on) {
  g_trans_cache.store(on ? 1 : 0, std::memory_order_relaxed);
}

void format_hint_flops(uint64_t flops) { t_flops_hint = flops; }

uint64_t format_take_flops_hint() {
  uint64_t h = t_flops_hint;
  t_flops_hint = 0;
  return h;
}

MatFormat choose_matrix_format(const MatrixData& m, uint64_t flops_hint) {
  const uint64_t nnz = m.nvals();
  if (std::max(nnz, flops_hint) < kFormatMinWork) return m.format;
  const uint64_t vsize = m.type->size() != 0 ? m.type->size() : 1;
  const uint64_t budget = spgemm_dense_budget();
  uint64_t cells = 0;
  if (cell_count(m.nrows, m.ncols, &cells)) {
    if (nnz == cells && cells <= budget / vsize) return MatFormat::kDense;
    // Bitmap only when strictly smaller than CSR's nnz*(index+value)
    // footprint — i.e. density above ~(1+vsize)/(8+vsize) — and the
    // full-cell allocation fits the dense budget.
    if (nnz < cells && cells <= budget / (1 + vsize) &&
        cells * (1 + vsize) < nnz * (sizeof(Index) + vsize))
      return MatFormat::kBitmap;
  }
  if (m.nrows >= kHyperMinRows &&
      nonempty_rows(m) <= m.nrows / kHyperRowRatio)
    return MatFormat::kHyper;
  return MatFormat::kCsr;
}

VecFormat choose_vector_format(const VectorData& v) {
  const uint64_t nnz = v.nvals();
  if (nnz < kFormatMinWork) return v.format;
  const uint64_t vsize = v.type->size() != 0 ? v.type->size() : 1;
  const uint64_t budget = spgemm_dense_budget();
  if (nnz == v.n && v.n <= budget / vsize) return VecFormat::kDense;
  if (nnz < v.n && v.n <= budget / (1 + vsize) &&
      v.n * (1 + vsize) < nnz * (sizeof(Index) + vsize))
    return VecFormat::kBitmap;
  return VecFormat::kSparse;
}

std::shared_ptr<const MatrixData> format_convert_matrix(
    const std::shared_ptr<const MatrixData>& m, MatFormat to) {
  if (m == nullptr || m->format == to) return m;
  std::shared_ptr<const MatrixData> csr =
      m->format == MatFormat::kCsr ? m : matrix_to_csr(*m);
  if (to == MatFormat::kCsr) return csr;
  uint64_t cells = 0;
  switch (to) {
    case MatFormat::kHyper:
      return csr_to_hyper(*csr);
    case MatFormat::kBitmap:
      if (!cell_count(csr->nrows, csr->ncols, &cells)) return csr;
      return csr_to_bitmap(*csr, cells);
    case MatFormat::kDense:
      if (!cell_count(csr->nrows, csr->ncols, &cells) ||
          csr->nvals() != cells)
        return csr;
      return csr_to_dense(*csr, cells);
    case MatFormat::kCsr:
      break;
  }
  return csr;
}

std::shared_ptr<const VectorData> format_convert_vector(
    const std::shared_ptr<const VectorData>& v, VecFormat to) {
  if (v == nullptr || v->format == to) return v;
  std::shared_ptr<const VectorData> sp =
      v->format == VecFormat::kSparse ? v : vector_to_sparse(*v);
  switch (to) {
    case VecFormat::kBitmap:
      if (sp->n == 0) return sp;
      return sparse_to_bitmap(*sp);
    case VecFormat::kDense:
      if (sp->nvals() != sp->n || sp->n == 0) return sp;
      return sparse_to_dense(*sp);
    case VecFormat::kSparse:
      break;
  }
  return sp;
}

std::shared_ptr<const MatrixData> format_adapt_matrix(
    std::shared_ptr<const MatrixData> m, int override_fmt) {
  if (m == nullptr) return m;
  const uint64_t hint = format_take_flops_hint();
  MatFormat target;
  if (override_fmt >= 0) {
    target = forced_matrix_target(*m, static_cast<MatFormat>(override_fmt));
  } else {
    const FormatPolicy p = format_policy();
    target = p == FormatPolicy::kAuto
                 ? choose_matrix_format(*m, hint)
                 : forced_matrix_target(*m, static_cast<MatFormat>(p));
  }
  if (target == m->format) return m;
  // Decision audit: record actual switches only — the steady state
  // ("stay as-is") would bury the interesting rows.  Costs are the
  // approximate storage footprints the chooser weighed, in bytes; the
  // conversion itself is the timed region (timing-only, no mispredict).
  obs::DecisionTicket ticket = obs::decision_record(
      obs::DecisionSite::kFormatAdapt, format_name(target),
      format_name(m->format),
      static_cast<double>(approx_matrix_bytes(*m, target)),
      static_cast<double>(approx_matrix_bytes(*m, m->format)));
  auto out = format_convert_matrix(m, target);
  if (out != m) obs::format_switch();
  obs::decision_measure(ticket, 0);
  return out;
}

std::shared_ptr<const VectorData> format_adapt_vector(
    std::shared_ptr<const VectorData> v, int override_fmt) {
  if (v == nullptr) return v;
  VecFormat target;
  if (override_fmt >= 0) {
    target = forced_vector_target(*v, static_cast<VecFormat>(override_fmt));
  } else {
    const FormatPolicy p = format_policy();
    if (p == FormatPolicy::kAuto) {
      target = choose_vector_format(*v);
    } else {
      // The matrix policy maps onto vectors with hyper meaning sparse
      // (a coordinate list is already row-compressed storage).
      VecFormat want = p == FormatPolicy::kBitmap ? VecFormat::kBitmap
                       : p == FormatPolicy::kDense ? VecFormat::kDense
                                                   : VecFormat::kSparse;
      target = forced_vector_target(*v, want);
    }
  }
  if (target == v->format) return v;
  obs::DecisionTicket ticket = obs::decision_record(
      obs::DecisionSite::kFormatAdapt, format_name(target),
      format_name(v->format),
      static_cast<double>(approx_vector_bytes(*v, target)),
      static_cast<double>(approx_vector_bytes(*v, v->format)));
  auto out = format_convert_vector(v, target);
  if (out != v) obs::format_switch();
  obs::decision_measure(ticket, 0);
  return out;
}

// --- cached canonical views --------------------------------------------
// check-under-lock / compute-outside-lock / install-under-lock: racing
// builders are tolerated, the first install wins, and view_mu_ never
// covers an allocation.

std::shared_ptr<const MatrixData> format_csr_view(
    std::shared_ptr<const MatrixData> m) {
  if (m == nullptr || m->format == MatFormat::kCsr) return m;
  {
    MutexLock lock(m->view_mu_);
    if (m->csr_view_ != nullptr) return m->csr_view_;
  }
  auto built = matrix_to_csr(*m);
  obs::format_csr_convert();
  MutexLock lock(m->view_mu_);
  if (m->csr_view_ == nullptr) m->csr_view_ = std::move(built);
  return m->csr_view_;
}

std::shared_ptr<const VectorData> format_sparse_view(
    std::shared_ptr<const VectorData> v) {
  if (v == nullptr || v->format == VecFormat::kSparse) return v;
  {
    MutexLock lock(v->view_mu_);
    if (v->sparse_view_ != nullptr) return v->sparse_view_;
  }
  auto built = vector_to_sparse(*v);
  obs::format_csr_convert();
  MutexLock lock(v->view_mu_);
  if (v->sparse_view_ == nullptr) v->sparse_view_ = std::move(built);
  return v->sparse_view_;
}

std::shared_ptr<const MatrixData> format_transpose_view(
    const std::shared_ptr<const MatrixData>& m) {
  auto c = format_csr_view(m);
  if (c == nullptr) return c;
  if (!transpose_cache_enabled()) {
    // Cache pinned off by the user: no adaptive decision to audit.
    obs::format_transpose_cache(false);
    return transpose_data(*c);
  }
  const uint64_t nnz = c->nvals();
  std::shared_ptr<const MatrixData> cached;
  {
    MutexLock lock(c->view_mu_);
    cached = c->trans_view_;
  }
  if (cached != nullptr) {
    obs::format_transpose_cache(true);
    obs::decision_measure(
        obs::decision_record(obs::DecisionSite::kTransposeCache, "cached",
                             "rebuild", 0, static_cast<double>(nnz)),
        0);
    return cached;
  }
  obs::DecisionTicket ticket = obs::decision_record(
      obs::DecisionSite::kTransposeCache, "rebuild", "cached",
      static_cast<double>(nnz), 0);
  auto built = transpose_data(*c);
  obs::format_transpose_cache(false);
  obs::decision_measure(ticket, nnz);
  MutexLock lock(c->view_mu_);
  if (c->trans_view_ == nullptr) c->trans_view_ = std::move(built);
  return c->trans_view_;
}

}  // namespace grb
