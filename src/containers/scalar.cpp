#include "containers/scalar.hpp"

namespace grb {

Info Scalar::snapshot(std::shared_ptr<const ScalarData>* out) {
  Info info = complete();
  if (static_cast<int>(info) < 0) return info;
  MutexLock lock(mu_);
  *out = data_;
  return Info::kSuccess;
}

void Scalar::publish(std::shared_ptr<const ScalarData> data) {
  MutexLock lock(mu_);
  data_ = std::move(data);
}

Info Scalar::new_(Scalar** s, const Type* type, Context* ctx) {
  if (s == nullptr || type == nullptr) return Info::kNullPointer;
  Context* c = resolve_context(ctx);
  if (c == nullptr) return Info::kPanic;  // library not initialized
  if (!context_is_live(c)) return Info::kUninitializedObject;
  *s = new Scalar(type, c);
  return Info::kSuccess;
}

Info Scalar::dup(Scalar** out, const Scalar* in) {
  if (out == nullptr || in == nullptr) return Info::kNullPointer;
  auto* src = const_cast<Scalar*>(in);
  std::shared_ptr<const ScalarData> snap;
  GRB_RETURN_IF_ERROR(src->snapshot(&snap));
  auto* s = new Scalar(snap->type, src->context());
  s->publish(std::make_shared<ScalarData>(*snap));
  *out = s;
  return Info::kSuccess;
}

Info Scalar::clear() {
  GRB_RETURN_IF_ERROR(pending_error());
  return defer_or_run(this, [this]() -> Info {
    auto d = std::make_shared<ScalarData>(type());
    publish(std::move(d));
    return Info::kSuccess;
  }, FuseNode{});
}

Info Scalar::nvals(Index* out) {
  if (out == nullptr) return Info::kNullPointer;
  std::shared_ptr<const ScalarData> snap;
  GRB_RETURN_IF_ERROR(snapshot(&snap));
  *out = snap->present ? 1 : 0;
  return Info::kSuccess;
}

Info Scalar::set_element(const void* value, const Type* value_type) {
  if (value == nullptr || value_type == nullptr) return Info::kNullPointer;
  GRB_RETURN_IF_ERROR(pending_error());
  const Type* t = type();
  if (!types_compatible(t, value_type)) return Info::kDomainMismatch;
  // The value is captured now (the caller's buffer need not outlive the
  // call), so deferral is safe.
  ValueBuf captured(t->size());
  cast_value(t, captured.data(), value_type, value);
  return defer_or_run(this, [this, t, captured]() -> Info {
    auto d = std::make_shared<ScalarData>(t);
    d->present = true;
    std::memcpy(d->value.data(), captured.data(), t->size());
    publish(std::move(d));
    return Info::kSuccess;
  }, FuseNode{});
}

Info Scalar::extract_element(void* out, const Type* out_type) {
  if (out == nullptr || out_type == nullptr) return Info::kNullPointer;
  const Type* t = type();
  if (!types_compatible(out_type, t)) return Info::kDomainMismatch;
  std::shared_ptr<const ScalarData> snap;
  GRB_RETURN_IF_ERROR(snapshot(&snap));
  if (!snap->present) return Info::kNoValue;
  cast_value(out_type, out, t, snap->value.data());
  return Info::kSuccess;
}

Info Scalar::free(Scalar* s) {
  if (s == nullptr) return Info::kNullPointer;
  // Resolve (and discard) any outstanding deferred work before releasing.
  s->wait(WaitMode::kMaterialize);
  delete s;
  return Info::kSuccess;
}

}  // namespace grb
