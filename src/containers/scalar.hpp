// GrB_Scalar (paper §VI): an opaque container for a single element of a
// GraphBLAS domain.  Like vectors and matrices it can be *empty*, and
// operations producing one (extractElement / reduce variants) can be
// deferred in nonblocking mode — the two properties the paper gives as
// its motivation.
#pragma once

#include <memory>

#include "core/type.hpp"
#include "exec/object_base.hpp"

namespace grb {

struct ScalarData {
  const Type* type;
  bool present = false;
  ValueBuf value;

  explicit ScalarData(const Type* t) : type(t), value(t->size()) {}
};

class Scalar : public ObjectBase, public obs::MemReportable {
 public:
  Scalar(const Type* type, Context* ctx)
      : ObjectBase(ctx), data_(std::make_shared<ScalarData>(type)) {
    obs::mem_register(this);
  }
  ~Scalar() override { obs::mem_unregister(this); }

  // Scalars are small-buffer values; only UDTs wider than the inline
  // buffer hold heap bytes worth reporting.
  void mem_snapshot(obs::MemReportable::Snapshot* out) const override
      GRB_EXCLUDES(mu_) {
    std::shared_ptr<const ScalarData> d = data_ptr();
    out->kind = "scalar";
    out->rows = 1;
    out->cols = 1;
    out->nvals = d->present ? 1 : 0;
    out->live_bytes = d->value.heap_bytes();
    out->peak_bytes = d->value.heap_bytes();
    out->ctx = obs_ctx_id();
  }

  const Type* type() const { return data_ptr()->type; }

  // Completes the sequence and returns an immutable snapshot.
  Info snapshot(std::shared_ptr<const ScalarData>* out) GRB_EXCLUDES(mu_);

  // Publishes new contents (operation layer; caller already completed).
  void publish(std::shared_ptr<const ScalarData> data) GRB_EXCLUDES(mu_);

  // Current data without forcing completion (safe inside deferred
  // closures; the sequence is FIFO).
  std::shared_ptr<const ScalarData> current_data() const
      GRB_EXCLUDES(mu_) {
    return data_ptr();
  }

  // --- Table I methods ---------------------------------------------------
  static Info new_(Scalar** s, const Type* type, Context* ctx);
  static Info dup(Scalar** out, const Scalar* in);
  Info clear();
  Info nvals(Index* out);
  // setElement casts `value` (of `value_type`) into the scalar's domain.
  Info set_element(const void* value, const Type* value_type);
  // extractElement casts out; kNoValue when empty.
  Info extract_element(void* out, const Type* out_type);
  static Info free(Scalar* s);

 private:
  std::shared_ptr<const ScalarData> data_ptr() const GRB_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return data_;
  }

  std::shared_ptr<const ScalarData> data_ GRB_GUARDED_BY(mu_);
};

}  // namespace grb
