#include "containers/vector.hpp"

#include <algorithm>

#include "containers/format.hpp"
#include "obs/telemetry.hpp"

namespace grb {

size_t VectorData::find(Index i) const {
  if (i >= n) return npos;
  switch (format) {
    case VecFormat::kBitmap:
      return bmap[i] != 0 ? static_cast<size_t>(i) : npos;
    case VecFormat::kDense:
      return static_cast<size_t>(i);
    case VecFormat::kSparse:
      break;
  }
  auto it = std::lower_bound(ind.begin(), ind.end(), i);
  if (it == ind.end() || *it != i) return npos;
  return static_cast<size_t>(it - ind.begin());
}

Info Vector::snapshot(std::shared_ptr<const VectorData>* out) {
  std::shared_ptr<const VectorData> native;
  GRB_RETURN_IF_ERROR(snapshot_native(&native));
  *out = format_sparse_view(std::move(native));
  return Info::kSuccess;
}

Info Vector::snapshot_native(std::shared_ptr<const VectorData>* out) {
  Info info = complete();
  if (static_cast<int>(info) < 0) return info;
  MutexLock lock(mu_);
  *out = data_;
  return Info::kSuccess;
}

void Vector::publish(std::shared_ptr<const VectorData> data) {
  // Snapshot-boundary format adaptation, before mu_ (see Matrix).
  data = format_adapt_vector(std::move(data),
                             fmt_override_.load(std::memory_order_relaxed));
  MutexLock lock(mu_);
  data_ = std::move(data);
}

Info Vector::set_format_option(int fmt) {
  if (fmt < -1 || fmt > static_cast<int>(VecFormat::kDense))
    return Info::kInvalidValue;
  fmt_override_.store(fmt, std::memory_order_relaxed);
  std::shared_ptr<const VectorData> snap;
  GRB_RETURN_IF_ERROR(snapshot_native(&snap));
  publish(std::move(snap));
  return Info::kSuccess;
}

void Vector::mem_snapshot(obs::MemReportable::Snapshot* out) const {
  std::shared_ptr<const VectorData> data;
  {
    MutexLock lock(mu_);
    out->kind = "vector";
    out->rows = size_;
    out->cols = 1;
    data = data_;
    out->live_bytes = obs::account_live(*pend_acct_);
    out->peak_bytes = obs::account_peak(*pend_acct_);
    out->ctx = obs_ctx_id();
  }
  out->nvals = data->nvals();
  out->format = format_name(data->format);
  out->live_bytes += obs::account_live(*data->acct);
  out->peak_bytes += obs::account_peak(*data->acct);
  std::shared_ptr<const VectorData> sparse;
  {
    MutexLock lock(data->view_mu_);
    sparse = data->sparse_view_;
  }
  if (sparse != nullptr)
    out->view_bytes += obs::account_live(*sparse->acct);
  out->live_bytes += out->view_bytes;
}

std::shared_ptr<VectorData> Vector::fold(const VectorData& base,
                                         obs::TrackedVec<PendingTuple> pend,
                                         ValueArray pend_vals) {
  // Assign each non-delete tuple its value slot (insertion order), then
  // keep only the last tuple per index ("last write wins").
  struct Item {
    Index i;
    size_t seq;
    bool is_delete;
    size_t val_slot;
  };
  std::vector<Item> items;
  items.reserve(pend.size());
  size_t slot = 0;
  for (size_t s = 0; s < pend.size(); ++s) {
    items.push_back({pend[s].i, s, pend[s].is_delete,
                     pend[s].is_delete ? size_t{0} : slot});
    if (!pend[s].is_delete) ++slot;
  }
  std::stable_sort(items.begin(), items.end(),
                   [](const Item& a, const Item& b) { return a.i < b.i; });
  // Deduplicate: last per index survives.
  std::vector<Item> last;
  last.reserve(items.size());
  for (size_t k = 0; k < items.size(); ++k) {
    if (k + 1 < items.size() && items[k + 1].i == items[k].i) continue;
    last.push_back(items[k]);
  }

  auto out = std::make_shared<VectorData>(base.type, base.n);
  out->ind.reserve(base.ind.size() + last.size());
  out->vals.reserve(base.ind.size() + last.size());
  size_t b = 0;
  for (const Item& it : last) {
    while (b < base.ind.size() && base.ind[b] < it.i) {
      out->ind.push_back(base.ind[b]);
      out->vals.push_back_from(base.vals, b);
      ++b;
    }
    if (b < base.ind.size() && base.ind[b] == it.i) ++b;  // overridden
    if (!it.is_delete) {
      out->ind.push_back(it.i);
      out->vals.push_back(pend_vals.at(it.val_slot));
    }
  }
  while (b < base.ind.size()) {
    out->ind.push_back(base.ind[b]);
    out->vals.push_back_from(base.vals, b);
    ++b;
  }
  return out;
}

Info Vector::flush_pending() {
  uint64_t upto;
  {
    MutexLock lock(mu_);
    upto = pend_consumed_ + pend_.size();
  }
  return flush_prefix(upto);
}

Info Vector::flush_prefix(uint64_t upto) {
  obs::TrackedVec<PendingTuple> pend{
      obs::TrackedAlloc<PendingTuple>(pend_acct_)};
  ValueArray pvals(type_->size(), pend_acct_);
  std::shared_ptr<const VectorData> base;
  size_t remaining;
  {
    MutexLock lock(mu_);
    size_t take =
        upto > pend_consumed_
            ? std::min<size_t>(pend_.size(),
                               static_cast<size_t>(upto - pend_consumed_))
            : 0;
    if (take == 0) return Info::kSuccess;
    if (take == pend_.size()) {
      pend.swap(pend_);
      pvals = std::move(pend_vals_);
      pend_vals_ = ValueArray(type_->size(), pend_acct_);
    } else {
      // Split: fold only the leading `take` tuples.  Value slots are
      // numbered in insertion order among non-deletes, so the prefix
      // owns the first slots and the survivors' slots shift down.
      size_t slots = 0;
      for (size_t s = 0; s < take; ++s) {
        pend.push_back(pend_[s]);
        if (!pend_[s].is_delete) ++slots;
      }
      for (size_t s = 0; s < slots; ++s) pvals.push_back_from(pend_vals_, s);
      obs::TrackedVec<PendingTuple> rest{
          obs::TrackedAlloc<PendingTuple>(pend_acct_)};
      ValueArray rvals(type_->size(), pend_acct_);
      size_t next_slot = slots;
      for (size_t s = take; s < pend_.size(); ++s) {
        rest.push_back(pend_[s]);
        if (!pend_[s].is_delete) {
          rvals.push_back_from(pend_vals_, next_slot);
          ++next_slot;
        }
      }
      pend_.swap(rest);
      pend_vals_ = std::move(rvals);
    }
    pend_consumed_ += take;
    remaining = pend_.size();
    base = data_;
  }
  obs::pending_tuples_sample(remaining);
  // fold() walks the sorted coordinate form; expand a non-canonical
  // base first (cached on the block).
  auto base_sp = format_sparse_view(std::move(base));
  auto folded = fold(*base_sp, std::move(pend), std::move(pvals));
  publish(std::move(folded));
  return Info::kSuccess;
}

Info Vector::drop_prefix(uint64_t upto) {
  size_t remaining;
  {
    MutexLock lock(mu_);
    size_t take =
        upto > pend_consumed_
            ? std::min<size_t>(pend_.size(),
                               static_cast<size_t>(upto - pend_consumed_))
            : 0;
    if (take == 0) return Info::kSuccess;
    if (take == pend_.size()) {
      obs::TrackedVec<PendingTuple> none{
          obs::TrackedAlloc<PendingTuple>(pend_acct_)};
      pend_.swap(none);
      pend_vals_ = ValueArray(type_->size(), pend_acct_);
    } else {
      size_t slots = 0;
      for (size_t s = 0; s < take; ++s)
        if (!pend_[s].is_delete) ++slots;
      obs::TrackedVec<PendingTuple> rest{
          obs::TrackedAlloc<PendingTuple>(pend_acct_)};
      ValueArray rvals(type_->size(), pend_acct_);
      size_t next_slot = slots;
      for (size_t s = take; s < pend_.size(); ++s) {
        rest.push_back(pend_[s]);
        if (!pend_[s].is_delete) {
          rvals.push_back_from(pend_vals_, next_slot);
          ++next_slot;
        }
      }
      pend_.swap(rest);
      pend_vals_ = std::move(rvals);
    }
    pend_consumed_ += take;
    remaining = pend_.size();
  }
  obs::pending_tuples_sample(remaining);
  return Info::kSuccess;
}

void Vector::enqueue(std::function<Info()> op, FuseNode node) {
  // Fold outstanding fast-path tuples into the sequence first so the
  // deferred op observes them in program order.  The fold is tagged with
  // the absolute tuple count it covers; when a queued flush node already
  // covers everything pending, a second one would fold zero tuples, so
  // none is injected — consecutive deferred ops over one setElement
  // burst share a single batched fold.
  uint64_t upto;
  bool have_tuples;
  {
    MutexLock lock(mu_);
    have_tuples = !pend_.empty();
    upto = pend_consumed_ + pend_.size();
  }
  if (have_tuples && !flush_queued_covering(upto)) {
    FuseNode fl;
    fl.kind = FuseNode::Kind::kFlush;
    fl.flush_upto = upto;
    ObjectBase::enqueue([this, upto]() -> Info { return flush_prefix(upto); },
                        std::move(fl));
  }
  ObjectBase::enqueue(std::move(op), std::move(node));
}

Info Vector::new_(Vector** v, const Type* type, Index n, Context* ctx) {
  if (v == nullptr || type == nullptr) return Info::kNullPointer;
  if (n > kIndexMax) return Info::kInvalidValue;
  Context* c = resolve_context(ctx);
  if (c == nullptr) return Info::kPanic;
  if (!context_is_live(c)) return Info::kUninitializedObject;
  *v = new Vector(type, n, c);
  return Info::kSuccess;
}

Info Vector::dup(Vector** out, const Vector* in) {
  if (out == nullptr || in == nullptr) return Info::kNullPointer;
  auto* src = const_cast<Vector*>(in);
  std::shared_ptr<const VectorData> snap;
  GRB_RETURN_IF_ERROR(src->snapshot(&snap));
  auto* v = new Vector(snap->type, snap->n, src->context());
  v->publish(snap);  // COW: share until either side mutates
  *out = v;
  return Info::kSuccess;
}

Info Vector::free(Vector* v) {
  if (v == nullptr) return Info::kNullPointer;
  v->wait(WaitMode::kMaterialize);
  delete v;
  return Info::kSuccess;
}

Info Vector::clear() {
  GRB_RETURN_IF_ERROR(pending_error());
  auto op = [this]() -> Info {
    Index n;
    {
      MutexLock lock(mu_);
      n = size_;
    }
    publish(std::make_shared<VectorData>(type_, n));
    return Info::kSuccess;
  };
  // clear fully replaces the contents without reading them: a killer for
  // dead-write elimination.
  FuseNode node;
  node.reads_out = false;
  node.full_replace = true;
  return defer_or_run(this, op, std::move(node));
}

Info Vector::nvals(Index* out) {
  if (out == nullptr) return Info::kNullPointer;
  // Native block: every format answers nvals in O(1), no expansion.
  std::shared_ptr<const VectorData> snap;
  GRB_RETURN_IF_ERROR(snapshot_native(&snap));
  *out = snap->nvals();
  return Info::kSuccess;
}

Info Vector::resize(Index new_size) {
  if (new_size > kIndexMax) return Info::kInvalidValue;
  GRB_RETURN_IF_ERROR(pending_error());
  {
    MutexLock lock(mu_);
    size_ = new_size;  // handle dims update eagerly for validation
  }
  auto op = [this, new_size]() -> Info {
    std::shared_ptr<const VectorData> base = current_canonical();
    auto out = std::make_shared<VectorData>(base->type, new_size);
    if (new_size >= base->n) {
      out->ind = base->ind;
      out->vals = base->vals;
    } else {
      for (size_t k = 0; k < base->ind.size() && base->ind[k] < new_size;
           ++k) {
        out->ind.push_back(base->ind[k]);
        out->vals.push_back_from(base->vals, k);
      }
    }
    publish(std::move(out));
    return Info::kSuccess;
  };
  if (mode() == Mode::kBlocking) GRB_RETURN_IF_ERROR(flush_pending());
  // The handle dimension already changed eagerly; the stored truncation
  // must run even when a later op overwrites the values (must_run), or a
  // subsequent writeback would merge against stale-dimension data.
  FuseNode node;
  node.must_run = true;
  return defer_or_run(this, op, std::move(node));
}

}  // namespace grb
