// GrB_Matrix: a sparse matrix of a GraphBLAS domain.
//
// Representation: CSR (row pointers + column indices + type-erased value
// array); column indices are kept sorted within each row.  Handle state
// follows the same COW + pending-sequence design as Vector.
#pragma once

#include <memory>
#include <vector>

#include "core/type.hpp"
#include "exec/object_base.hpp"

namespace grb {

struct MatrixData {
  // Memory-attribution account for ptr/col/vals; declared first so it
  // outlives the arrays it is credited from during destruction.
  std::shared_ptr<obs::MemAccount> acct;
  const Type* type;
  Index nrows = 0, ncols = 0;
  obs::TrackedVec<Index> ptr;  // size nrows + 1
  obs::TrackedVec<Index> col;  // size nvals, sorted within each row
  ValueArray vals;             // stride == type->size()

  MatrixData(const Type* t, Index rows, Index cols)
      : acct(std::make_shared<obs::MemAccount>()),
        type(t),
        nrows(rows),
        ncols(cols),
        ptr(rows + 1, 0, obs::TrackedAlloc<Index>(acct)),
        col(obs::TrackedAlloc<Index>(acct)),
        vals(t->size(), acct) {}

  Index nvals() const { return static_cast<Index>(col.size()); }

  static constexpr size_t npos = ~size_t{0};
  // Position of (i, j) in col/vals, or npos.
  size_t find(Index i, Index j) const;
};

struct PendingTupleIJ {
  Index i, j;
  bool is_delete;
};

class Matrix : public ObjectBase, public obs::MemReportable {
 public:
  Matrix(const Type* type, Index nrows, Index ncols, Context* ctx)
      : ObjectBase(ctx),
        nrows_(nrows),
        ncols_(ncols),
        type_(type),
        data_(std::make_shared<MatrixData>(type, nrows, ncols)),
        pend_acct_(std::make_shared<obs::MemAccount>()),
        pend_(obs::TrackedAlloc<PendingTupleIJ>(pend_acct_)),
        pend_vals_(type->size(), pend_acct_) {
    obs::mem_register(this);
  }
  ~Matrix() override { obs::mem_unregister(this); }

  void mem_snapshot(obs::MemReportable::Snapshot* out) const override
      GRB_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    out->kind = "matrix";
    out->rows = nrows_;
    out->cols = ncols_;
    out->nvals = data_->nvals();
    out->live_bytes =
        obs::account_live(*data_->acct) + obs::account_live(*pend_acct_);
    out->peak_bytes =
        obs::account_peak(*data_->acct) + obs::account_peak(*pend_acct_);
    out->ctx = obs_ctx_id();
  }

  const Type* type() const { return type_; }
  Index nrows() const GRB_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return nrows_;
  }
  Index ncols() const GRB_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return ncols_;
  }

  Info snapshot(std::shared_ptr<const MatrixData>* out) GRB_EXCLUDES(mu_);
  void publish(std::shared_ptr<const MatrixData> data) GRB_EXCLUDES(mu_);
  void enqueue(std::function<Info()> op,
               FuseNode node = FuseNode{}) override GRB_EXCLUDES(mu_);

  // Pending-tuple prefix fold / discard (see Vector).
  Info flush_prefix(uint64_t upto) override GRB_EXCLUDES(mu_);
  Info drop_prefix(uint64_t upto) override GRB_EXCLUDES(mu_);

  // The current data block, without forcing completion (see Vector).
  std::shared_ptr<const MatrixData> current_data() const
      GRB_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return data_;
  }

  static Info new_(Matrix** a, const Type* type, Index nrows, Index ncols,
                   Context* ctx);
  static Info dup(Matrix** out, const Matrix* in);
  static Info free(Matrix* a);
  Info clear();
  Info nvals(Index* out);
  Info resize(Index new_nrows, Index new_ncols);

  // --- element access (ops/element.cpp) ----------------------------------
  Info set_element(const void* value, const Type* value_type, Index i,
                   Index j);
  Info remove_element(Index i, Index j);
  Info extract_element(void* out, const Type* out_type, Index i, Index j);
  Info extract_tuples(Index* row_indices, Index* col_indices, void* values,
                      Index* n, const Type* value_type);

  // --- build (ops/build.cpp) ----------------------------------------------
  Info build(const Index* row_indices, const Index* col_indices,
             const void* values, Index nvals, const class BinaryOp* dup,
             const Type* value_type);

 protected:
  Info flush_pending() override GRB_EXCLUDES(mu_);

 private:
  Index nrows_ GRB_GUARDED_BY(mu_), ncols_ GRB_GUARDED_BY(mu_);
  const Type* type_;  // immutable after construction
  std::shared_ptr<const MatrixData> data_ GRB_GUARDED_BY(mu_);

  // Pending-tuple store, attributed to its own account so the handle can
  // report buffered-but-unfolded bytes; declared before the containers
  // charged to it.
  std::shared_ptr<obs::MemAccount> pend_acct_;
  obs::TrackedVec<PendingTupleIJ> pend_ GRB_GUARDED_BY(mu_);
  ValueArray pend_vals_ GRB_GUARDED_BY(mu_);
  // Monotonic count of pending tuples ever folded or dropped (see
  // Vector::pend_consumed_).
  uint64_t pend_consumed_ GRB_GUARDED_BY(mu_) = 0;

  static std::shared_ptr<MatrixData> fold(
      const MatrixData& base, obs::TrackedVec<PendingTupleIJ> pend,
      ValueArray pend_vals);
};

}  // namespace grb
