// GrB_Matrix: a sparse matrix of a GraphBLAS domain.
//
// Representation: polymorphic storage behind one immutable data-block
// type.  CSR (row pointers + column indices + type-erased value array,
// columns sorted within each row) is the canonical format every generic
// kernel consumes; hypersparse-CSR, bitmap, and dense blocks are chosen
// by a cost model at publish time (containers/format.hpp) and are
// lazily re-expanded to a cached CSR view when a generic kernel needs
// one.  Handle state follows the same COW + pending-sequence design as
// Vector.
#pragma once

#include <memory>
#include <vector>

#include "core/type.hpp"
#include "exec/object_base.hpp"

namespace grb {

// Storage format of one immutable matrix data block (DESIGN.md §15).
//  * kCsr    — canonical: ptr (nrows+1) / col / vals.
//  * kHyper  — hypersparse CSR: hrow lists the nonempty row ids (sorted),
//              ptr is compacted to hrow.size()+1; col/vals as CSR.
//  * kBitmap — bmap holds nrows*ncols presence bytes; vals holds one
//              slot per cell (absent slots zero-filled), row-major.
//  * kDense  — every cell present; vals holds nrows*ncols row-major
//              slots and nothing else is allocated.
enum class MatFormat : uint8_t { kCsr = 0, kHyper = 1, kBitmap = 2,
                                 kDense = 3 };

const char* format_name(MatFormat f);

struct MatrixData {
  // Memory-attribution account for ptr/col/vals; declared first so it
  // outlives the arrays it is credited from during destruction.
  std::shared_ptr<obs::MemAccount> acct;
  const Type* type;
  Index nrows = 0, ncols = 0;
  MatFormat format = MatFormat::kCsr;
  obs::TrackedVec<Index> ptr;   // csr: nrows+1; hyper: hrow.size()+1
  obs::TrackedVec<Index> col;   // csr/hyper: nvals, sorted within a row
  obs::TrackedVec<Index> hrow;  // hyper only: sorted nonempty row ids
  obs::TrackedVec<uint8_t> bmap;  // bitmap only: nrows*ncols presence
  Index full_nvals = 0;           // bitmap/dense: stored entry count
  ValueArray vals;                // stride == type->size()

  MatrixData(const Type* t, Index rows, Index cols,
             MatFormat f = MatFormat::kCsr)
      : acct(std::make_shared<obs::MemAccount>()),
        type(t),
        nrows(rows),
        ncols(cols),
        format(f),
        ptr(f == MatFormat::kCsr ? rows + 1 : 0, 0,
            obs::TrackedAlloc<Index>(acct)),
        col(obs::TrackedAlloc<Index>(acct)),
        hrow(obs::TrackedAlloc<Index>(acct)),
        bmap(obs::TrackedAlloc<uint8_t>(acct)),
        vals(t->size(), acct) {}

  Index nvals() const {
    return format == MatFormat::kBitmap || format == MatFormat::kDense
               ? full_nvals
               : static_cast<Index>(col.size());
  }

  static constexpr size_t npos = ~size_t{0};
  // Position of (i, j) in vals, or npos.  Format-aware: O(log row) for
  // csr/hyper, O(1) for bitmap/dense.
  size_t find(Index i, Index j) const;

  // Canonical-view caches (containers/format.cpp).  A non-CSR block is
  // expanded to CSR at most once; the transpose of the canonical block
  // is built at most once per snapshot.  Both views are immutable blocks
  // themselves and die with this block's last reference, which is the
  // entire invalidation story: COW publishes a fresh block, so a stale
  // cache is unreachable the moment the data changes.
  mutable Mutex view_mu_;
  mutable std::shared_ptr<const MatrixData> csr_view_
      GRB_GUARDED_BY(view_mu_);
  mutable std::shared_ptr<const MatrixData> trans_view_
      GRB_GUARDED_BY(view_mu_);
};

// Canonical CSR view of a snapshot: identity for kCsr blocks, the cached
// (built-at-most-once) expansion otherwise.
std::shared_ptr<const MatrixData> format_csr_view(
    std::shared_ptr<const MatrixData> m);

// Canonical CSR transpose of a snapshot, cached on the canonical block
// so repeated GrB_DESC_T0/T1 reads of one snapshot pay the O(nnz)
// counting sort once (obs: format.transpose_cache_hits/misses).
std::shared_ptr<const MatrixData> format_transpose_view(
    const std::shared_ptr<const MatrixData>& m);

struct PendingTupleIJ {
  Index i, j;
  bool is_delete;
};

class Matrix : public ObjectBase, public obs::MemReportable {
 public:
  Matrix(const Type* type, Index nrows, Index ncols, Context* ctx)
      : ObjectBase(ctx),
        nrows_(nrows),
        ncols_(ncols),
        type_(type),
        data_(std::make_shared<MatrixData>(type, nrows, ncols)),
        pend_acct_(std::make_shared<obs::MemAccount>()),
        pend_(obs::TrackedAlloc<PendingTupleIJ>(pend_acct_)),
        pend_vals_(type->size(), pend_acct_) {
    obs::mem_register(this);
  }
  ~Matrix() override { obs::mem_unregister(this); }

  void mem_snapshot(obs::MemReportable::Snapshot* out) const override
      GRB_EXCLUDES(mu_);

  const Type* type() const { return type_; }
  Index nrows() const GRB_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return nrows_;
  }
  Index ncols() const GRB_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return ncols_;
  }

  // Completes the sequence and returns the canonical-CSR view of the
  // current data block (identity when the block is stored as CSR).
  // Generic kernels that walk ptr/col/vals use this; format-aware fast
  // paths use snapshot_native() and branch on ->format.
  Info snapshot(std::shared_ptr<const MatrixData>* out) GRB_EXCLUDES(mu_);
  Info snapshot_native(std::shared_ptr<const MatrixData>* out)
      GRB_EXCLUDES(mu_);
  // Publishes new contents, adapting the stored format first (cost model
  // or per-object override; containers/format.hpp).  The conversion runs
  // before mu_ is taken.
  void publish(std::shared_ptr<const MatrixData> data) GRB_EXCLUDES(mu_);
  void enqueue(std::function<Info()> op,
               FuseNode node = FuseNode{}) override GRB_EXCLUDES(mu_);

  // Pending-tuple prefix fold / discard (see Vector).
  Info flush_prefix(uint64_t upto) override GRB_EXCLUDES(mu_);
  Info drop_prefix(uint64_t upto) override GRB_EXCLUDES(mu_);

  // The current data block, without forcing completion (see Vector).
  std::shared_ptr<const MatrixData> current_data() const
      GRB_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return data_;
  }
  // Canonical-CSR view of current_data() — what deferred closures read.
  std::shared_ptr<const MatrixData> current_canonical() const
      GRB_EXCLUDES(mu_) {
    return format_csr_view(current_data());
  }

  // GxB_Matrix_Option_set/get: per-object format pin (-1 = cost model).
  // Setting a concrete format converts the completed current block
  // immediately so introspection coheres with the pin.
  Info set_format_option(int fmt) GRB_EXCLUDES(mu_);
  int format_option() const {
    return fmt_override_.load(std::memory_order_relaxed);
  }

  static Info new_(Matrix** a, const Type* type, Index nrows, Index ncols,
                   Context* ctx);
  static Info dup(Matrix** out, const Matrix* in);
  static Info free(Matrix* a);
  Info clear();
  Info nvals(Index* out);
  Info resize(Index new_nrows, Index new_ncols);

  // --- element access (ops/element.cpp) ----------------------------------
  Info set_element(const void* value, const Type* value_type, Index i,
                   Index j);
  Info remove_element(Index i, Index j);
  Info extract_element(void* out, const Type* out_type, Index i, Index j);
  Info extract_tuples(Index* row_indices, Index* col_indices, void* values,
                      Index* n, const Type* value_type);

  // --- build (ops/build.cpp) ----------------------------------------------
  Info build(const Index* row_indices, const Index* col_indices,
             const void* values, Index nvals, const class BinaryOp* dup,
             const Type* value_type);

 protected:
  Info flush_pending() override GRB_EXCLUDES(mu_);

 private:
  Index nrows_ GRB_GUARDED_BY(mu_), ncols_ GRB_GUARDED_BY(mu_);
  const Type* type_;  // immutable after construction
  std::shared_ptr<const MatrixData> data_ GRB_GUARDED_BY(mu_);
  // Per-object format pin: -1 defers to the cost model / GRB_FORMAT
  // policy, otherwise a MatFormat value publish() converts to.
  std::atomic<int> fmt_override_{-1};

  // Pending-tuple store, attributed to its own account so the handle can
  // report buffered-but-unfolded bytes; declared before the containers
  // charged to it.
  std::shared_ptr<obs::MemAccount> pend_acct_;
  obs::TrackedVec<PendingTupleIJ> pend_ GRB_GUARDED_BY(mu_);
  ValueArray pend_vals_ GRB_GUARDED_BY(mu_);
  // Monotonic count of pending tuples ever folded or dropped (see
  // Vector::pend_consumed_).
  uint64_t pend_consumed_ GRB_GUARDED_BY(mu_) = 0;

  static std::shared_ptr<MatrixData> fold(
      const MatrixData& base, obs::TrackedVec<PendingTupleIJ> pend,
      ValueArray pend_vals);
};

}  // namespace grb
