#include "containers/matrix.hpp"

#include <algorithm>

#include "containers/format.hpp"
#include "obs/telemetry.hpp"

namespace grb {

size_t MatrixData::find(Index i, Index j) const {
  if (i >= nrows || j >= ncols) return npos;
  switch (format) {
    case MatFormat::kBitmap: {
      const size_t slot = static_cast<size_t>(i) * ncols + j;
      return bmap[slot] != 0 ? slot : npos;
    }
    case MatFormat::kDense:
      return static_cast<size_t>(i) * ncols + j;
    case MatFormat::kHyper: {
      auto h = std::lower_bound(hrow.begin(), hrow.end(), i);
      if (h == hrow.end() || *h != i) return npos;
      const size_t r = static_cast<size_t>(h - hrow.begin());
      auto first = col.begin() + static_cast<ptrdiff_t>(ptr[r]);
      auto last = col.begin() + static_cast<ptrdiff_t>(ptr[r + 1]);
      auto it = std::lower_bound(first, last, j);
      if (it == last || *it != j) return npos;
      return static_cast<size_t>(it - col.begin());
    }
    case MatFormat::kCsr:
      break;
  }
  auto first = col.begin() + static_cast<ptrdiff_t>(ptr[i]);
  auto last = col.begin() + static_cast<ptrdiff_t>(ptr[i + 1]);
  auto it = std::lower_bound(first, last, j);
  if (it == last || *it != j) return npos;
  return static_cast<size_t>(it - col.begin());
}

Info Matrix::snapshot(std::shared_ptr<const MatrixData>* out) {
  std::shared_ptr<const MatrixData> native;
  GRB_RETURN_IF_ERROR(snapshot_native(&native));
  // Canonicalize outside mu_ (the expansion allocates; it is cached on
  // the immutable block, so concurrent readers share one view).
  *out = format_csr_view(std::move(native));
  return Info::kSuccess;
}

Info Matrix::snapshot_native(std::shared_ptr<const MatrixData>* out) {
  Info info = complete();
  if (static_cast<int>(info) < 0) return info;
  MutexLock lock(mu_);
  *out = data_;
  return Info::kSuccess;
}

void Matrix::publish(std::shared_ptr<const MatrixData> data) {
  // Format adaptation is the snapshot-boundary conversion point: it
  // happens here, before mu_, so lock scope never covers a conversion
  // and consumers of data_ only ever see fully-formed blocks.
  data = format_adapt_matrix(std::move(data),
                             fmt_override_.load(std::memory_order_relaxed));
  MutexLock lock(mu_);
  data_ = std::move(data);
}

Info Matrix::set_format_option(int fmt) {
  if (fmt < -1 || fmt > static_cast<int>(MatFormat::kDense))
    return Info::kInvalidValue;
  fmt_override_.store(fmt, std::memory_order_relaxed);
  // Re-store the completed current block under the new pin so
  // GxB_Matrix_Option_get coheres immediately.
  std::shared_ptr<const MatrixData> snap;
  GRB_RETURN_IF_ERROR(snapshot_native(&snap));
  publish(std::move(snap));
  return Info::kSuccess;
}

void Matrix::mem_snapshot(obs::MemReportable::Snapshot* out) const {
  std::shared_ptr<const MatrixData> data;
  {
    MutexLock lock(mu_);
    out->kind = "matrix";
    out->rows = nrows_;
    out->cols = ncols_;
    data = data_;
    out->live_bytes = obs::account_live(*pend_acct_);
    out->peak_bytes = obs::account_peak(*pend_acct_);
    out->ctx = obs_ctx_id();
  }
  out->nvals = data->nvals();
  out->format = format_name(data->format);
  out->live_bytes += obs::account_live(*data->acct);
  out->peak_bytes += obs::account_peak(*data->acct);
  // Cached canonical/transpose views ride on the block they describe;
  // report them with their owner so "which matrix ate 3 GiB" keeps an
  // exact answer with format caches in play.
  std::shared_ptr<const MatrixData> csr, trans;
  {
    MutexLock lock(data->view_mu_);
    csr = data->csr_view_;
    trans = data->trans_view_;
  }
  if (csr != nullptr) {
    out->view_bytes += obs::account_live(*csr->acct);
    // The transpose of a non-CSR block is cached on its canonical view.
    MutexLock lock(csr->view_mu_);
    if (csr->trans_view_ != nullptr)
      out->view_bytes += obs::account_live(*csr->trans_view_->acct);
  }
  if (trans != nullptr) out->view_bytes += obs::account_live(*trans->acct);
  out->live_bytes += out->view_bytes;
}

std::shared_ptr<MatrixData> Matrix::fold(const MatrixData& base,
                                         obs::TrackedVec<PendingTupleIJ> pend,
                                         ValueArray pend_vals) {
  struct Item {
    Index i, j;
    size_t seq;
    bool is_delete;
    size_t val_slot;
  };
  std::vector<Item> items;
  items.reserve(pend.size());
  size_t slot = 0;
  for (size_t s = 0; s < pend.size(); ++s) {
    items.push_back({pend[s].i, pend[s].j, s, pend[s].is_delete,
                     pend[s].is_delete ? size_t{0} : slot});
    if (!pend[s].is_delete) ++slot;
  }
  std::stable_sort(items.begin(), items.end(),
                   [](const Item& a, const Item& b) {
                     return a.i != b.i ? a.i < b.i : a.j < b.j;
                   });
  std::vector<Item> last;
  last.reserve(items.size());
  for (size_t k = 0; k < items.size(); ++k) {
    if (k + 1 < items.size() && items[k + 1].i == items[k].i &&
        items[k + 1].j == items[k].j)
      continue;
    last.push_back(items[k]);
  }

  auto out = std::make_shared<MatrixData>(base.type, base.nrows, base.ncols);
  out->col.reserve(base.col.size() + last.size());
  out->vals.reserve(base.col.size() + last.size());
  size_t t = 0;  // cursor into `last`
  for (Index r = 0; r < base.nrows; ++r) {
    size_t b = base.ptr[r];
    size_t bend = base.ptr[r + 1];
    while (t < last.size() && last[t].i == r) {
      Index j = last[t].j;
      while (b < bend && base.col[b] < j) {
        out->col.push_back(base.col[b]);
        out->vals.push_back_from(base.vals, b);
        ++b;
      }
      if (b < bend && base.col[b] == j) ++b;  // overridden
      if (!last[t].is_delete) {
        out->col.push_back(j);
        out->vals.push_back(pend_vals.at(last[t].val_slot));
      }
      ++t;
    }
    while (b < bend) {
      out->col.push_back(base.col[b]);
      out->vals.push_back_from(base.vals, b);
      ++b;
    }
    out->ptr[r + 1] = out->col.size();
  }
  return out;
}

Info Matrix::flush_pending() {
  uint64_t upto;
  {
    MutexLock lock(mu_);
    upto = pend_consumed_ + pend_.size();
  }
  return flush_prefix(upto);
}

Info Matrix::flush_prefix(uint64_t upto) {
  obs::TrackedVec<PendingTupleIJ> pend{
      obs::TrackedAlloc<PendingTupleIJ>(pend_acct_)};
  ValueArray pvals(type_->size(), pend_acct_);
  std::shared_ptr<const MatrixData> base;
  size_t remaining;
  {
    MutexLock lock(mu_);
    size_t take =
        upto > pend_consumed_
            ? std::min<size_t>(pend_.size(),
                               static_cast<size_t>(upto - pend_consumed_))
            : 0;
    if (take == 0) return Info::kSuccess;
    if (take == pend_.size()) {
      pend.swap(pend_);
      pvals = std::move(pend_vals_);
      pend_vals_ = ValueArray(type_->size(), pend_acct_);
    } else {
      // Split: fold only the leading `take` tuples (see Vector).
      size_t slots = 0;
      for (size_t s = 0; s < take; ++s) {
        pend.push_back(pend_[s]);
        if (!pend_[s].is_delete) ++slots;
      }
      for (size_t s = 0; s < slots; ++s) pvals.push_back_from(pend_vals_, s);
      obs::TrackedVec<PendingTupleIJ> rest{
          obs::TrackedAlloc<PendingTupleIJ>(pend_acct_)};
      ValueArray rvals(type_->size(), pend_acct_);
      size_t next_slot = slots;
      for (size_t s = take; s < pend_.size(); ++s) {
        rest.push_back(pend_[s]);
        if (!pend_[s].is_delete) {
          rvals.push_back_from(pend_vals_, next_slot);
          ++next_slot;
        }
      }
      pend_.swap(rest);
      pend_vals_ = std::move(rvals);
    }
    pend_consumed_ += take;
    remaining = pend_.size();
    base = data_;
  }
  obs::pending_tuples_sample(remaining);
  // fold() walks CSR structure; expand a non-canonical base first (the
  // view is cached, so repeated folds against one block convert once).
  auto base_csr = format_csr_view(std::move(base));
  auto folded = fold(*base_csr, std::move(pend), std::move(pvals));
  publish(std::move(folded));
  return Info::kSuccess;
}

Info Matrix::drop_prefix(uint64_t upto) {
  size_t remaining;
  {
    MutexLock lock(mu_);
    size_t take =
        upto > pend_consumed_
            ? std::min<size_t>(pend_.size(),
                               static_cast<size_t>(upto - pend_consumed_))
            : 0;
    if (take == 0) return Info::kSuccess;
    if (take == pend_.size()) {
      obs::TrackedVec<PendingTupleIJ> none{
          obs::TrackedAlloc<PendingTupleIJ>(pend_acct_)};
      pend_.swap(none);
      pend_vals_ = ValueArray(type_->size(), pend_acct_);
    } else {
      size_t slots = 0;
      for (size_t s = 0; s < take; ++s)
        if (!pend_[s].is_delete) ++slots;
      obs::TrackedVec<PendingTupleIJ> rest{
          obs::TrackedAlloc<PendingTupleIJ>(pend_acct_)};
      ValueArray rvals(type_->size(), pend_acct_);
      size_t next_slot = slots;
      for (size_t s = take; s < pend_.size(); ++s) {
        rest.push_back(pend_[s]);
        if (!pend_[s].is_delete) {
          rvals.push_back_from(pend_vals_, next_slot);
          ++next_slot;
        }
      }
      pend_.swap(rest);
      pend_vals_ = std::move(rvals);
    }
    pend_consumed_ += take;
    remaining = pend_.size();
  }
  obs::pending_tuples_sample(remaining);
  return Info::kSuccess;
}

void Matrix::enqueue(std::function<Info()> op, FuseNode node) {
  // See Vector::enqueue: tagged prefix fold, batched across consecutive
  // deferred ops over one setElement burst.
  uint64_t upto;
  bool have_tuples;
  {
    MutexLock lock(mu_);
    have_tuples = !pend_.empty();
    upto = pend_consumed_ + pend_.size();
  }
  if (have_tuples && !flush_queued_covering(upto)) {
    FuseNode fl;
    fl.kind = FuseNode::Kind::kFlush;
    fl.flush_upto = upto;
    ObjectBase::enqueue([this, upto]() -> Info { return flush_prefix(upto); },
                        std::move(fl));
  }
  ObjectBase::enqueue(std::move(op), std::move(node));
}

Info Matrix::new_(Matrix** a, const Type* type, Index nrows, Index ncols,
                  Context* ctx) {
  if (a == nullptr || type == nullptr) return Info::kNullPointer;
  if (nrows > kIndexMax || ncols > kIndexMax) return Info::kInvalidValue;
  Context* c = resolve_context(ctx);
  if (c == nullptr) return Info::kPanic;
  if (!context_is_live(c)) return Info::kUninitializedObject;
  *a = new Matrix(type, nrows, ncols, c);
  return Info::kSuccess;
}

Info Matrix::dup(Matrix** out, const Matrix* in) {
  if (out == nullptr || in == nullptr) return Info::kNullPointer;
  auto* src = const_cast<Matrix*>(in);
  std::shared_ptr<const MatrixData> snap;
  GRB_RETURN_IF_ERROR(src->snapshot(&snap));
  auto* a = new Matrix(snap->type, snap->nrows, snap->ncols, src->context());
  a->publish(snap);
  *out = a;
  return Info::kSuccess;
}

Info Matrix::free(Matrix* a) {
  if (a == nullptr) return Info::kNullPointer;
  a->wait(WaitMode::kMaterialize);
  delete a;
  return Info::kSuccess;
}

Info Matrix::clear() {
  GRB_RETURN_IF_ERROR(pending_error());
  auto op = [this]() -> Info {
    Index r, c;
    {
      MutexLock lock(mu_);
      r = nrows_;
      c = ncols_;
    }
    publish(std::make_shared<MatrixData>(type_, r, c));
    return Info::kSuccess;
  };
  // Full overwrite without reading: a dead-write killer.
  FuseNode node;
  node.reads_out = false;
  node.full_replace = true;
  return defer_or_run(this, op, std::move(node));
}

Info Matrix::nvals(Index* out) {
  if (out == nullptr) return Info::kNullPointer;
  // Native block: every format answers nvals in O(1), no expansion.
  std::shared_ptr<const MatrixData> snap;
  GRB_RETURN_IF_ERROR(snapshot_native(&snap));
  *out = snap->nvals();
  return Info::kSuccess;
}

Info Matrix::resize(Index new_nrows, Index new_ncols) {
  if (new_nrows > kIndexMax || new_ncols > kIndexMax)
    return Info::kInvalidValue;
  GRB_RETURN_IF_ERROR(pending_error());
  {
    MutexLock lock(mu_);
    nrows_ = new_nrows;
    ncols_ = new_ncols;
  }
  auto op = [this, new_nrows, new_ncols]() -> Info {
    std::shared_ptr<const MatrixData> base = current_canonical();
    auto out = std::make_shared<MatrixData>(base->type, new_nrows, new_ncols);
    Index keep_rows = std::min(new_nrows, base->nrows);
    for (Index r = 0; r < keep_rows; ++r) {
      for (size_t k = base->ptr[r]; k < base->ptr[r + 1]; ++k) {
        if (base->col[k] < new_ncols) {
          out->col.push_back(base->col[k]);
          out->vals.push_back_from(base->vals, k);
        }
      }
      out->ptr[r + 1] = out->col.size();
    }
    for (Index r = keep_rows; r < new_nrows; ++r)
      out->ptr[r + 1] = out->col.size();
    publish(std::move(out));
    return Info::kSuccess;
  };
  if (mode() == Mode::kBlocking) GRB_RETURN_IF_ERROR(flush_pending());
  // Handle dims changed eagerly; the truncation must survive dead-write
  // elimination (see Vector::resize).
  FuseNode node;
  node.must_run = true;
  return defer_or_run(this, op, std::move(node));
}

}  // namespace grb
