// GrB_Vector: a sparse vector of a GraphBLAS domain.
//
// Representation: sorted coordinate list (strictly increasing indices)
// with a type-erased value array.  Handle state follows the COW +
// pending-sequence design described in DESIGN.md:
//  * `data_` is an immutable snapshot shared with in-flight deferred ops;
//  * setElement/removeElement append O(1) pending tuples that are folded
//    on completion (the bulk-ingest pattern nonblocking mode enables);
//  * dimensions live in the handle so API validation never has to force
//    completion.
#pragma once

#include <memory>
#include <vector>

#include "core/type.hpp"
#include "exec/object_base.hpp"

namespace grb {

// Storage format of one immutable vector data block (DESIGN.md §15).
//  * kSparse — canonical: sorted coordinate list ind + packed vals.
//  * kBitmap — bmap holds n presence bytes; vals holds one slot per
//              position (absent slots zero-filled).
//  * kDense  — every position present; vals holds n slots.
enum class VecFormat : uint8_t { kSparse = 0, kBitmap = 1, kDense = 2 };

const char* format_name(VecFormat f);

struct VectorData {
  // Memory-attribution account for ind/vals; declared first so it
  // outlives the arrays it is credited from during destruction.
  std::shared_ptr<obs::MemAccount> acct;
  const Type* type;
  Index n = 0;
  VecFormat format = VecFormat::kSparse;
  obs::TrackedVec<Index> ind;     // sparse only: sorted, unique
  obs::TrackedVec<uint8_t> bmap;  // bitmap only: n presence bytes
  Index full_nvals = 0;           // bitmap/dense: stored entry count
  ValueArray vals;                // stride == type->size()

  VectorData(const Type* t, Index size,
             VecFormat f = VecFormat::kSparse)
      : acct(std::make_shared<obs::MemAccount>()),
        type(t),
        n(size),
        format(f),
        ind(obs::TrackedAlloc<Index>(acct)),
        bmap(obs::TrackedAlloc<uint8_t>(acct)),
        vals(t->size(), acct) {}

  Index nvals() const {
    return format == VecFormat::kSparse ? static_cast<Index>(ind.size())
                                        : full_nvals;
  }

  // Position of index i in vals, or npos.  O(1) for bitmap/dense.
  static constexpr size_t npos = ~size_t{0};
  size_t find(Index i) const;

  // Canonical-view cache (containers/format.cpp): a non-sparse block is
  // expanded to the sorted-coordinate form at most once; the view dies
  // with this block's last reference (COW = free invalidation).
  mutable Mutex view_mu_;
  mutable std::shared_ptr<const VectorData> sparse_view_
      GRB_GUARDED_BY(view_mu_);
};

// Canonical sparse view of a snapshot: identity for kSparse blocks, the
// cached expansion otherwise.
std::shared_ptr<const VectorData> format_sparse_view(
    std::shared_ptr<const VectorData> v);

// A pending elementwise update (setElement or removeElement).
struct PendingTuple {
  Index i;
  bool is_delete;
};

class Vector : public ObjectBase, public obs::MemReportable {
 public:
  Vector(const Type* type, Index n, Context* ctx)
      : ObjectBase(ctx),
        size_(n),
        type_(type),
        data_(std::make_shared<VectorData>(type, n)),
        pend_acct_(std::make_shared<obs::MemAccount>()),
        pend_(obs::TrackedAlloc<PendingTuple>(pend_acct_)),
        pend_vals_(type->size(), pend_acct_) {
    obs::mem_register(this);
  }
  ~Vector() override { obs::mem_unregister(this); }

  void mem_snapshot(obs::MemReportable::Snapshot* out) const override
      GRB_EXCLUDES(mu_);

  const Type* type() const { return type_; }
  Index size() const GRB_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return size_;
  }

  // Completes the sequence (drains deferred ops, folds pending tuples)
  // and returns an immutable snapshot in the canonical sparse form.
  // Format-aware fast paths use snapshot_native() and branch on
  // ->format.
  Info snapshot(std::shared_ptr<const VectorData>* out) GRB_EXCLUDES(mu_);
  Info snapshot_native(std::shared_ptr<const VectorData>* out)
      GRB_EXCLUDES(mu_);

  // Publishes new contents, adapting the stored format first (cost
  // model or per-object override; the conversion runs before mu_ is
  // taken).  Called by operation closures; the data's size must equal
  // the handle size at the time the closure runs.
  void publish(std::shared_ptr<const VectorData> data) GRB_EXCLUDES(mu_);

  // Folds any pending tuples into the sequence, then appends `op`, so
  // deferred operations observe setElement calls in program order.  The
  // injected fold is a kFlush node tagged with the absolute tuple count
  // it covers; when a queued flush already covers everything pending, no
  // second node is injected (pending-writeback batching).
  void enqueue(std::function<Info()> op,
               FuseNode node = FuseNode{}) override GRB_EXCLUDES(mu_);

  // Folds (or, for dead-write elimination, discards) exactly the pending
  // tuples enqueued before absolute consumed-count `upto`; tuples queued
  // after that point stay pending for a later fold.
  Info flush_prefix(uint64_t upto) override GRB_EXCLUDES(mu_);
  Info drop_prefix(uint64_t upto) override GRB_EXCLUDES(mu_);

  // The current data block, without forcing completion.  Safe inside a
  // deferred closure: the sequence is FIFO, so every predecessor has
  // already published.
  std::shared_ptr<const VectorData> current_data() const
      GRB_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return data_;
  }
  // Canonical sparse view of current_data() — what deferred closures
  // read.
  std::shared_ptr<const VectorData> current_canonical() const
      GRB_EXCLUDES(mu_) {
    return format_sparse_view(current_data());
  }

  // GxB_Vector_Option_set/get: per-object format pin (-1 = cost model).
  Info set_format_option(int fmt) GRB_EXCLUDES(mu_);
  int format_option() const {
    return fmt_override_.load(std::memory_order_relaxed);
  }

  // --- lifecycle / structure --------------------------------------------
  static Info new_(Vector** v, const Type* type, Index n, Context* ctx);
  static Info dup(Vector** out, const Vector* in);
  static Info free(Vector* v);
  Info clear();
  Info nvals(Index* out);
  Info resize(Index new_size);

  // --- element access (ops/element.cpp) ----------------------------------
  Info set_element(const void* value, const Type* value_type, Index i);
  Info remove_element(Index i);
  Info extract_element(void* out, const Type* out_type, Index i);
  Info extract_tuples(Index* indices, void* values, Index* n,
                      const Type* value_type);

  // --- build (ops/build.cpp) ----------------------------------------------
  Info build(const Index* indices, const void* values, Index nvals,
             const class BinaryOp* dup, const Type* value_type);

 protected:
  Info flush_pending() override GRB_EXCLUDES(mu_);

 private:
  Index size_ GRB_GUARDED_BY(mu_);
  const Type* type_;  // immutable after construction
  std::shared_ptr<const VectorData> data_ GRB_GUARDED_BY(mu_);
  // Per-object format pin: -1 defers to the cost model / GRB_FORMAT
  // policy, otherwise a VecFormat value publish() converts to.
  std::atomic<int> fmt_override_{-1};

  // Pending-tuple store on its own account (buffered-but-unfolded bytes
  // in the handle's memory snapshot); account declared first.
  std::shared_ptr<obs::MemAccount> pend_acct_;
  obs::TrackedVec<PendingTuple> pend_ GRB_GUARDED_BY(mu_);
  ValueArray pend_vals_ GRB_GUARDED_BY(mu_);
  // Monotonic count of pending tuples ever folded or dropped; kFlush
  // nodes carry the absolute count they advance to (flush_prefix).
  uint64_t pend_consumed_ GRB_GUARDED_BY(mu_) = 0;

  // Folds `pend/pend_vals` (moved-from) into `base`, producing new data.
  static std::shared_ptr<VectorData> fold(
      const VectorData& base, obs::TrackedVec<PendingTuple> pend,
      ValueArray pend_vals);
};

}  // namespace grb
