// Polymorphic storage-format policy for the container layer
// (DESIGN.md §15).
//
// Every data block is immutable (COW), so format decisions happen at
// exactly one place: publish time, the snapshot boundary where a
// deferred closure hands its result to the owning handle.  The cost
// model below picks kCsr / kHyper / kBitmap / kDense from the block's
// nnz density (and, when the SpGEMM engine has one, the cached symbolic
// flop count of the op that produced it); `GRB_FORMAT` and the
// per-object GxB option pin override it.  Generic kernels never see a
// non-canonical block — format_csr_view / format_sparse_view expand one
// lazily (and cache the expansion on the block), while format-aware
// fast paths read the native block via snapshot_native().
//
// Invalidation: none needed.  Views are cached on the immutable block
// they describe and become unreachable together with it when a new
// block is published.
#pragma once

#include "containers/matrix.hpp"
#include "containers/vector.hpp"

namespace grb {

// Global format policy (GRB_FORMAT=csr|hyper|bitmap|dense|auto; default
// auto).  Resolved lazily like GRB_SPGEMM; set_format_policy overrides
// at run time (tests, the CI ablation leg, benchmarks).
enum class FormatPolicy : int {
  kAuto = -1,
  kCsr = 0,
  kHyper = 1,
  kBitmap = 2,
  kDense = 3,
};
FormatPolicy format_policy();
void set_format_policy(FormatPolicy p);

// Transpose-view cache toggle (GRB_TRANSPOSE_CACHE=0 disables; default
// on).  The off switch exists for the bench ablation: every descriptor
// transpose then recomputes the counting sort, the pre-§15 behavior.
bool transpose_cache_enabled();
void set_transpose_cache_enabled(bool on);

// Symbolic-work hint for the cost model, set (thread-locally) by the
// SpGEMM engine before the consuming publish: the cached row-cost total
// of the op that produced the block.  Consumed (and cleared) by the
// next format_adapt_* call on this thread.
void format_hint_flops(uint64_t flops);
uint64_t format_take_flops_hint();

// Cost model: the format the policy would store `m` in.  `flops_hint`
// amortizes conversion cost against the work that produced the block.
MatFormat choose_matrix_format(const MatrixData& m, uint64_t flops_hint);
VecFormat choose_vector_format(const VectorData& v);

// Pure conversions (exact: value bytes are copied verbatim, so every
// format round-trips bitwise-identically through CSR).  A conversion to
// the block's own format returns the input.
std::shared_ptr<const MatrixData> format_convert_matrix(
    const std::shared_ptr<const MatrixData>& m, MatFormat to);
std::shared_ptr<const VectorData> format_convert_vector(
    const std::shared_ptr<const VectorData>& v, VecFormat to);

// Publish-time adaptation: applies the per-object pin when `override_fmt`
// is a MatFormat/VecFormat value (>= 0), else the GRB_FORMAT policy /
// cost model.  Counts format.switches when the stored format changes.
std::shared_ptr<const MatrixData> format_adapt_matrix(
    std::shared_ptr<const MatrixData> m, int override_fmt);
std::shared_ptr<const VectorData> format_adapt_vector(
    std::shared_ptr<const VectorData> v, int override_fmt);

}  // namespace grb
