// Experiment T1 (paper Table I): GrB_Scalar manipulation methods.
// Measures the per-call cost of each Table I method — the table's claim
// is an API surface, so the reproduction shows each method exists,
// behaves, and costs O(1).
#include "bench/bench_util.hpp"

namespace {

void BM_ScalarNewFree(benchmark::State& state) {
  for (auto _ : state) {
    GrB_Scalar s = nullptr;
    BENCH_TRY(GrB_Scalar_new(&s, GrB_FP64));
    benchmark::DoNotOptimize(s);
    BENCH_TRY(GrB_free(&s));
  }
}
BENCHMARK(BM_ScalarNewFree);

void BM_ScalarDup(benchmark::State& state) {
  GrB_Scalar s = nullptr;
  BENCH_TRY(GrB_Scalar_new(&s, GrB_FP64));
  BENCH_TRY(GrB_Scalar_setElement(s, 1.5));
  for (auto _ : state) {
    GrB_Scalar d = nullptr;
    BENCH_TRY(GrB_Scalar_dup(&d, s));
    benchmark::DoNotOptimize(d);
    BENCH_TRY(GrB_free(&d));
  }
  GrB_free(&s);
}
BENCHMARK(BM_ScalarDup);

void BM_ScalarSetElement(benchmark::State& state) {
  GrB_Scalar s = nullptr;
  BENCH_TRY(GrB_Scalar_new(&s, GrB_FP64));
  double v = 0;
  for (auto _ : state) {
    BENCH_TRY(GrB_Scalar_setElement(s, v));
    v += 1.0;
  }
  GrB_free(&s);
}
BENCHMARK(BM_ScalarSetElement);

void BM_ScalarExtractElement(benchmark::State& state) {
  GrB_Scalar s = nullptr;
  BENCH_TRY(GrB_Scalar_new(&s, GrB_FP64));
  BENCH_TRY(GrB_Scalar_setElement(s, 2.25));
  for (auto _ : state) {
    double out = 0;
    BENCH_TRY(GrB_Scalar_extractElement(&out, s));
    benchmark::DoNotOptimize(out);
  }
  GrB_free(&s);
}
BENCHMARK(BM_ScalarExtractElement);

void BM_ScalarExtractEmpty(benchmark::State& state) {
  // The empty case costs the same: no GrB_NO_VALUE branch explosion.
  GrB_Scalar s = nullptr;
  BENCH_TRY(GrB_Scalar_new(&s, GrB_FP64));
  for (auto _ : state) {
    double out = 0;
    GrB_Info info = GrB_Scalar_extractElement(&out, s);
    benchmark::DoNotOptimize(info);
  }
  GrB_free(&s);
}
BENCHMARK(BM_ScalarExtractEmpty);

void BM_ScalarNvals(benchmark::State& state) {
  GrB_Scalar s = nullptr;
  BENCH_TRY(GrB_Scalar_new(&s, GrB_INT64));
  BENCH_TRY(GrB_Scalar_setElement(s, int64_t{7}));
  for (auto _ : state) {
    GrB_Index nvals = 0;
    BENCH_TRY(GrB_Scalar_nvals(&nvals, s));
    benchmark::DoNotOptimize(nvals);
  }
  GrB_free(&s);
}
BENCHMARK(BM_ScalarNvals);

void BM_ScalarClear(benchmark::State& state) {
  GrB_Scalar s = nullptr;
  BENCH_TRY(GrB_Scalar_new(&s, GrB_FP32));
  for (auto _ : state) {
    state.PauseTiming();
    BENCH_TRY(GrB_Scalar_setElement(s, 1.0f));
    state.ResumeTiming();
    BENCH_TRY(GrB_Scalar_clear(s));
  }
  GrB_free(&s);
}
BENCHMARK(BM_ScalarClear);

void BM_ScalarSetExtractUDT(benchmark::State& state) {
  struct Wide {
    double a[4];
  };
  GrB_Type t = nullptr;
  BENCH_TRY(GrB_Type_new(&t, sizeof(Wide)));
  GrB_Scalar s = nullptr;
  BENCH_TRY(GrB_Scalar_new(&s, t));
  Wide w{{1, 2, 3, 4}};
  for (auto _ : state) {
    BENCH_TRY(GrB_Scalar_setElement_UDT(s, &w, t));
    Wide out;
    BENCH_TRY(GrB_Scalar_extractElement_UDT(&out, t, s));
    benchmark::DoNotOptimize(out);
  }
  GrB_free(&s);
  GrB_free(&t);
}
BENCHMARK(BM_ScalarSetExtractUDT);

}  // namespace

GRB_BENCH_MAIN()
