// Experiment F1 (paper Figure 1 / §III): thread safety.
//  * Throughput of INDEPENDENT GraphBLAS calls issued from 1..8 threads:
//    a thread-safe library must not serialize them on shared state.
//  * The Figure 1 two-thread pipeline (share Esh via GrB_wait +
//    acquire/release flag) vs. running the same work sequentially.
#include <atomic>
#include <thread>

#include "bench/bench_util.hpp"

namespace {

constexpr int kScale = 9;
constexpr GrB_Index kEdgeFactor = 8;

double one_independent_op(uint64_t seed) {
  GrB_Matrix a = nullptr;
  grb::RmatParams params;
  params.seed = seed;
  BENCH_TRY(
      (GrB_Info)grb::rmat_matrix(&a, kScale, kEdgeFactor, params, nullptr));
  GrB_Matrix c = nullptr;
  GrB_Index n;
  BENCH_TRY(GrB_Matrix_nrows(&n, a));
  BENCH_TRY(GrB_Matrix_new(&c, GrB_FP64, n, n));
  BENCH_TRY(GrB_mxm(c, GrB_NULL, GrB_NULL, GrB_PLUS_TIMES_SEMIRING_FP64, a,
                    a, GrB_NULL));
  double sum = 0;
  BENCH_TRY(GrB_reduce(&sum, GrB_NULL, GrB_PLUS_MONOID_FP64, c, GrB_NULL));
  GrB_free(&a);
  GrB_free(&c);
  return sum;
}

void BM_IndependentCalls_Threads(benchmark::State& state) {
  const int nthreads = static_cast<int>(state.range(0));
  const int ops_per_thread = 4;
  for (auto _ : state) {
    std::vector<std::thread> threads;
    threads.reserve(nthreads);
    for (int t = 0; t < nthreads; ++t) {
      threads.emplace_back([t] {
        for (int k = 0; k < ops_per_thread; ++k) {
          benchmark::DoNotOptimize(one_independent_op(1000 + t * 31 + k));
        }
      });
    }
    for (auto& th : threads) th.join();
  }
  state.SetItemsProcessed(state.iterations() * nthreads * ops_per_thread);
  state.counters["threads"] = nthreads;
}
BENCHMARK(BM_IndependentCalls_Threads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// The Figure 1 pipeline: thread 0 builds Esh and hands it to thread 1.
void BM_Fig1_Pipeline(benchmark::State& state) {
  for (auto _ : state) {
    std::atomic<int> flag{0};
    GrB_Matrix esh = nullptr, hres = nullptr, dres = nullptr;
    std::thread t0([&] {
      GrB_Matrix a = nullptr, d = nullptr;
      grb::RmatParams pa, pd;
      pa.seed = 11;
      pd.seed = 22;
      BENCH_TRY((GrB_Info)grb::rmat_matrix(&a, kScale, kEdgeFactor, pa,
                                           nullptr));
      BENCH_TRY((GrB_Info)grb::rmat_matrix(&d, kScale, kEdgeFactor, pd,
                                           nullptr));
      GrB_Index n;
      BENCH_TRY(GrB_Matrix_nrows(&n, a));
      BENCH_TRY(GrB_Matrix_new(&esh, GrB_FP64, n, n));
      BENCH_TRY(GrB_Matrix_new(&dres, GrB_FP64, n, n));
      BENCH_TRY(GrB_mxm(esh, GrB_NULL, GrB_NULL,
                        GrB_PLUS_TIMES_SEMIRING_FP64, d, a, GrB_NULL));
      BENCH_TRY(GrB_wait(esh, GrB_COMPLETE));
      flag.store(1, std::memory_order_release);
      BENCH_TRY(GrB_mxm(dres, GrB_NULL, GrB_NULL,
                        GrB_PLUS_TIMES_SEMIRING_FP64, a, esh, GrB_NULL));
      BENCH_TRY(GrB_wait(dres, GrB_COMPLETE));
      GrB_free(&a);
      GrB_free(&d);
    });
    std::thread t1([&] {
      GrB_Matrix e = nullptr;
      grb::RmatParams pe;
      pe.seed = 33;
      BENCH_TRY((GrB_Info)grb::rmat_matrix(&e, kScale, kEdgeFactor, pe,
                                           nullptr));
      GrB_Index n;
      BENCH_TRY(GrB_Matrix_nrows(&n, e));
      // local computation overlaps with thread 0's production of Esh
      GrB_Matrix g = nullptr;
      BENCH_TRY(GrB_Matrix_new(&g, GrB_FP64, n, n));
      BENCH_TRY(GrB_mxm(g, GrB_NULL, GrB_NULL,
                        GrB_PLUS_TIMES_SEMIRING_FP64, e, e, GrB_NULL));
      BENCH_TRY(GrB_wait(g, GrB_COMPLETE));
      while (flag.load(std::memory_order_acquire) == 0) {
      }
      BENCH_TRY(GrB_Matrix_new(&hres, GrB_FP64, n, n));
      BENCH_TRY(GrB_mxm(hres, GrB_NULL, GrB_NULL,
                        GrB_PLUS_TIMES_SEMIRING_FP64, g, esh, GrB_NULL));
      BENCH_TRY(GrB_wait(hres, GrB_COMPLETE));
      GrB_free(&e);
      GrB_free(&g);
    });
    t0.join();
    t1.join();
    GrB_free(&esh);
    GrB_free(&hres);
    GrB_free(&dres);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Fig1_Pipeline)->UseRealTime()->Unit(benchmark::kMillisecond);

// The identical work on one thread, for the overlap comparison.
void BM_Fig1_Sequential(benchmark::State& state) {
  for (auto _ : state) {
    GrB_Matrix a = nullptr, d = nullptr, e = nullptr;
    grb::RmatParams pa, pd, pe;
    pa.seed = 11;
    pd.seed = 22;
    pe.seed = 33;
    BENCH_TRY((GrB_Info)grb::rmat_matrix(&a, kScale, kEdgeFactor, pa,
                                         nullptr));
    BENCH_TRY((GrB_Info)grb::rmat_matrix(&d, kScale, kEdgeFactor, pd,
                                         nullptr));
    BENCH_TRY((GrB_Info)grb::rmat_matrix(&e, kScale, kEdgeFactor, pe,
                                         nullptr));
    GrB_Index n;
    BENCH_TRY(GrB_Matrix_nrows(&n, a));
    GrB_Matrix esh = nullptr, g = nullptr, hres = nullptr, dres = nullptr;
    BENCH_TRY(GrB_Matrix_new(&esh, GrB_FP64, n, n));
    BENCH_TRY(GrB_Matrix_new(&g, GrB_FP64, n, n));
    BENCH_TRY(GrB_Matrix_new(&hres, GrB_FP64, n, n));
    BENCH_TRY(GrB_Matrix_new(&dres, GrB_FP64, n, n));
    BENCH_TRY(GrB_mxm(esh, GrB_NULL, GrB_NULL,
                      GrB_PLUS_TIMES_SEMIRING_FP64, d, a, GrB_NULL));
    BENCH_TRY(GrB_mxm(g, GrB_NULL, GrB_NULL, GrB_PLUS_TIMES_SEMIRING_FP64,
                      e, e, GrB_NULL));
    BENCH_TRY(GrB_mxm(dres, GrB_NULL, GrB_NULL,
                      GrB_PLUS_TIMES_SEMIRING_FP64, a, esh, GrB_NULL));
    BENCH_TRY(GrB_mxm(hres, GrB_NULL, GrB_NULL,
                      GrB_PLUS_TIMES_SEMIRING_FP64, g, esh, GrB_NULL));
    BENCH_TRY(GrB_wait(dres, GrB_COMPLETE));
    BENCH_TRY(GrB_wait(hres, GrB_COMPLETE));
    GrB_free(&a);
    GrB_free(&d);
    GrB_free(&e);
    GrB_free(&esh);
    GrB_free(&g);
    GrB_free(&hres);
    GrB_free(&dres);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Fig1_Sequential)->Unit(benchmark::kMillisecond);

// Cost of the completion primitive itself.
void BM_WaitComplete_NoPending(benchmark::State& state) {
  GrB_Matrix a = benchutil::rmat(10, 8);
  for (auto _ : state) {
    BENCH_TRY(GrB_wait(a, GrB_COMPLETE));
  }
  GrB_free(&a);
}
BENCHMARK(BM_WaitComplete_NoPending);

void BM_WaitMaterialize_NoPending(benchmark::State& state) {
  GrB_Matrix a = benchutil::rmat(10, 8);
  for (auto _ : state) {
    BENCH_TRY(GrB_wait(a, GrB_MATERIALIZE));
  }
  GrB_free(&a);
}
BENCHMARK(BM_WaitMaterialize_NoPending);

}  // namespace

GRB_BENCH_MAIN()
