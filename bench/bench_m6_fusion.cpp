// Experiment M6 (ablation, DESIGN.md §12): the deferred-op fusion
// planner vs. the eager one-method-one-pass execution on a
// PageRank-style iteration.
//
// Each iteration queues one sparse mxv followed by a chain of six
// elementwise self-maps (damping, teleport, clamp, renormalize) before
// the barrier.  Eagerly that is seven full passes over the rank vector —
// six of them allocate, traverse, and publish an intermediate that the
// next map immediately consumes.  The planner fuses the six maps into a
// single pass, so the fused leg does two passes per iteration.  A second
// pair of legs measures dead-write elimination: a chain whose first mxv
// is overwritten wholesale before anyone reads it, which the planner
// skips outright.
//
// Both legs of each pair run the same program with only the
// GxB_Fusion_set knob flipped; BENCH_m6_fusion.json captures the
// trajectory and tools/bench_compare.py diffs runs.  The fused legs
// report an ops_fused counter (sampled from fusion.ops_fused over one
// untimed iteration) so the JSON proves the planner actually engaged.
#include "bench/bench_util.hpp"

namespace {

struct FusionSet {
  int saved = 1;
  explicit FusionSet(bool on) {
    BENCH_TRY(GxB_Fusion_get(&saved));
    BENCH_TRY(GxB_Fusion_set(on ? 1 : 0));
  }
  ~FusionSet() { GxB_Fusion_set(saved); }
};

constexpr GrB_Index kN = GrB_Index(1) << 20;
constexpr GrB_Index kDegree = 4;

// Sparse column-stochastic-ish graph: kDegree random out-edges per row,
// weights scaled by 1/kDegree so iterated ranks neither explode nor
// underflow into denormals.
GrB_Matrix graph() {
  static GrB_Matrix a = [] {
    grb::Prng rng(601);
    GrB_Matrix m = nullptr;
    BENCH_TRY(GrB_Matrix_new(&m, GrB_FP64, kN, kN));
    for (GrB_Index i = 0; i < kN; ++i)
      for (GrB_Index e = 0; e < kDegree; ++e)
        BENCH_TRY(GrB_Matrix_setElement(
            m, (rng.uniform() + 0.5) / double(kDegree), i, rng.below(kN)));
    BENCH_TRY(GrB_wait(m, GrB_MATERIALIZE));
    return m;
  }();
  return a;
}

GrB_Vector ranks() {
  static GrB_Vector r = benchutil::dense_vector(kN, 602);
  return r;
}

// One PageRank-style step into r2: rank propagation then the damping /
// teleport / clamp / renormalize chain, drained by the barrier.
void pagerank_iteration(GrB_Matrix a, GrB_Vector r, GrB_Vector r2) {
  BENCH_TRY(GrB_mxv(r2, GrB_NULL, GrB_NULL, GrB_PLUS_TIMES_SEMIRING_FP64,
                    a, r, GrB_NULL));
  BENCH_TRY(GrB_apply(r2, GrB_NULL, GrB_NULL, GrB_TIMES_FP64, 0.85, r2,
                      GrB_NULL));
  BENCH_TRY(GrB_apply(r2, GrB_NULL, GrB_NULL, GrB_PLUS_FP64, r2,
                      0.15 / double(kN), GrB_NULL));
  BENCH_TRY(GrB_apply(r2, GrB_NULL, GrB_NULL, GrB_ABS_FP64, r2, GrB_NULL));
  BENCH_TRY(GrB_apply(r2, GrB_NULL, GrB_NULL, GrB_TIMES_FP64, 1.0625, r2,
                      GrB_NULL));
  BENCH_TRY(GrB_apply(r2, GrB_NULL, GrB_NULL, GrB_PLUS_FP64, r2, 1e-12,
                      GrB_NULL));
  BENCH_TRY(GrB_apply(r2, GrB_NULL, GrB_NULL, GrB_TIMES_FP64, 0.9995, r2,
                      GrB_NULL));
  BENCH_TRY(GrB_wait(r2, GrB_COMPLETE));
}

// Samples fusion.ops_fused across one untimed run of `step` so the
// fused legs can prove the planner engaged (0 on the eager legs).
template <class Step>
double sample_ops_fused(Step&& step) {
  BENCH_TRY(GxB_Stats_enable(1));
  BENCH_TRY(GxB_Stats_reset());
  step();
  uint64_t fused = 0;
  BENCH_TRY(GxB_Stats_get("fusion.ops_fused", &fused));
  BENCH_TRY(GxB_Stats_enable(0));
  BENCH_TRY(GxB_Stats_reset());
  return double(fused);
}

void run_pagerank(benchmark::State& state, bool fused) {
  FusionSet fusion(fused);
  GrB_Matrix a = graph();
  GrB_Vector r = ranks();
  GrB_Vector r2 = nullptr;
  BENCH_TRY(GrB_Vector_new(&r2, GrB_FP64, kN));
  auto step = [&] { pagerank_iteration(a, r, r2); };
  state.counters["ops_fused"] = sample_ops_fused(step);
  for (auto _ : state) step();
  state.SetItemsProcessed(state.iterations() * kN);
  GrB_free(&r2);
}

void BM_PageRank_Fused(benchmark::State& state) {
  run_pagerank(state, true);
}
void BM_PageRank_Eager(benchmark::State& state) {
  run_pagerank(state, false);
}
BENCHMARK(BM_PageRank_Fused)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PageRank_Eager)->Unit(benchmark::kMillisecond);

// Dead-write ablation: a speculative propagation is overwritten
// wholesale by the final one before the barrier.  The planner drops the
// first mxv (and its map) entirely; the eager leg pays for both.
void overwrite_chain(GrB_Matrix a, GrB_Vector r, GrB_Vector r2) {
  BENCH_TRY(GrB_mxv(r2, GrB_NULL, GrB_NULL, GrB_PLUS_TIMES_SEMIRING_FP64,
                    a, r, GrB_NULL));
  BENCH_TRY(GrB_apply(r2, GrB_NULL, GrB_NULL, GrB_TIMES_FP64, 0.85, r2,
                      GrB_NULL));
  BENCH_TRY(GrB_mxv(r2, GrB_NULL, GrB_NULL, GrB_PLUS_TIMES_SEMIRING_FP64,
                    a, r, GrB_DESC_T0));
  BENCH_TRY(GrB_apply(r2, GrB_NULL, GrB_NULL, GrB_TIMES_FP64, 0.85, r2,
                      GrB_NULL));
  BENCH_TRY(GrB_wait(r2, GrB_COMPLETE));
}

void run_overwrite(benchmark::State& state, bool fused) {
  FusionSet fusion(fused);
  GrB_Matrix a = graph();
  GrB_Vector r = ranks();
  GrB_Vector r2 = nullptr;
  BENCH_TRY(GrB_Vector_new(&r2, GrB_FP64, kN));
  auto step = [&] { overwrite_chain(a, r, r2); };
  state.counters["ops_fused"] = sample_ops_fused(step);
  for (auto _ : state) step();
  state.SetItemsProcessed(state.iterations() * kN);
  GrB_free(&r2);
}

void BM_Overwrite_Fused(benchmark::State& state) {
  run_overwrite(state, true);
}
void BM_Overwrite_Eager(benchmark::State& state) {
  run_overwrite(state, false);
}
BENCHMARK(BM_Overwrite_Fused)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Overwrite_Eager)->Unit(benchmark::kMillisecond);

}  // namespace

GRB_BENCH_MAIN()
