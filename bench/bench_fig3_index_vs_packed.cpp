// Experiment F3 (paper Figure 3 + Motivation §II): the GraphBLAS 2.0
// index-aware operations against the GraphBLAS 1.X workarounds.
//
// Task: keep the strictly-upper-triangular entries whose value exceeds s
// (the paper's Figure 3 select), and separately: replace every stored
// value with its row index (the paper's Figure 3 apply).
//
// Contenders:
//   * GrB20_select           — GrB_select + index-unary op (this paper);
//   * GrB1X_packed           — indices duplicated into a UDT value
//                              {val, i, j} (2x-3x storage/bandwidth) and
//                              filtered with user-defined operators via a
//                              computed mask (the §II anti-pattern);
//   * GrB1X_tuples           — extractTuples -> host-side filter ->
//                              build (the other 1.X workaround).
#include "bench/bench_util.hpp"

namespace {

struct Packed {
  double val;
  int64_t i, j;
};

GrB_Type packed_type() {
  static GrB_Type t = [] {
    GrB_Type out = nullptr;
    BENCH_TRY(GrB_Type_new(&out, sizeof(Packed)));
    return out;
  }();
  return t;
}

// Builds the packed-value twin of `a` (the 1.X index-in-values layout).
GrB_Matrix packed_twin(GrB_Matrix a) {
  GrB_Index n, nnz;
  BENCH_TRY(GrB_Matrix_nrows(&n, a));
  BENCH_TRY(GrB_Matrix_nvals(&nnz, a));
  std::vector<GrB_Index> ri(nnz), ci(nnz);
  std::vector<double> vals(nnz);
  GrB_Index got = nnz;
  BENCH_TRY(GrB_Matrix_extractTuples(ri.data(), ci.data(), vals.data(),
                                     &got, a));
  std::vector<Packed> packed(nnz);
  for (GrB_Index k = 0; k < nnz; ++k) {
    packed[k] = {vals[k], static_cast<int64_t>(ri[k]),
                 static_cast<int64_t>(ci[k])};
  }
  GrB_Matrix p = nullptr;
  BENCH_TRY(GrB_Matrix_new(&p, packed_type(), n, n));
  BENCH_TRY(GrB_Matrix_build_UDT(p, ri.data(), ci.data(), packed.data(),
                                 nnz, GrB_NULL, packed_type()));
  BENCH_TRY(GrB_wait(p, GrB_MATERIALIZE));
  return p;
}

// 1.X user-defined unary op: unpack indices from the value and test.
void packed_triu_gt(void* z, const void* x) {
  Packed p;
  std::memcpy(&p, x, sizeof(Packed));
  bool keep = p.j > p.i && p.val > 0.5;
  std::memcpy(z, &keep, sizeof(bool));
}

// 2.0 user-defined index-unary op: the same predicate, indices provided.
void idx_triu_gt(void* z, const void* x, GrB_Index* ind, GrB_Index,
                 const void* s) {
  double v, sv;
  std::memcpy(&v, x, 8);
  std::memcpy(&sv, s, 8);
  bool keep = ind[1] > ind[0] && v > sv;
  std::memcpy(z, &keep, sizeof(bool));
}

// --- select task -------------------------------------------------------------

void BM_Select_GrB20_UserIndexOp(benchmark::State& state) {
  GrB_Matrix a = benchutil::rmat(static_cast<int>(state.range(0)), 8);
  GrB_Index n, nnz;
  BENCH_TRY(GrB_Matrix_nrows(&n, a));
  BENCH_TRY(GrB_Matrix_nvals(&nnz, a));
  GrB_IndexUnaryOp op = nullptr;
  BENCH_TRY(GrB_IndexUnaryOp_new(&op, &idx_triu_gt, GrB_BOOL, GrB_FP64,
                                 GrB_FP64));
  GrB_Matrix c = nullptr;
  BENCH_TRY(GrB_Matrix_new(&c, GrB_FP64, n, n));
  for (auto _ : state) {
    BENCH_TRY(GrB_select(c, GrB_NULL, GrB_NULL, op, a, 0.5, GrB_NULL));
    BENCH_TRY(GrB_wait(c, GrB_COMPLETE));
  }
  state.SetItemsProcessed(state.iterations() * nnz);
  state.counters["value_bytes"] = static_cast<double>(nnz * 8);
  GrB_free(&a);
  GrB_free(&c);
  GrB_free(&op);
}
BENCHMARK(BM_Select_GrB20_UserIndexOp)->Arg(10)->Arg(13)->Arg(16);

void BM_Select_GrB20_PredefinedOps(benchmark::State& state) {
  // Same effect composed from the predefined ops (no user function at
  // all): TRIU(s=1) then VALUEGT.
  GrB_Matrix a = benchutil::rmat(static_cast<int>(state.range(0)), 8);
  GrB_Index n, nnz;
  BENCH_TRY(GrB_Matrix_nrows(&n, a));
  BENCH_TRY(GrB_Matrix_nvals(&nnz, a));
  GrB_Matrix c = nullptr;
  BENCH_TRY(GrB_Matrix_new(&c, GrB_FP64, n, n));
  for (auto _ : state) {
    BENCH_TRY(GrB_select(c, GrB_NULL, GrB_NULL, GrB_TRIU, a, int64_t{1},
                         GrB_NULL));
    BENCH_TRY(GrB_select(c, GrB_NULL, GrB_NULL, GrB_VALUEGT_FP64, c, 0.5,
                         GrB_NULL));
    BENCH_TRY(GrB_wait(c, GrB_COMPLETE));
  }
  state.SetItemsProcessed(state.iterations() * nnz);
  GrB_free(&a);
  GrB_free(&c);
}
BENCHMARK(BM_Select_GrB20_PredefinedOps)->Arg(10)->Arg(13)->Arg(16);

void BM_Select_GrB1X_PackedValues(benchmark::State& state) {
  // 1.X anti-pattern: indices live in the values.  The pipeline streams
  // the 24-byte packed values once to compute a bool mask (user unary
  // op, function pointer per scalar) and once more through the masked
  // identity apply that materializes the survivors.
  GrB_Matrix a = benchutil::rmat(static_cast<int>(state.range(0)), 8);
  GrB_Matrix p = packed_twin(a);
  GrB_Index n, nnz;
  BENCH_TRY(GrB_Matrix_nrows(&n, a));
  BENCH_TRY(GrB_Matrix_nvals(&nnz, a));
  GrB_UnaryOp unpack = nullptr;
  BENCH_TRY(GrB_UnaryOp_new(&unpack, &packed_triu_gt, GrB_BOOL,
                            packed_type()));
  GrB_UnaryOp ident = nullptr;
  BENCH_TRY(GrB_UnaryOp_new(
      &ident,
      [](void* z, const void* x) { std::memcpy(z, x, sizeof(Packed)); },
      packed_type(), packed_type()));
  GrB_Matrix mask = nullptr, c = nullptr;
  BENCH_TRY(GrB_Matrix_new(&mask, GrB_BOOL, n, n));
  BENCH_TRY(GrB_Matrix_new(&c, packed_type(), n, n));
  for (auto _ : state) {
    BENCH_TRY(GrB_apply(mask, GrB_NULL, GrB_NULL, unpack, p, GrB_NULL));
    BENCH_TRY(GrB_apply(c, mask, GrB_NULL, ident, p, GrB_DESC_R));
    BENCH_TRY(GrB_wait(c, GrB_COMPLETE));
  }
  state.SetItemsProcessed(state.iterations() * nnz);
  state.counters["value_bytes"] =
      static_cast<double>(nnz * sizeof(Packed));  // 3x the 2.0 stream
  GrB_free(&a);
  GrB_free(&p);
  GrB_free(&mask);
  GrB_free(&c);
  GrB_free(&unpack);
  GrB_free(&ident);
}
BENCHMARK(BM_Select_GrB1X_PackedValues)->Arg(10)->Arg(13)->Arg(16);

void BM_Select_GrB1X_ExtractTuples(benchmark::State& state) {
  // The other 1.X workaround: pull everything out, filter on the host,
  // build a fresh matrix.
  GrB_Matrix a = benchutil::rmat(static_cast<int>(state.range(0)), 8);
  GrB_Index n, nnz;
  BENCH_TRY(GrB_Matrix_nrows(&n, a));
  BENCH_TRY(GrB_Matrix_nvals(&nnz, a));
  std::vector<GrB_Index> ri(nnz), ci(nnz), ro, co;
  std::vector<double> vals(nnz), vo;
  for (auto _ : state) {
    GrB_Index got = nnz;
    BENCH_TRY(GrB_Matrix_extractTuples(ri.data(), ci.data(), vals.data(),
                                       &got, a));
    ro.clear();
    co.clear();
    vo.clear();
    for (GrB_Index k = 0; k < got; ++k) {
      if (ci[k] > ri[k] && vals[k] > 0.5) {
        ro.push_back(ri[k]);
        co.push_back(ci[k]);
        vo.push_back(vals[k]);
      }
    }
    GrB_Matrix c = nullptr;
    BENCH_TRY(GrB_Matrix_new(&c, GrB_FP64, n, n));
    BENCH_TRY(GrB_Matrix_build(c, ro.data(), co.data(), vo.data(),
                               ro.size(), GrB_NULL));
    BENCH_TRY(GrB_wait(c, GrB_COMPLETE));
    GrB_free(&c);
  }
  state.SetItemsProcessed(state.iterations() * nnz);
  GrB_free(&a);
}
BENCHMARK(BM_Select_GrB1X_ExtractTuples)->Arg(10)->Arg(13)->Arg(16);

// --- apply task (replace values with row index) -------------------------------

void BM_ApplyIndex_GrB20(benchmark::State& state) {
  GrB_Matrix a = benchutil::rmat(static_cast<int>(state.range(0)), 8);
  GrB_Index n, nnz;
  BENCH_TRY(GrB_Matrix_nrows(&n, a));
  BENCH_TRY(GrB_Matrix_nvals(&nnz, a));
  GrB_Matrix c = nullptr;
  BENCH_TRY(GrB_Matrix_new(&c, GrB_INT64, n, n));
  for (auto _ : state) {
    BENCH_TRY(GrB_apply(c, GrB_NULL, GrB_NULL, GrB_ROWINDEX_INT64, a,
                        int64_t{0}, GrB_NULL));
    BENCH_TRY(GrB_wait(c, GrB_COMPLETE));
  }
  state.SetItemsProcessed(state.iterations() * nnz);
  GrB_free(&a);
  GrB_free(&c);
}
BENCHMARK(BM_ApplyIndex_GrB20)->Arg(10)->Arg(13)->Arg(16);

void BM_ApplyIndex_GrB1X_Packed(benchmark::State& state) {
  // 1.X: the row index is already packed inside the value; a user-defined
  // unary op unpacks it — at 3x the bandwidth plus a call per scalar.
  GrB_Matrix a = benchutil::rmat(static_cast<int>(state.range(0)), 8);
  GrB_Matrix p = packed_twin(a);
  GrB_Index n, nnz;
  BENCH_TRY(GrB_Matrix_nrows(&n, a));
  BENCH_TRY(GrB_Matrix_nvals(&nnz, a));
  GrB_UnaryOp unpack_row = nullptr;
  BENCH_TRY(GrB_UnaryOp_new(
      &unpack_row,
      [](void* z, const void* x) {
        Packed pk;
        std::memcpy(&pk, x, sizeof(Packed));
        std::memcpy(z, &pk.i, sizeof(int64_t));
      },
      GrB_INT64, packed_type()));
  GrB_Matrix c = nullptr;
  BENCH_TRY(GrB_Matrix_new(&c, GrB_INT64, n, n));
  for (auto _ : state) {
    BENCH_TRY(GrB_apply(c, GrB_NULL, GrB_NULL, unpack_row, p, GrB_NULL));
    BENCH_TRY(GrB_wait(c, GrB_COMPLETE));
  }
  state.SetItemsProcessed(state.iterations() * nnz);
  GrB_free(&a);
  GrB_free(&p);
  GrB_free(&c);
  GrB_free(&unpack_row);
}
BENCHMARK(BM_ApplyIndex_GrB1X_Packed)->Arg(10)->Arg(13)->Arg(16);

void BM_ApplyIndex_GrB1X_ExtractTuples(benchmark::State& state) {
  GrB_Matrix a = benchutil::rmat(static_cast<int>(state.range(0)), 8);
  GrB_Index n, nnz;
  BENCH_TRY(GrB_Matrix_nrows(&n, a));
  BENCH_TRY(GrB_Matrix_nvals(&nnz, a));
  std::vector<GrB_Index> ri(nnz), ci(nnz);
  std::vector<int64_t> vo(nnz);
  for (auto _ : state) {
    GrB_Index got = nnz;
    BENCH_TRY(GrB_Matrix_extractTuples(ri.data(), ci.data(),
                                       static_cast<double*>(nullptr), &got,
                                       a));
    for (GrB_Index k = 0; k < got; ++k)
      vo[k] = static_cast<int64_t>(ri[k]);
    GrB_Matrix c = nullptr;
    BENCH_TRY(GrB_Matrix_new(&c, GrB_INT64, n, n));
    BENCH_TRY(GrB_Matrix_build(c, ri.data(), ci.data(), vo.data(), got,
                               GrB_NULL));
    BENCH_TRY(GrB_wait(c, GrB_COMPLETE));
    GrB_free(&c);
  }
  state.SetItemsProcessed(state.iterations() * nnz);
  GrB_free(&a);
}
BENCHMARK(BM_ApplyIndex_GrB1X_ExtractTuples)->Arg(10)->Arg(13)->Arg(16);

}  // namespace

GRB_BENCH_MAIN()
