// Experiment M1 (§II/§III/§V): what nonblocking mode buys.
//  * Bulk element ingest: k setElement calls then one wait (nonblocking,
//    O(1) pending tuples + one fold) vs. a blocking context (each call
//    folds immediately, O(k * nnz) total).
//  * GrB_wait(COMPLETE) vs GrB_wait(MATERIALIZE) cost.
#include "bench/bench_util.hpp"

namespace {

void run_ingest(benchmark::State& state, bool blocking) {
  const GrB_Index k = GrB_Index{1} << state.range(0);
  const GrB_Index n = 1 << 20;
  GrB_Context ctx = nullptr;
  BENCH_TRY(GrB_Context_new(&ctx, blocking ? GrB_BLOCKING : GrB_NONBLOCKING,
                            GrB_NULL, GrB_NULL));
  grb::Prng rng(99);
  std::vector<GrB_Index> is(k), js(k);
  for (GrB_Index e = 0; e < k; ++e) {
    is[e] = rng.below(n);
    js[e] = rng.below(n);
  }
  for (auto _ : state) {
    GrB_Matrix a = nullptr;
    BENCH_TRY(GrB_Matrix_new(&a, GrB_FP64, n, n, ctx));
    for (GrB_Index e = 0; e < k; ++e) {
      BENCH_TRY(GrB_Matrix_setElement(a, 1.0, is[e], js[e]));
    }
    BENCH_TRY(GrB_wait(a, GrB_MATERIALIZE));
    GrB_free(&a);
  }
  state.SetItemsProcessed(state.iterations() * k);
  state.counters["blocking"] = blocking ? 1 : 0;
  GrB_free(&ctx);
}

void BM_Ingest_Nonblocking(benchmark::State& state) {
  run_ingest(state, false);
}
void BM_Ingest_Blocking(benchmark::State& state) { run_ingest(state, true); }
// Blocking ingest is quadratic: keep its sweep small.
BENCHMARK(BM_Ingest_Nonblocking)->Arg(8)->Arg(10)->Arg(12)->Arg(14);
BENCHMARK(BM_Ingest_Blocking)->Arg(8)->Arg(10);

void BM_WaitVariants(benchmark::State& state) {
  // COMPLETE vs MATERIALIZE on a freshly deferred op (arg 0/1).
  const bool materialize = state.range(0) == 1;
  GrB_Matrix a = benchutil::rmat(11, 8);
  GrB_Index n;
  BENCH_TRY(GrB_Matrix_nrows(&n, a));
  GrB_Matrix c = nullptr;
  BENCH_TRY(GrB_Matrix_new(&c, GrB_FP64, n, n));
  for (auto _ : state) {
    BENCH_TRY(GrB_apply(c, GrB_NULL, GrB_NULL, GrB_AINV_FP64, a, GrB_NULL));
    BENCH_TRY(GrB_wait(c, materialize ? GrB_MATERIALIZE : GrB_COMPLETE));
  }
  state.counters["materialize"] = materialize ? 1 : 0;
  GrB_free(&a);
  GrB_free(&c);
}
BENCHMARK(BM_WaitVariants)->Arg(0)->Arg(1);

void BM_DeferredChainThenWait(benchmark::State& state) {
  // Issue a chain of L deferred ops, then one wait: issue cost is O(L),
  // execution happens once at the wait.
  const int chain = static_cast<int>(state.range(0));
  GrB_Matrix a = benchutil::rmat(10, 8);
  GrB_Index n, nnz;
  BENCH_TRY(GrB_Matrix_nrows(&n, a));
  BENCH_TRY(GrB_Matrix_nvals(&nnz, a));
  GrB_Matrix x = nullptr;
  BENCH_TRY(GrB_Matrix_new(&x, GrB_FP64, n, n));
  for (auto _ : state) {
    BENCH_TRY(GrB_apply(x, GrB_NULL, GrB_NULL, GrB_IDENTITY_FP64, a,
                        GrB_NULL));
    for (int l = 1; l < chain; ++l) {
      BENCH_TRY(GrB_apply(x, GrB_NULL, GrB_NULL, GrB_AINV_FP64, x,
                          GrB_NULL));
    }
    BENCH_TRY(GrB_wait(x, GrB_COMPLETE));
  }
  state.SetItemsProcessed(state.iterations() * chain * nnz);
  GrB_free(&a);
  GrB_free(&x);
}
BENCHMARK(BM_DeferredChainThenWait)->Arg(1)->Arg(4)->Arg(16);

void BM_RemoveElementBurst(benchmark::State& state) {
  // Deletions ride the same pending-tuple machinery.
  GrB_Matrix base = benchutil::rmat(12, 8);
  GrB_Index n, nnz;
  BENCH_TRY(GrB_Matrix_nrows(&n, base));
  BENCH_TRY(GrB_Matrix_nvals(&nnz, base));
  std::vector<GrB_Index> ri(nnz), ci(nnz);
  GrB_Index got = nnz;
  BENCH_TRY(GrB_Matrix_extractTuples(ri.data(), ci.data(),
                                     static_cast<double*>(nullptr), &got,
                                     base));
  for (auto _ : state) {
    state.PauseTiming();
    GrB_Matrix a = nullptr;
    BENCH_TRY(GrB_Matrix_dup(&a, base));
    state.ResumeTiming();
    for (GrB_Index k = 0; k < got; k += 2) {
      BENCH_TRY(GrB_Matrix_removeElement(a, ri[k], ci[k]));
    }
    BENCH_TRY(GrB_wait(a, GrB_COMPLETE));
    state.PauseTiming();
    GrB_free(&a);
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations() * (got / 2));
  GrB_free(&base);
}
BENCHMARK(BM_RemoveElementBurst);

}  // namespace

GRB_BENCH_MAIN()
