// Experiment M4 (ablation, DESIGN.md): masked dot-product mxm vs.
// Gustavson-then-mask on the triangle-counting pattern C<L,struct>=L*L'.
// The masked strategy's work is proportional to nnz(mask), so it wins as
// the mask gets sparser relative to the full product.
#include "bench/bench_util.hpp"

#include "ops/mxm.hpp"

namespace {

struct StrategyGuard {
  explicit StrategyGuard(grb::MxmStrategy s) { grb::set_mxm_strategy(s); }
  ~StrategyGuard() { grb::set_mxm_strategy(grb::MxmStrategy::kAuto); }
};

GrB_Matrix lower_triangle(int scale) {
  GrB_Matrix g = benchutil::rmat(scale, 8, /*symmetrize=*/true);
  GrB_Index n;
  BENCH_TRY(GrB_Matrix_nrows(&n, g));
  GrB_Matrix l = nullptr;
  BENCH_TRY(GrB_Matrix_new(&l, GrB_FP64, n, n));
  BENCH_TRY(GrB_select(l, GrB_NULL, GrB_NULL, GrB_TRIL, g, int64_t{-1},
                       GrB_NULL));
  BENCH_TRY(GrB_wait(l, GrB_MATERIALIZE));
  GrB_free(&g);
  return l;
}

void run_tc_mxm(benchmark::State& state, grb::MxmStrategy strategy) {
  StrategyGuard guard(strategy);
  GrB_Matrix l = lower_triangle(static_cast<int>(state.range(0)));
  GrB_Index n, nnz;
  BENCH_TRY(GrB_Matrix_nrows(&n, l));
  BENCH_TRY(GrB_Matrix_nvals(&nnz, l));
  GrB_Matrix c = nullptr;
  BENCH_TRY(GrB_Matrix_new(&c, GrB_FP64, n, n));
  for (auto _ : state) {
    BENCH_TRY(GrB_mxm(c, l, GrB_NULL, GrB_PLUS_TIMES_SEMIRING_FP64, l, l,
                      GrB_DESC_RST1));
    BENCH_TRY(GrB_wait(c, GrB_COMPLETE));
  }
  state.SetItemsProcessed(state.iterations() * nnz);
  GrB_free(&l);
  GrB_free(&c);
}

void BM_TcMxm_Gustavson(benchmark::State& state) {
  run_tc_mxm(state, grb::MxmStrategy::kGustavson);
}
void BM_TcMxm_MaskedDot(benchmark::State& state) {
  run_tc_mxm(state, grb::MxmStrategy::kMaskedDot);
}
void BM_TcMxm_Auto(benchmark::State& state) {
  run_tc_mxm(state, grb::MxmStrategy::kAuto);
}
BENCHMARK(BM_TcMxm_Gustavson)->Arg(9)->Arg(11)->Arg(12)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_TcMxm_MaskedDot)->Arg(9)->Arg(11)->Arg(12)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_TcMxm_Auto)->Arg(9)->Arg(11)->Arg(12)->Unit(benchmark::kMillisecond);

// Sparse point-query mask: the extreme case masked-dot exists for.
void run_point_mask(benchmark::State& state, grb::MxmStrategy strategy) {
  StrategyGuard guard(strategy);
  GrB_Matrix a = benchutil::rmat(static_cast<int>(state.range(0)), 8);
  GrB_Index n;
  BENCH_TRY(GrB_Matrix_nrows(&n, a));
  // Mask with one entry per row: "what is C(i, pi(i))?"
  GrB_Matrix m = nullptr;
  BENCH_TRY(GrB_Matrix_new(&m, GrB_BOOL, n, n));
  grb::Prng rng(5);
  for (GrB_Index i = 0; i < n; ++i)
    BENCH_TRY(GrB_Matrix_setElement(m, true, i, rng.below(n)));
  BENCH_TRY(GrB_wait(m, GrB_MATERIALIZE));
  GrB_Matrix c = nullptr;
  BENCH_TRY(GrB_Matrix_new(&c, GrB_FP64, n, n));
  for (auto _ : state) {
    BENCH_TRY(GrB_mxm(c, m, GrB_NULL, GrB_PLUS_TIMES_SEMIRING_FP64, a, a,
                      GrB_DESC_RS));
    BENCH_TRY(GrB_wait(c, GrB_COMPLETE));
  }
  state.SetItemsProcessed(state.iterations() * n);
  GrB_free(&a);
  GrB_free(&m);
  GrB_free(&c);
}

void BM_PointMaskMxm_Gustavson(benchmark::State& state) {
  run_point_mask(state, grb::MxmStrategy::kGustavson);
}
void BM_PointMaskMxm_MaskedDot(benchmark::State& state) {
  run_point_mask(state, grb::MxmStrategy::kMaskedDot);
}
void BM_PointMaskMxm_Auto(benchmark::State& state) {
  run_point_mask(state, grb::MxmStrategy::kAuto);
}
BENCHMARK(BM_PointMaskMxm_Gustavson)->Arg(10)->Arg(12)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PointMaskMxm_MaskedDot)->Arg(10)->Arg(12)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PointMaskMxm_Auto)->Arg(10)->Arg(12)->Unit(benchmark::kMillisecond);

}  // namespace

GRB_BENCH_MAIN()
