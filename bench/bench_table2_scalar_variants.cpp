// Experiment T2 (paper Table II / §VI): GrB_Scalar variants of methods
// vs their typed counterparts.  The claims measured:
//  * scalar variants cost about the same as typed ones (uniformity is
//    free);
//  * the GrB_Scalar reduce can defer (joining a sequence) while the
//    typed reduce must execute immediately — visible when the caller
//    never consumes the result.
#include "bench/bench_util.hpp"

namespace {

void BM_SetElement_Typed(benchmark::State& state) {
  const GrB_Index n = 1 << 16;
  GrB_Vector v = nullptr;
  BENCH_TRY(GrB_Vector_new(&v, GrB_FP64, n));
  GrB_Index i = 0;
  int pending = 0;
  for (auto _ : state) {
    BENCH_TRY(GrB_Vector_setElement(v, 1.5, i));
    i = (i + 7919) % n;
    if (++pending == 4096) {  // amortized fold, bulk-ingest pattern
      BENCH_TRY(GrB_wait(v, GrB_COMPLETE));
      pending = 0;
    }
  }
  GrB_free(&v);
}
BENCHMARK(BM_SetElement_Typed);

void BM_SetElement_ScalarVariant(benchmark::State& state) {
  const GrB_Index n = 1 << 16;
  GrB_Vector v = nullptr;
  BENCH_TRY(GrB_Vector_new(&v, GrB_FP64, n));
  GrB_Scalar s = nullptr;
  BENCH_TRY(GrB_Scalar_new(&s, GrB_FP64));
  BENCH_TRY(GrB_Scalar_setElement(s, 1.5));
  GrB_Index i = 0;
  int pending = 0;
  for (auto _ : state) {
    BENCH_TRY(GrB_Vector_setElement(v, s, i));
    i = (i + 7919) % n;
    if (++pending == 4096) {
      BENCH_TRY(GrB_wait(v, GrB_COMPLETE));
      pending = 0;
    }
  }
  GrB_free(&v);
  GrB_free(&s);
}
BENCHMARK(BM_SetElement_ScalarVariant);

void BM_ExtractElement_Typed(benchmark::State& state) {
  GrB_Matrix a = benchutil::rmat(12, 8);
  GrB_Index n;
  BENCH_TRY(GrB_Matrix_nrows(&n, a));
  grb::Prng rng(1);
  for (auto _ : state) {
    double out = 0;
    GrB_Index i = rng.below(n), j = rng.below(n);
    GrB_Info info = GrB_Matrix_extractElement(&out, a, i, j);
    benchmark::DoNotOptimize(info);  // often GrB_NO_VALUE: caller branches
  }
  GrB_free(&a);
}
BENCHMARK(BM_ExtractElement_Typed);

void BM_ExtractElement_ScalarVariant(benchmark::State& state) {
  GrB_Matrix a = benchutil::rmat(12, 8);
  GrB_Index n;
  BENCH_TRY(GrB_Matrix_nrows(&n, a));
  GrB_Scalar s = nullptr;
  BENCH_TRY(GrB_Scalar_new(&s, GrB_FP64));
  grb::Prng rng(1);
  for (auto _ : state) {
    GrB_Index i = rng.below(n), j = rng.below(n);
    BENCH_TRY(GrB_Matrix_extractElement(s, a, i, j));  // always SUCCESS
  }
  GrB_free(&a);
  GrB_free(&s);
}
BENCHMARK(BM_ExtractElement_ScalarVariant);

void BM_Reduce_TypedImmediate(benchmark::State& state) {
  GrB_Matrix a = benchutil::rmat(static_cast<int>(state.range(0)), 8);
  for (auto _ : state) {
    double sum = 0;
    BENCH_TRY(GrB_reduce(&sum, GrB_NULL, GrB_PLUS_MONOID_FP64, a,
                         GrB_NULL));
    benchmark::DoNotOptimize(sum);
  }
  GrB_Index nv;
  BENCH_TRY(GrB_Matrix_nvals(&nv, a));
  state.SetItemsProcessed(state.iterations() * nv);
  GrB_free(&a);
}
BENCHMARK(BM_Reduce_TypedImmediate)->Arg(10)->Arg(13)->Arg(16);

void BM_Reduce_ScalarIssueLatency(benchmark::State& state) {
  // The scalar-output reduce only ENQUEUES in nonblocking mode; the
  // timed region measures issue latency for a burst of 64 reduces while
  // the deferred execution happens outside the timer.  This is the
  // deferral §VI enables and the typed variant cannot have.
  GrB_Matrix a = benchutil::rmat(static_cast<int>(state.range(0)), 8);
  GrB_Scalar s = nullptr;
  BENCH_TRY(GrB_Scalar_new(&s, GrB_FP64));
  for (auto _ : state) {
    for (int k = 0; k < 64; ++k) {
      BENCH_TRY(GrB_reduce(s, GrB_NULL, GrB_PLUS_MONOID_FP64, a,
                           GrB_NULL));
    }
    state.PauseTiming();
    BENCH_TRY(GrB_wait(s, GrB_MATERIALIZE));
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations() * 64);
  GrB_free(&a);
  GrB_free(&s);
}
BENCHMARK(BM_Reduce_ScalarIssueLatency)
    ->Arg(10)
    ->Arg(13)
    ->Arg(16)
    ->Iterations(50);  // pin: the untimed materialize dominates otherwise

void BM_Reduce_ScalarMaterialized(benchmark::State& state) {
  // Same scalar-output reduce but consumed each iteration: comparable to
  // the typed variant (uniformity costs nothing once work is forced).
  GrB_Matrix a = benchutil::rmat(static_cast<int>(state.range(0)), 8);
  GrB_Scalar s = nullptr;
  BENCH_TRY(GrB_Scalar_new(&s, GrB_FP64));
  for (auto _ : state) {
    BENCH_TRY(GrB_reduce(s, GrB_NULL, GrB_PLUS_MONOID_FP64, a, GrB_NULL));
    double out = 0;
    BENCH_TRY(GrB_Scalar_extractElement(&out, s));
    benchmark::DoNotOptimize(out);
  }
  GrB_Index nv;
  BENCH_TRY(GrB_Matrix_nvals(&nv, a));
  state.SetItemsProcessed(state.iterations() * nv);
  GrB_free(&a);
  GrB_free(&s);
}
BENCHMARK(BM_Reduce_ScalarMaterialized)->Arg(10)->Arg(13)->Arg(16);

void BM_AssignScalar_Typed(benchmark::State& state) {
  const GrB_Index n = 1 << 14;
  GrB_Vector w = nullptr;
  BENCH_TRY(GrB_Vector_new(&w, GrB_FP64, n));
  for (auto _ : state) {
    BENCH_TRY(GrB_assign(w, GrB_NULL, GrB_NULL, 2.0, GrB_ALL, n, GrB_NULL));
    BENCH_TRY(GrB_wait(w, GrB_COMPLETE));
  }
  state.SetItemsProcessed(state.iterations() * n);
  GrB_free(&w);
}
BENCHMARK(BM_AssignScalar_Typed);

void BM_AssignScalar_ScalarVariant(benchmark::State& state) {
  const GrB_Index n = 1 << 14;
  GrB_Vector w = nullptr;
  BENCH_TRY(GrB_Vector_new(&w, GrB_FP64, n));
  GrB_Scalar s = nullptr;
  BENCH_TRY(GrB_Scalar_new(&s, GrB_FP64));
  BENCH_TRY(GrB_Scalar_setElement(s, 2.0));
  for (auto _ : state) {
    BENCH_TRY(GrB_assign(w, GrB_NULL, GrB_NULL, s, GrB_ALL, n, GrB_NULL));
    BENCH_TRY(GrB_wait(w, GrB_COMPLETE));
  }
  state.SetItemsProcessed(state.iterations() * n);
  GrB_free(&w);
  GrB_free(&s);
}
BENCHMARK(BM_AssignScalar_ScalarVariant);

}  // namespace

GRB_BENCH_MAIN()
