// Experiment M5 (ablation, DESIGN.md): the adaptive two-phase SpGEMM
// engine vs. the original two-pass dense-SPA kernel (pinned via
// SpgemmMode::kReference) on three workload shapes:
//
//   Uniform      — square ER-like squaring, modest ncols: every row's
//                  flop count justifies the dense accumulator, so this
//                  guards the "auto must not regress the easy case"
//                  bound.
//   Skewed       — A has R-MAT power-law out-degrees (per-row flop
//                  counts vary by orders of magnitude), B is sparse and
//                  wide (2^21 columns).  The reference kernel expands
//                  every row twice through an O(ncols) SPA it re-zeroes
//                  each call and scatters into across 18 MB; the
//                  adaptive engine sizes a hash accumulator per row.
//   Hypersparse  — ncols = 2^24 with ~50K entries in B (ncols >> nvals):
//                  the reference kernel's per-call O(ncols) scratch
//                  (~150 MB, zeroed) dwarfs the real work; the byte
//                  budget pushes every row onto the hash path.
//
// A² on power-law graphs is deliberately absent from the skewed leg:
// its output fill-in (~60M entries at scale 15) makes writeback dominate
// every mode equally, hiding the accumulator ablation this experiment
// exists to measure.  Each shape runs one leg per engine mode so
// BENCH_m5_spgemm_adaptive.json captures the ablation;
// tools/bench_compare.py diffs two runs.
#include "bench/bench_util.hpp"

#include "ops/spgemm.hpp"

namespace {

struct ModeGuard {
  explicit ModeGuard(grb::SpgemmMode m) { grb::set_spgemm_mode(m); }
  ~ModeGuard() { grb::set_spgemm_mode(grb::SpgemmMode::kAuto); }
};

// n x n with exactly entries_per_row uniform-random columns per row.
GrB_Matrix uniform_matrix(GrB_Index nrows, GrB_Index ncols,
                          GrB_Index entries_per_row, uint64_t seed) {
  grb::Prng rng(seed);
  GrB_Matrix a = nullptr;
  BENCH_TRY(GrB_Matrix_new(&a, GrB_FP64, nrows, ncols));
  for (GrB_Index i = 0; i < nrows; ++i)
    for (GrB_Index e = 0; e < entries_per_row; ++e)
      BENCH_TRY(GrB_Matrix_setElement(a, rng.uniform() + 0.5, i,
                                      rng.below(ncols)));
  BENCH_TRY(GrB_wait(a, GrB_MATERIALIZE));
  return a;
}

GrB_Matrix scatter_matrix(GrB_Index nrows, GrB_Index ncols, GrB_Index nnz,
                          uint64_t seed) {
  grb::Prng rng(seed);
  GrB_Matrix a = nullptr;
  BENCH_TRY(GrB_Matrix_new(&a, GrB_FP64, nrows, ncols));
  for (GrB_Index e = 0; e < nnz; ++e)
    BENCH_TRY(GrB_Matrix_setElement(a, rng.uniform() + 0.5,
                                    rng.below(nrows), rng.below(ncols)));
  BENCH_TRY(GrB_wait(a, GrB_MATERIALIZE));
  return a;
}

void run_product(benchmark::State& state, GrB_Matrix a, GrB_Matrix b,
                 grb::SpgemmMode mode) {
  ModeGuard guard(mode);
  GrB_Index nrows, ncols, flops_proxy;
  BENCH_TRY(GrB_Matrix_nrows(&nrows, a));
  BENCH_TRY(GrB_Matrix_ncols(&ncols, b));
  BENCH_TRY(GrB_Matrix_nvals(&flops_proxy, a));
  GrB_Matrix c = nullptr;
  BENCH_TRY(GrB_Matrix_new(&c, GrB_FP64, nrows, ncols));
  for (auto _ : state) {
    BENCH_TRY(GrB_mxm(c, GrB_NULL, GrB_NULL, GrB_PLUS_TIMES_SEMIRING_FP64,
                      a, b, GrB_DESC_R));
    BENCH_TRY(GrB_wait(c, GrB_COMPLETE));
  }
  state.SetItemsProcessed(state.iterations() * flops_proxy);
  GrB_free(&c);
}

// --- Uniform: 2048 x 2048 squaring, 16 entries/row; footprint under the
// always-dense cap, so auto keeps every row on the dense accumulator. --

GrB_Matrix uniform_input() {
  static GrB_Matrix a = uniform_matrix(2048, 2048, 16, 501);
  return a;
}

void BM_Uniform_Reference(benchmark::State& state) {
  run_product(state, uniform_input(), uniform_input(),
              grb::SpgemmMode::kReference);
}
void BM_Uniform_Dense(benchmark::State& state) {
  run_product(state, uniform_input(), uniform_input(),
              grb::SpgemmMode::kDense);
}
void BM_Uniform_Hash(benchmark::State& state) {
  run_product(state, uniform_input(), uniform_input(),
              grb::SpgemmMode::kHash);
}
void BM_Uniform_Auto(benchmark::State& state) {
  run_product(state, uniform_input(), uniform_input(),
              grb::SpgemmMode::kAuto);
}
BENCHMARK(BM_Uniform_Reference)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Uniform_Dense)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Uniform_Hash)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Uniform_Auto)->Unit(benchmark::kMillisecond);

// --- Skewed: power-law row weights (R-MAT scale 15, edge factor 8)
// against a sparse 32768 x 2^23 operand.  Per-row flop counts span
// orders of magnitude while the output dimension prices the reference
// kernel's O(ncols) scratch at ~80 MB allocated and zeroed per pass,
// twice per call; the adaptive engine sizes hash accumulators by each
// row's flop estimate instead. ------------------------------------------

GrB_Matrix skewed_a() {
  static GrB_Matrix a = benchutil::rmat(15, 8);
  return a;
}
GrB_Matrix skewed_b() {
  static GrB_Matrix b =
      uniform_matrix(32768, GrB_Index(1) << 23, 2, 503);
  return b;
}

void BM_Skewed_Reference(benchmark::State& state) {
  run_product(state, skewed_a(), skewed_b(), grb::SpgemmMode::kReference);
}
void BM_Skewed_Hash(benchmark::State& state) {
  run_product(state, skewed_a(), skewed_b(), grb::SpgemmMode::kHash);
}
void BM_Skewed_Auto(benchmark::State& state) {
  run_product(state, skewed_a(), skewed_b(), grb::SpgemmMode::kAuto);
}
BENCHMARK(BM_Skewed_Reference)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Skewed_Hash)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Skewed_Auto)->Unit(benchmark::kMillisecond);

// --- Hypersparse: 4096 x 2^24 output, ~50K entries in B.  The dense
// budget rejects the ~150 MB SPA outright; hash rows are sized by their
// actual flop counts. ---------------------------------------------------

GrB_Matrix hyper_a() {
  static GrB_Matrix a = uniform_matrix(4096, 4096, 16, 504);
  return a;
}
GrB_Matrix hyper_b() {
  static GrB_Matrix b =
      scatter_matrix(4096, GrB_Index(1) << 24, 50000, 505);
  return b;
}

void BM_Hypersparse_Reference(benchmark::State& state) {
  run_product(state, hyper_a(), hyper_b(), grb::SpgemmMode::kReference);
}
void BM_Hypersparse_Auto(benchmark::State& state) {
  run_product(state, hyper_a(), hyper_b(), grb::SpgemmMode::kAuto);
}
BENCHMARK(BM_Hypersparse_Reference)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Hypersparse_Auto)->Unit(benchmark::kMillisecond);

}  // namespace

GRB_BENCH_MAIN()
