// Telemetry overhead: the disabled state must cost one relaxed atomic
// flag load per hook (plus the two TLS stores of the current-op slot at
// the C API boundary).  BM_ApiHook_Disabled vs. BM_ApiHook_Flight vs.
// BM_ApiHook_Stats vs. BM_ApiHook_Trace quantify the veneer hook;
// BM_Mxv_* quantify a real kernel so the disabled-overhead acceptance
// bound is observable on an op that actually does work.  The flight
// recorder is ON by default, so the *_Disabled/*_TelemetryOff benches
// resize its ring to 0 to reach the flags==0 fast path, and dedicated
// *_Flight/*_FlightOnly variants measure the always-on ring cost.
#include "bench_util.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/profiler.hpp"
#include "util/thread_annotations.hpp"

namespace {

// Ring off for the scope, restored to the default size on exit.
struct FlightOff {
  FlightOff() { grb::obs::fr_resize(0); }
  ~FlightOff() { grb::obs::fr_resize(4096); }
};

constexpr GrB_Index kN = 1u << 14;

GrB_Vector shared_vec() {
  static GrB_Vector v = benchutil::dense_vector(kN, 7);
  return v;
}

GrB_Matrix shared_mat() {
  static GrB_Matrix a = benchutil::rmat(13, 8);
  return a;
}

void api_hook_loop(benchmark::State& state) {
  GrB_Vector v = shared_vec();
  GrB_Index n = 0;
  for (auto _ : state) {
    // The cheapest real entry point: one guarded veneer crossing plus a
    // mutex-protected size read.
    BENCH_TRY(GrB_Vector_nvals(&n, v));
    benchmark::DoNotOptimize(n);
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_ApiHook_Disabled(benchmark::State& state) {
  FlightOff off;
  BENCH_TRY(GxB_Stats_enable(0));
  api_hook_loop(state);
}
BENCHMARK(BM_ApiHook_Disabled);

// Default production state: flight recorder only, no stats/trace.
void BM_ApiHook_Flight(benchmark::State& state) {
  BENCH_TRY(GxB_Stats_enable(0));
  api_hook_loop(state);
}
BENCHMARK(BM_ApiHook_Flight);

void BM_ApiHook_Stats(benchmark::State& state) {
  BENCH_TRY(GxB_Stats_enable(1));
  api_hook_loop(state);
  BENCH_TRY(GxB_Stats_enable(0));
  BENCH_TRY(GxB_Stats_reset());
}
BENCHMARK(BM_ApiHook_Stats);

// Same hook, but the target vector is homed in a child GrB_Context so
// every counter update keys the (context, op) attribution registry
// instead of the top-level slot.  The delta vs. BM_ApiHook_Stats is the
// price of tenant attribution.
void BM_ApiHook_StatsCtx(benchmark::State& state) {
  BENCH_TRY(GxB_Stats_enable(1));
  GrB_Context ctx = nullptr;
  BENCH_TRY(GrB_Context_new(&ctx, GrB_NONBLOCKING, nullptr, nullptr));
  GrB_Vector v = nullptr;
  BENCH_TRY(GrB_Vector_new(&v, GrB_FP64, 64, ctx));
  BENCH_TRY(GrB_Vector_setElement(v, 1.0, 0));
  BENCH_TRY(GrB_wait(v, GrB_MATERIALIZE));
  GrB_Index n = 0;
  for (auto _ : state) {
    BENCH_TRY(GrB_Vector_nvals(&n, v));
    benchmark::DoNotOptimize(n);
  }
  state.SetItemsProcessed(state.iterations());
  GrB_free(&v);
  BENCH_TRY(GrB_free(&ctx));
  BENCH_TRY(GxB_Stats_enable(0));
  BENCH_TRY(GxB_Stats_reset());
}
BENCHMARK(BM_ApiHook_StatsCtx);

// Hardware profiler armed: kernels run under a ProfScope reading the
// perf counter group (or its degraded-clock fallback).  The plain API
// hook never opens a scope, so the Prof leg vs. BM_ApiHook_Flight is
// the flag-check-only cost; the Mxv leg below carries the real
// per-region read price.
void BM_ApiHook_Prof(benchmark::State& state) {
  grb::obs::prof_set_enabled(true);
  api_hook_loop(state);
  grb::obs::prof_set_enabled(false);
  grb::obs::prof_reset();
}
BENCHMARK(BM_ApiHook_Prof);

void BM_ApiHook_Trace(benchmark::State& state) {
  BENCH_TRY(GxB_Trace_start("BENCH_obs_overhead_trace.json"));
  api_hook_loop(state);
  // Dump (and discard) so the buffer cap can't bleed into other runs.
  BENCH_TRY(GxB_Trace_dump(nullptr));
  std::remove("BENCH_obs_overhead_trace.json");
}
BENCHMARK(BM_ApiHook_Trace);

// The contention-profiler probe on an uncontended acquire: a named-site
// MutexLock whose site counters are gated on the same flags word as the
// rest of telemetry.  Disabled must be the bare pthread lock plus one
// relaxed load; Stats adds the per-site acquire bump.
void lock_hook_loop(benchmark::State& state) {
  grb::Mutex mu;
  uint64_t ticks = 0;
  for (auto _ : state) {
    grb::MutexLock lock(mu, "bench_lock_site");
    benchmark::DoNotOptimize(++ticks);
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_LockHook_Disabled(benchmark::State& state) {
  FlightOff off;
  BENCH_TRY(GxB_Stats_enable(0));
  lock_hook_loop(state);
}
BENCHMARK(BM_LockHook_Disabled);

void BM_LockHook_Stats(benchmark::State& state) {
  BENCH_TRY(GxB_Stats_enable(1));
  lock_hook_loop(state);
  BENCH_TRY(GxB_Stats_enable(0));
  BENCH_TRY(GxB_Stats_reset());
}
BENCHMARK(BM_LockHook_Stats);

void mxv_loop(benchmark::State& state) {
  GrB_Matrix a = shared_mat();
  GrB_Index n;
  BENCH_TRY(GrB_Matrix_nrows(&n, a));
  // Sized to the matrix (the nvals hook benches reuse the larger
  // shared_vec; this one must match 2^13 rmat rows).
  static GrB_Vector u = benchutil::dense_vector(n, 11);
  GrB_Vector w = nullptr;
  BENCH_TRY(GrB_Vector_new(&w, GrB_FP64, n));
  for (auto _ : state) {
    BENCH_TRY(GrB_mxv(w, GrB_NULL, GrB_NULL, GrB_PLUS_TIMES_SEMIRING_FP64, a, u,
                      GrB_NULL));
    BENCH_TRY(GrB_wait(w, GrB_MATERIALIZE));
  }
  GrB_free(&w);
}

void BM_Mxv_TelemetryOff(benchmark::State& state) {
  FlightOff off;
  BENCH_TRY(GxB_Stats_enable(0));
  mxv_loop(state);
}
BENCHMARK(BM_Mxv_TelemetryOff)->Unit(benchmark::kMicrosecond);

void BM_Mxv_FlightOnly(benchmark::State& state) {
  BENCH_TRY(GxB_Stats_enable(0));
  mxv_loop(state);
}
BENCHMARK(BM_Mxv_FlightOnly)->Unit(benchmark::kMicrosecond);

void BM_Mxv_TelemetryStats(benchmark::State& state) {
  BENCH_TRY(GxB_Stats_enable(1));
  mxv_loop(state);
  BENCH_TRY(GxB_Stats_enable(0));
  BENCH_TRY(GxB_Stats_reset());
}
BENCHMARK(BM_Mxv_TelemetryStats)->Unit(benchmark::kMicrosecond);

void BM_Mxv_Prof(benchmark::State& state) {
  grb::obs::prof_set_enabled(true);
  mxv_loop(state);
  grb::obs::prof_set_enabled(false);
  grb::obs::prof_reset();
}
BENCHMARK(BM_Mxv_Prof)->Unit(benchmark::kMicrosecond);

}  // namespace

GRB_BENCH_MAIN()
