// Shared benchmark scaffolding: library lifecycle and workload builders.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <vector>

#include "graphblas/GraphBLAS.h"
#include "util/generator.hpp"
#include "util/prng.hpp"

namespace benchutil {

// Every bench binary defines GRB_BENCH_MAIN() which initializes the
// library around the benchmark runner.
#define GRB_BENCH_MAIN()                                              \
  int main(int argc, char** argv) {                                  \
    if (GrB_init(GrB_NONBLOCKING) != GrB_SUCCESS) return 1;          \
    ::benchmark::Initialize(&argc, argv);                            \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv))        \
      return 1;                                                      \
    ::benchmark::RunSpecifiedBenchmarks();                           \
    ::benchmark::Shutdown();                                         \
    GrB_finalize();                                                  \
    return 0;                                                        \
  }

inline void abort_on(GrB_Info info, const char* what) {
  if (info != GrB_SUCCESS) {
    std::fprintf(stderr, "bench: %s failed with %d\n", what, (int)info);
    std::abort();
  }
}
#define BENCH_TRY(expr) ::benchutil::abort_on((GrB_Info)(expr), #expr)

// R-MAT graph cached per (scale, edge_factor) for the benchmark process.
inline GrB_Matrix rmat(int scale, GrB_Index edge_factor,
                       bool symmetrize = false) {
  grb::RmatParams params;
  params.symmetrize = symmetrize;
  GrB_Matrix a = nullptr;
  BENCH_TRY((GrB_Info)grb::rmat_matrix(&a, scale, edge_factor, params,
                                       nullptr));
  BENCH_TRY(GrB_wait(a, GrB_MATERIALIZE));
  return a;
}

inline GrB_Vector dense_vector(GrB_Index n, uint64_t seed) {
  grb::Prng rng(seed);
  GrB_Vector v = nullptr;
  BENCH_TRY(GrB_Vector_new(&v, GrB_FP64, n));
  for (GrB_Index i = 0; i < n; ++i)
    BENCH_TRY(GrB_Vector_setElement(v, rng.uniform() + 0.5, i));
  BENCH_TRY(GrB_wait(v, GrB_MATERIALIZE));
  return v;
}

inline GrB_Vector sparse_vector(GrB_Index n, GrB_Index nvals,
                                uint64_t seed) {
  GrB_Vector v = nullptr;
  BENCH_TRY((GrB_Info)grb::random_vector(&v, n, nvals, seed, nullptr));
  return v;
}

}  // namespace benchutil
