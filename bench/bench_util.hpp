// Shared benchmark scaffolding: library lifecycle, workload builders,
// and the machine-readable perf-trajectory reporter.
//
// Every bench binary writes BENCH_<name>.json (next to wherever it runs;
// <name> is the binary basename minus its "bench_" prefix) with one row
// per benchmark: {"name", "params", "median_ns", "iters", "counters"},
// plus the telemetry counter dump ("telemetry", populated when the run
// had GRB_STATS=1 or GxB_Stats_enable).  With --benchmark_repetitions=N
// the median aggregate is reported; single runs report their per-
// iteration time.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "graphblas/GraphBLAS.h"
#include "util/generator.hpp"
#include "util/prng.hpp"

namespace benchutil {

// Captures every run the console reporter prints and dumps the JSON
// trajectory file at destruction-time via dump().
class JsonTrajectoryReporter : public ::benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      bool is_median = run.run_type == Run::RT_Aggregate &&
                       run.aggregate_name == "median";
      if (run.run_type == Run::RT_Aggregate && !is_median) continue;
      Row row;
      row.name = run.benchmark_name();
      // Strip the aggregate suffix so repeated and single runs key alike.
      std::string median_suffix = "_median";
      if (is_median && row.name.size() > median_suffix.size() &&
          row.name.compare(row.name.size() - median_suffix.size(),
                           median_suffix.size(), median_suffix) == 0) {
        row.name.resize(row.name.size() - median_suffix.size());
      }
      size_t slash = row.name.find('/');
      row.params = slash == std::string::npos ? "" : row.name.substr(slash + 1);
      // Aggregate rows divide like plain ones: their iterations field is
      // the repetition count and real_accumulated_time sums the per-rep
      // statistic, so accumulated/iterations is the per-iteration median
      // (matches what the console reporter prints for the _median row).
      row.median_ns = run.iterations == 0
                          ? 0.0
                          : run.real_accumulated_time /
                                static_cast<double>(run.iterations) * 1e9;
      row.iters = static_cast<uint64_t>(run.iterations);
      for (const auto& kv : run.counters) {
        row.counters.emplace_back(kv.first, kv.second.value);
      }
      row.is_median = is_median;
      // Median aggregates win over per-repetition rows; otherwise last
      // row for a name wins.
      auto it = rows_.find(row.name);
      if (it == rows_.end() || is_median || !it->second.is_median) {
        rows_[row.name] = std::move(row);
      }
    }
    ::benchmark::ConsoleReporter::ReportRuns(runs);
  }

  // Writes BENCH_<name>.json.  Called after RunSpecifiedBenchmarks and
  // before GrB_finalize so telemetry counters are still live.
  bool dump(const char* argv0) const {
    std::string path = std::string("BENCH_") + binary_name(argv0) + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return false;
    std::fprintf(f, "{\"binary\":\"%s\",\"benchmarks\":[",
                 binary_name(argv0).c_str());
    bool first = true;
    for (const auto& kv : rows_) {
      const Row& r = kv.second;
      std::fprintf(f,
                   "%s\n{\"name\":\"%s\",\"params\":\"%s\","
                   "\"median_ns\":%.1f,\"iters\":%llu,\"counters\":{",
                   first ? "" : ",", json_escape(r.name).c_str(),
                   json_escape(r.params).c_str(), r.median_ns,
                   static_cast<unsigned long long>(r.iters));
      first = false;
      bool cfirst = true;
      for (const auto& c : r.counters) {
        std::fprintf(f, "%s\"%s\":%.3f", cfirst ? "" : ",",
                     json_escape(c.first).c_str(), c.second);
        cfirst = false;
      }
      std::fprintf(f, "}}");
    }
    // Telemetry counter snapshot: zeros unless the run enabled stats
    // (GRB_STATS=1 or GxB_Stats_enable).  trim_zero_rows drops all-zero
    // per-op and per-context entries — a stats-off run emits a compact
    // skeleton instead of pages of zeros, and bench_compare.py never
    // reads the telemetry object at all.
    std::fprintf(f, "\n],\"telemetry\":%s}\n",
                 grb::obs::stats_json(true).c_str());
    return std::fclose(f) == 0;
  }

  static std::string binary_name(const char* argv0) {
    std::string base = argv0 != nullptr ? argv0 : "bench";
    size_t slash = base.find_last_of('/');
    if (slash != std::string::npos) base = base.substr(slash + 1);
    if (base.rfind("bench_", 0) == 0) base = base.substr(6);
    return base;
  }

 private:
  struct Row {
    std::string name;
    std::string params;
    double median_ns = 0.0;
    uint64_t iters = 0;
    std::vector<std::pair<std::string, double>> counters;
    bool is_median = false;
  };

  static std::string json_escape(const std::string& s) {
    std::string out;
    for (char c : s) {
      if (c == '"' || c == '\\') out.push_back('\\');
      out.push_back(c);
    }
    return out;
  }

  std::map<std::string, Row> rows_;
};

inline int run_bench_main(int argc, char** argv) {
  if (GrB_init(GrB_NONBLOCKING) != GrB_SUCCESS) return 1;
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  JsonTrajectoryReporter reporter;
  ::benchmark::RunSpecifiedBenchmarks(&reporter);
  if (!reporter.dump(argv[0])) {
    std::fprintf(stderr, "bench: failed to write BENCH_*.json\n");
  }
  ::benchmark::Shutdown();
  GrB_finalize();
  return 0;
}

// Every bench binary defines GRB_BENCH_MAIN() which initializes the
// library around the benchmark runner and emits the JSON trajectory.
#define GRB_BENCH_MAIN()                                              \
  int main(int argc, char** argv) {                                   \
    return ::benchutil::run_bench_main(argc, argv);                   \
  }

inline void abort_on(GrB_Info info, const char* what) {
  if (info != GrB_SUCCESS) {
    std::fprintf(stderr, "bench: %s failed with %d\n", what, (int)info);
    std::abort();
  }
}
#define BENCH_TRY(expr) ::benchutil::abort_on((GrB_Info)(expr), #expr)

// R-MAT graph cached per (scale, edge_factor) for the benchmark process.
inline GrB_Matrix rmat(int scale, GrB_Index edge_factor,
                       bool symmetrize = false) {
  grb::RmatParams params;
  params.symmetrize = symmetrize;
  GrB_Matrix a = nullptr;
  BENCH_TRY((GrB_Info)grb::rmat_matrix(&a, scale, edge_factor, params,
                                       nullptr));
  BENCH_TRY(GrB_wait(a, GrB_MATERIALIZE));
  return a;
}

inline GrB_Vector dense_vector(GrB_Index n, uint64_t seed) {
  grb::Prng rng(seed);
  GrB_Vector v = nullptr;
  BENCH_TRY(GrB_Vector_new(&v, GrB_FP64, n));
  for (GrB_Index i = 0; i < n; ++i)
    BENCH_TRY(GrB_Vector_setElement(v, rng.uniform() + 0.5, i));
  BENCH_TRY(GrB_wait(v, GrB_MATERIALIZE));
  return v;
}

inline GrB_Vector sparse_vector(GrB_Index n, GrB_Index nvals,
                                uint64_t seed) {
  GrB_Vector v = nullptr;
  BENCH_TRY((GrB_Info)grb::random_vector(&v, n, nvals, seed, nullptr));
  return v;
}

}  // namespace benchutil
