// Experiment M7 (storage formats, DESIGN.md §15): polymorphic storage
// with cost-model auto-switching vs. the one-format-fits-all CSR
// baseline, plus the cached lazy transpose vs. per-call recomputation.
//
// Three paired legs, each flipping exactly one knob:
//
//   TransposeCache — GrB_mxv with GrB_DESC_T0 over a fixed R-MAT graph.
//     The cached leg builds A' once (first descriptor read of the
//     snapshot) and every later read reuses the view; the uncached leg
//     (grb::set_transpose_cache_enabled(false), the GRB_TRANSPOSE_CACHE=0
//     ablation) pays the counting-sort transpose on every call.  The
//     cached leg samples format.transpose_cache_hits over one untimed
//     step to prove the view engaged.
//
//   Hypersparse — GrB_mxv over a 2M-row matrix with 4096 occupied rows.
//     Forced CSR walks every one of the 2M row pointers per call; the
//     hyper format's compact-row kernel visits only the occupied rows.
//
//   DenseEwise — GrB_eWiseAdd of two full matrices.  Forced CSR runs the
//     general sorted-merge union; the dense format takes the flat
//     cell-parallel fast path (no index vectors at all).
//
// Legs within a pair share workloads and differ only in the format knob,
// so BENCH_m7_formats.json diffs cleanly under tools/bench_compare.py.
#include "bench/bench_util.hpp"

#include "containers/format.hpp"

namespace {

struct PolicySet {
  grb::FormatPolicy saved;
  explicit PolicySet(grb::FormatPolicy p) : saved(grb::format_policy()) {
    grb::set_format_policy(p);
  }
  ~PolicySet() { grb::set_format_policy(saved); }
};

struct TransCacheSet {
  bool saved;
  explicit TransCacheSet(bool on) : saved(grb::transpose_cache_enabled()) {
    grb::set_transpose_cache_enabled(on);
  }
  ~TransCacheSet() { grb::set_transpose_cache_enabled(saved); }
};

// Samples a telemetry counter across one untimed run of `step` so each
// leg can prove (in the JSON) which machinery actually ran.
template <class Step>
double sample_counter(const char* name, Step&& step) {
  BENCH_TRY(GxB_Stats_enable(1));
  BENCH_TRY(GxB_Stats_reset());
  step();
  uint64_t n = 0;
  BENCH_TRY(GxB_Stats_get(name, &n));
  BENCH_TRY(GxB_Stats_enable(0));
  BENCH_TRY(GxB_Stats_reset());
  return double(n);
}

// ---------------------------------------------------------------- leg 1
// Transpose cache: A'u with the descriptor, cache on vs off.

constexpr int kTScale = 14;  // 16384 rows, ~131K edges

void run_desc_transpose(benchmark::State& state, bool cached) {
  TransCacheSet cache(cached);
  GrB_Matrix a = benchutil::rmat(kTScale, 8);
  GrB_Index n = 0;
  BENCH_TRY(GrB_Matrix_nrows(&n, a));
  GrB_Vector u = benchutil::dense_vector(n, 701);
  GrB_Vector w = nullptr;
  BENCH_TRY(GrB_Vector_new(&w, GrB_FP64, n));
  auto step = [&] {
    BENCH_TRY(GrB_mxv(w, GrB_NULL, GrB_NULL,
                      GrB_PLUS_TIMES_SEMIRING_FP64, a, u, GrB_DESC_T0));
    BENCH_TRY(GrB_wait(w, GrB_COMPLETE));
  };
  step();  // warm: the cached leg builds its view here, off the clock
  state.counters["cache_hits"] =
      sample_counter("format.transpose_cache_hits", step);
  for (auto _ : state) step();
  state.SetItemsProcessed(state.iterations() * n);
  GrB_free(&w);
  GrB_free(&u);
  GrB_free(&a);
}

void BM_DescTranspose_Cached(benchmark::State& state) {
  run_desc_transpose(state, true);
}
void BM_DescTranspose_Uncached(benchmark::State& state) {
  run_desc_transpose(state, false);
}
BENCHMARK(BM_DescTranspose_Cached)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_DescTranspose_Uncached)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------- leg 2
// Hypersparse: 2M-row matrix, 4096 occupied rows of 32 entries each.

constexpr GrB_Index kHRows = GrB_Index(1) << 21;
constexpr GrB_Index kHCols = 1024;
constexpr GrB_Index kHStride = 512;  // kHRows / kHStride occupied rows
constexpr GrB_Index kHPerRow = 32;

GrB_Matrix hyper_matrix() {
  grb::Prng rng(702);
  GrB_Matrix m = nullptr;
  BENCH_TRY(GrB_Matrix_new(&m, GrB_FP64, kHRows, kHCols));
  for (GrB_Index r = 0; r < kHRows; r += kHStride)
    for (GrB_Index e = 0; e < kHPerRow; ++e)
      BENCH_TRY(GrB_Matrix_setElement(m, rng.uniform() + 0.5, r,
                                      rng.below(kHCols)));
  BENCH_TRY(GrB_wait(m, GrB_MATERIALIZE));
  return m;
}

void run_hypersparse(benchmark::State& state, grb::FormatPolicy policy) {
  PolicySet format(policy);
  // Built under the forced policy so the publish adapts to it.
  GrB_Matrix a = hyper_matrix();
  GrB_Vector u = benchutil::dense_vector(kHCols, 703);
  GrB_Vector w = nullptr;
  BENCH_TRY(GrB_Vector_new(&w, GrB_FP64, kHRows));
  GxB_Format resident = GxB_FORMAT_AUTO;
  BENCH_TRY(GxB_Matrix_Option_get(a, GxB_FORMAT, &resident));
  state.counters["resident_format"] = double(resident);
  auto step = [&] {
    BENCH_TRY(GrB_mxv(w, GrB_NULL, GrB_NULL,
                      GrB_PLUS_TIMES_SEMIRING_FP64, a, u, GrB_NULL));
    BENCH_TRY(GrB_wait(w, GrB_COMPLETE));
  };
  for (auto _ : state) step();
  state.SetItemsProcessed(state.iterations() * (kHRows / kHStride) *
                          kHPerRow);
  GrB_free(&w);
  GrB_free(&u);
  GrB_free(&a);
}

void BM_Hypersparse_Csr(benchmark::State& state) {
  run_hypersparse(state, grb::FormatPolicy::kCsr);
}
void BM_Hypersparse_Hyper(benchmark::State& state) {
  run_hypersparse(state, grb::FormatPolicy::kHyper);
}
BENCHMARK(BM_Hypersparse_Csr)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Hypersparse_Hyper)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------- leg 3
// Dense elementwise: full + full, forced CSR merge vs dense fast path.

constexpr GrB_Index kDN = 512;

GrB_Matrix full_matrix(uint64_t seed) {
  grb::Prng rng(seed);
  GrB_Matrix m = nullptr;
  BENCH_TRY(GrB_Matrix_new(&m, GrB_FP64, kDN, kDN));
  for (GrB_Index i = 0; i < kDN; ++i)
    for (GrB_Index j = 0; j < kDN; ++j)
      BENCH_TRY(GrB_Matrix_setElement(m, rng.uniform() + 0.5, i, j));
  BENCH_TRY(GrB_wait(m, GrB_MATERIALIZE));
  return m;
}

void run_dense_ewise(benchmark::State& state, grb::FormatPolicy policy) {
  PolicySet format(policy);
  GrB_Matrix a = full_matrix(704);
  GrB_Matrix b = full_matrix(705);
  GrB_Matrix c = nullptr;
  BENCH_TRY(GrB_Matrix_new(&c, GrB_FP64, kDN, kDN));
  GxB_Format resident = GxB_FORMAT_AUTO;
  BENCH_TRY(GxB_Matrix_Option_get(a, GxB_FORMAT, &resident));
  state.counters["resident_format"] = double(resident);
  auto step = [&] {
    BENCH_TRY(GrB_eWiseAdd(c, GrB_NULL, GrB_NULL, GrB_PLUS_FP64, a, b,
                           GrB_NULL));
    BENCH_TRY(GrB_wait(c, GrB_COMPLETE));
  };
  for (auto _ : state) step();
  state.SetItemsProcessed(state.iterations() * kDN * kDN);
  GrB_free(&c);
  GrB_free(&b);
  GrB_free(&a);
}

void BM_DenseEwise_Csr(benchmark::State& state) {
  run_dense_ewise(state, grb::FormatPolicy::kCsr);
}
void BM_DenseEwise_Dense(benchmark::State& state) {
  run_dense_ewise(state, grb::FormatPolicy::kDense);
}
BENCHMARK(BM_DenseEwise_Csr)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_DenseEwise_Dense)->Unit(benchmark::kMillisecond);

}  // namespace

GRB_BENCH_MAIN()
