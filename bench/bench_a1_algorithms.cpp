// Experiment A1: end-to-end graph algorithms on the public API — the
// GraphBLAS's reason to exist, and a workout for the 2.0 features
// (select in TC/k-truss, ROWINDEX apply in BFS-parent/CC).
#include "bench/bench_util.hpp"

#include "algorithms/algorithms.hpp"

namespace {

void BM_BfsLevel(benchmark::State& state) {
  GrB_Matrix a = benchutil::rmat(static_cast<int>(state.range(0)), 8);
  GrB_Index nnz;
  BENCH_TRY(GrB_Matrix_nvals(&nnz, a));
  for (auto _ : state) {
    GrB_Vector level = nullptr;
    BENCH_TRY(grb_algo::bfs_level(&level, a, 0));
    GrB_free(&level);
  }
  state.SetItemsProcessed(state.iterations() * nnz);
  GrB_free(&a);
}
BENCHMARK(BM_BfsLevel)->Arg(10)->Arg(12)->Arg(14)->Unit(benchmark::kMillisecond);

void BM_BfsParent(benchmark::State& state) {
  GrB_Matrix a = benchutil::rmat(static_cast<int>(state.range(0)), 8);
  GrB_Index nnz;
  BENCH_TRY(GrB_Matrix_nvals(&nnz, a));
  for (auto _ : state) {
    GrB_Vector parent = nullptr;
    BENCH_TRY(grb_algo::bfs_parent(&parent, a, 0));
    GrB_free(&parent);
  }
  state.SetItemsProcessed(state.iterations() * nnz);
  GrB_free(&a);
}
BENCHMARK(BM_BfsParent)->Arg(10)->Arg(12)->Arg(14)->Unit(benchmark::kMillisecond);

void BM_Sssp(benchmark::State& state) {
  GrB_Matrix a = benchutil::rmat(static_cast<int>(state.range(0)), 8);
  GrB_Index nnz;
  BENCH_TRY(GrB_Matrix_nvals(&nnz, a));
  for (auto _ : state) {
    GrB_Vector dist = nullptr;
    BENCH_TRY(grb_algo::sssp(&dist, a, 0));
    GrB_free(&dist);
  }
  state.SetItemsProcessed(state.iterations() * nnz);
  GrB_free(&a);
}
BENCHMARK(BM_Sssp)->Arg(10)->Arg(12)->Unit(benchmark::kMillisecond);

void BM_PageRank(benchmark::State& state) {
  GrB_Matrix a = benchutil::rmat(static_cast<int>(state.range(0)), 8);
  GrB_Index nnz;
  BENCH_TRY(GrB_Matrix_nvals(&nnz, a));
  for (auto _ : state) {
    GrB_Vector rank = nullptr;
    BENCH_TRY(grb_algo::pagerank(&rank, a, 0.85, 20, 1e-7));
    GrB_free(&rank);
  }
  state.SetItemsProcessed(state.iterations() * nnz * 20);
  GrB_free(&a);
}
BENCHMARK(BM_PageRank)->Arg(10)->Arg(12)->Arg(14)->Unit(benchmark::kMillisecond);

void BM_TriangleCount(benchmark::State& state) {
  GrB_Matrix a =
      benchutil::rmat(static_cast<int>(state.range(0)), 8, true);
  GrB_Index nnz;
  BENCH_TRY(GrB_Matrix_nvals(&nnz, a));
  for (auto _ : state) {
    uint64_t count = 0;
    BENCH_TRY(grb_algo::triangle_count(&count, a));
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * nnz);
  GrB_free(&a);
}
BENCHMARK(BM_TriangleCount)->Arg(10)->Arg(12)->Unit(benchmark::kMillisecond);

void BM_ConnectedComponents(benchmark::State& state) {
  GrB_Matrix a =
      benchutil::rmat(static_cast<int>(state.range(0)), 4, true);
  GrB_Index nnz;
  BENCH_TRY(GrB_Matrix_nvals(&nnz, a));
  for (auto _ : state) {
    GrB_Vector comp = nullptr;
    BENCH_TRY(grb_algo::connected_components(&comp, a));
    GrB_free(&comp);
  }
  state.SetItemsProcessed(state.iterations() * nnz);
  GrB_free(&a);
}
BENCHMARK(BM_ConnectedComponents)
    ->Arg(10)
    ->Arg(12)
    ->Unit(benchmark::kMillisecond);

void BM_Mis(benchmark::State& state) {
  GrB_Matrix a =
      benchutil::rmat(static_cast<int>(state.range(0)), 4, true);
  GrB_Index nnz;
  BENCH_TRY(GrB_Matrix_nvals(&nnz, a));
  for (auto _ : state) {
    GrB_Vector iset = nullptr;
    BENCH_TRY(grb_algo::mis(&iset, a, 12345));
    GrB_free(&iset);
  }
  state.SetItemsProcessed(state.iterations() * nnz);
  GrB_free(&a);
}
BENCHMARK(BM_Mis)->Arg(10)->Arg(12)->Unit(benchmark::kMillisecond);

void BM_KTruss(benchmark::State& state) {
  GrB_Matrix a =
      benchutil::rmat(static_cast<int>(state.range(0)), 8, true);
  GrB_Index nnz;
  BENCH_TRY(GrB_Matrix_nvals(&nnz, a));
  for (auto _ : state) {
    GrB_Matrix truss = nullptr;
    BENCH_TRY(grb_algo::ktruss(&truss, a, 4));
    GrB_free(&truss);
  }
  state.SetItemsProcessed(state.iterations() * nnz);
  GrB_free(&a);
}
BENCHMARK(BM_KTruss)->Arg(9)->Arg(11)->Unit(benchmark::kMillisecond);

void BM_BetweennessCentrality(benchmark::State& state) {
  GrB_Matrix a = benchutil::rmat(static_cast<int>(state.range(0)), 8);
  GrB_Index nnz;
  BENCH_TRY(GrB_Matrix_nvals(&nnz, a));
  const GrB_Index sources[] = {0, 1, 2, 3};
  for (auto _ : state) {
    GrB_Vector bc = nullptr;
    BENCH_TRY(grb_algo::betweenness_centrality(&bc, a, sources, 4));
    GrB_free(&bc);
  }
  state.SetItemsProcessed(state.iterations() * nnz * 4);
  GrB_free(&a);
}
BENCHMARK(BM_BetweennessCentrality)
    ->Arg(9)
    ->Arg(11)
    ->Unit(benchmark::kMillisecond);

void BM_Lcc(benchmark::State& state) {
  GrB_Matrix a =
      benchutil::rmat(static_cast<int>(state.range(0)), 8, true);
  GrB_Index nnz;
  BENCH_TRY(GrB_Matrix_nvals(&nnz, a));
  for (auto _ : state) {
    GrB_Vector lcc = nullptr;
    BENCH_TRY(grb_algo::local_clustering_coefficient(&lcc, a));
    GrB_free(&lcc);
  }
  state.SetItemsProcessed(state.iterations() * nnz);
  GrB_free(&a);
}
BENCHMARK(BM_Lcc)->Arg(9)->Arg(11)->Unit(benchmark::kMillisecond);

}  // namespace

GRB_BENCH_MAIN()
