// Experiment T4 (paper Table IV): throughput of select/apply with each
// family of predefined index-unary operators.  Positional operators skip
// the value load entirely; value comparisons read it — both stream the
// matrix once.
#include "bench/bench_util.hpp"

namespace {

void run_select(benchmark::State& state, GrB_IndexUnaryOp op, int64_t s) {
  GrB_Matrix a = benchutil::rmat(static_cast<int>(state.range(0)), 8);
  GrB_Index n, nnz;
  BENCH_TRY(GrB_Matrix_nrows(&n, a));
  BENCH_TRY(GrB_Matrix_nvals(&nnz, a));
  GrB_Matrix c = nullptr;
  BENCH_TRY(GrB_Matrix_new(&c, GrB_FP64, n, n));
  for (auto _ : state) {
    BENCH_TRY(GrB_select(c, GrB_NULL, GrB_NULL, op, a, s, GrB_NULL));
    BENCH_TRY(GrB_wait(c, GrB_COMPLETE));
  }
  state.SetItemsProcessed(state.iterations() * nnz);
  GrB_free(&a);
  GrB_free(&c);
}

void BM_Select_TRIL(benchmark::State& state) {
  run_select(state, GrB_TRIL, 0);
}
void BM_Select_TRIU(benchmark::State& state) {
  run_select(state, GrB_TRIU, 0);
}
void BM_Select_DIAG(benchmark::State& state) {
  run_select(state, GrB_DIAG, 0);
}
void BM_Select_OFFDIAG(benchmark::State& state) {
  run_select(state, GrB_OFFDIAG, 0);
}
void BM_Select_ROWLE(benchmark::State& state) {
  run_select(state, GrB_ROWLE, 1 << (state.range(0) - 1));
}
void BM_Select_ROWGT(benchmark::State& state) {
  run_select(state, GrB_ROWGT, 1 << (state.range(0) - 1));
}
void BM_Select_COLLE(benchmark::State& state) {
  run_select(state, GrB_COLLE, 1 << (state.range(0) - 1));
}
void BM_Select_COLGT(benchmark::State& state) {
  run_select(state, GrB_COLGT, 1 << (state.range(0) - 1));
}
BENCHMARK(BM_Select_TRIL)->Arg(12)->Arg(15);
BENCHMARK(BM_Select_TRIU)->Arg(12)->Arg(15);
BENCHMARK(BM_Select_DIAG)->Arg(12)->Arg(15);
BENCHMARK(BM_Select_OFFDIAG)->Arg(12)->Arg(15);
BENCHMARK(BM_Select_ROWLE)->Arg(12)->Arg(15);
BENCHMARK(BM_Select_ROWGT)->Arg(12)->Arg(15);
BENCHMARK(BM_Select_COLLE)->Arg(12)->Arg(15);
BENCHMARK(BM_Select_COLGT)->Arg(12)->Arg(15);

void BM_Select_VALUEGT(benchmark::State& state) {
  GrB_Matrix a = benchutil::rmat(static_cast<int>(state.range(0)), 8);
  GrB_Index n, nnz;
  BENCH_TRY(GrB_Matrix_nrows(&n, a));
  BENCH_TRY(GrB_Matrix_nvals(&nnz, a));
  GrB_Matrix c = nullptr;
  BENCH_TRY(GrB_Matrix_new(&c, GrB_FP64, n, n));
  for (auto _ : state) {
    BENCH_TRY(GrB_select(c, GrB_NULL, GrB_NULL, GrB_VALUEGT_FP64, a, 0.5,
                         GrB_NULL));
    BENCH_TRY(GrB_wait(c, GrB_COMPLETE));
  }
  state.SetItemsProcessed(state.iterations() * nnz);
  GrB_free(&a);
  GrB_free(&c);
}
BENCHMARK(BM_Select_VALUEGT)->Arg(12)->Arg(15);

void BM_Select_VALUEEQ(benchmark::State& state) {
  GrB_Matrix a = benchutil::rmat(static_cast<int>(state.range(0)), 8);
  GrB_Index n, nnz;
  BENCH_TRY(GrB_Matrix_nrows(&n, a));
  BENCH_TRY(GrB_Matrix_nvals(&nnz, a));
  GrB_Matrix c = nullptr;
  BENCH_TRY(GrB_Matrix_new(&c, GrB_FP64, n, n));
  for (auto _ : state) {
    BENCH_TRY(GrB_select(c, GrB_NULL, GrB_NULL, GrB_VALUEEQ_FP64, a, 0.25,
                         GrB_NULL));
    BENCH_TRY(GrB_wait(c, GrB_COMPLETE));
  }
  state.SetItemsProcessed(state.iterations() * nnz);
  GrB_free(&a);
  GrB_free(&c);
}
BENCHMARK(BM_Select_VALUEEQ)->Arg(12)->Arg(15);

void run_apply_index(benchmark::State& state, GrB_IndexUnaryOp op) {
  GrB_Matrix a = benchutil::rmat(static_cast<int>(state.range(0)), 8);
  GrB_Index n, nnz;
  BENCH_TRY(GrB_Matrix_nrows(&n, a));
  BENCH_TRY(GrB_Matrix_nvals(&nnz, a));
  GrB_Matrix c = nullptr;
  BENCH_TRY(GrB_Matrix_new(&c, GrB_INT64, n, n));
  for (auto _ : state) {
    BENCH_TRY(GrB_apply(c, GrB_NULL, GrB_NULL, op, a, int64_t{0},
                        GrB_NULL));
    BENCH_TRY(GrB_wait(c, GrB_COMPLETE));
  }
  state.SetItemsProcessed(state.iterations() * nnz);
  GrB_free(&a);
  GrB_free(&c);
}

void BM_Apply_ROWINDEX(benchmark::State& state) {
  run_apply_index(state, GrB_ROWINDEX_INT64);
}
void BM_Apply_COLINDEX(benchmark::State& state) {
  run_apply_index(state, GrB_COLINDEX_INT64);
}
void BM_Apply_DIAGINDEX(benchmark::State& state) {
  run_apply_index(state, GrB_DIAGINDEX_INT64);
}
BENCHMARK(BM_Apply_ROWINDEX)->Arg(12)->Arg(15);
BENCHMARK(BM_Apply_COLINDEX)->Arg(12)->Arg(15);
BENCHMARK(BM_Apply_DIAGINDEX)->Arg(12)->Arg(15);

// User-defined index-unary op (function-pointer dispatch) for contrast
// with the predefined ones — quantifies Table IV's value beyond custom
// operators.
void my_triu_gt(void* out, const void* in, GrB_Index* indices, GrB_Index,
                const void* s) {
  double a, sv;
  std::memcpy(&a, in, 8);
  std::memcpy(&sv, s, 8);
  bool z = indices[1] > indices[0] && a > sv;
  std::memcpy(out, &z, sizeof(bool));
}

void BM_Select_UserDefinedOp(benchmark::State& state) {
  GrB_Matrix a = benchutil::rmat(static_cast<int>(state.range(0)), 8);
  GrB_Index n, nnz;
  BENCH_TRY(GrB_Matrix_nrows(&n, a));
  BENCH_TRY(GrB_Matrix_nvals(&nnz, a));
  GrB_IndexUnaryOp op = nullptr;
  BENCH_TRY(GrB_IndexUnaryOp_new(&op, &my_triu_gt, GrB_BOOL, GrB_FP64,
                                 GrB_FP64));
  GrB_Matrix c = nullptr;
  BENCH_TRY(GrB_Matrix_new(&c, GrB_FP64, n, n));
  for (auto _ : state) {
    BENCH_TRY(GrB_select(c, GrB_NULL, GrB_NULL, op, a, 0.5, GrB_NULL));
    BENCH_TRY(GrB_wait(c, GrB_COMPLETE));
  }
  state.SetItemsProcessed(state.iterations() * nnz);
  GrB_free(&a);
  GrB_free(&c);
  GrB_free(&op);
}
BENCHMARK(BM_Select_UserDefinedOp)->Arg(12)->Arg(15);

}  // namespace

GRB_BENCH_MAIN()
