// Experiment T3 (paper Table III / §VII.A): import/export bandwidth for
// every non-opaque format, across scales and densities.  The shape to
// observe: sparse formats cost O(nnz), dense formats O(nrows*ncols), and
// CSC pays an extra transposition relative to CSR (internal storage).
#include "bench/bench_util.hpp"

namespace {

struct Arrays {
  std::vector<GrB_Index> indptr, indices;
  std::vector<double> values;
};

Arrays exported(GrB_Matrix a, GrB_Format fmt) {
  Arrays out;
  GrB_Index np, ni, nv;
  BENCH_TRY(GrB_Matrix_exportSize(&np, &ni, &nv, fmt, a));
  out.indptr.resize(np);
  out.indices.resize(ni);
  out.values.resize(nv);
  BENCH_TRY(GrB_Matrix_export(out.indptr.data(), out.indices.data(),
                              out.values.data(), fmt, a));
  return out;
}

void run_export(benchmark::State& state, GrB_Format fmt, int scale,
                GrB_Index edge_factor) {
  GrB_Matrix a = benchutil::rmat(scale, edge_factor);
  GrB_Index np, ni, nv;
  BENCH_TRY(GrB_Matrix_exportSize(&np, &ni, &nv, fmt, a));
  std::vector<GrB_Index> indptr(np), indices(ni);
  std::vector<double> values(nv);
  for (auto _ : state) {
    BENCH_TRY(GrB_Matrix_export(indptr.data(), indices.data(),
                                values.data(), fmt, a));
    benchmark::DoNotOptimize(values.data());
  }
  GrB_Index nnz;
  BENCH_TRY(GrB_Matrix_nvals(&nnz, a));
  state.SetItemsProcessed(state.iterations() * nnz);
  state.counters["bytes_out"] =
      static_cast<double>(np * 8 + ni * 8 + nv * 8);
  GrB_free(&a);
}

void run_import(benchmark::State& state, GrB_Format fmt, int scale,
                GrB_Index edge_factor) {
  GrB_Matrix a = benchutil::rmat(scale, edge_factor);
  GrB_Index n;
  BENCH_TRY(GrB_Matrix_nrows(&n, a));
  Arrays arrays = exported(a, fmt);
  for (auto _ : state) {
    GrB_Matrix back = nullptr;
    BENCH_TRY(GrB_Matrix_import(
        &back, GrB_FP64, n, n, arrays.indptr.data(), arrays.indices.data(),
        arrays.values.data(), arrays.indptr.size(), arrays.indices.size(),
        arrays.values.size(), fmt));
    GrB_free(&back);
  }
  GrB_Index nnz;
  BENCH_TRY(GrB_Matrix_nvals(&nnz, a));
  state.SetItemsProcessed(state.iterations() * nnz);
  GrB_free(&a);
}

#define GRB_DEFINE_FORMAT_BENCH(NAME, FMT)                               \
  void BM_Export_##NAME(benchmark::State& state) {                      \
    run_export(state, FMT, static_cast<int>(state.range(0)), 8);        \
  }                                                                     \
  void BM_Import_##NAME(benchmark::State& state) {                      \
    run_import(state, FMT, static_cast<int>(state.range(0)), 8);        \
  }

GRB_DEFINE_FORMAT_BENCH(CSR, GrB_CSR_MATRIX)
GRB_DEFINE_FORMAT_BENCH(CSC, GrB_CSC_MATRIX)
GRB_DEFINE_FORMAT_BENCH(COO, GrB_COO_MATRIX)
GRB_DEFINE_FORMAT_BENCH(DenseRow, GrB_DENSE_ROW_MATRIX)
GRB_DEFINE_FORMAT_BENCH(DenseCol, GrB_DENSE_COL_MATRIX)
#undef GRB_DEFINE_FORMAT_BENCH

// Sparse formats scale with nnz: sweep scale 10..16.
BENCHMARK(BM_Export_CSR)->Arg(10)->Arg(13)->Arg(16);
BENCHMARK(BM_Import_CSR)->Arg(10)->Arg(13)->Arg(16);
BENCHMARK(BM_Export_CSC)->Arg(10)->Arg(13)->Arg(16);
BENCHMARK(BM_Import_CSC)->Arg(10)->Arg(13)->Arg(16);
BENCHMARK(BM_Export_COO)->Arg(10)->Arg(13)->Arg(16);
BENCHMARK(BM_Import_COO)->Arg(10)->Arg(13)->Arg(16);
// Dense formats scale with n^2: keep small.
BENCHMARK(BM_Export_DenseRow)->Arg(8)->Arg(10)->Arg(11);
BENCHMARK(BM_Import_DenseRow)->Arg(8)->Arg(10)->Arg(11);
BENCHMARK(BM_Export_DenseCol)->Arg(8)->Arg(10)->Arg(11);
BENCHMARK(BM_Import_DenseCol)->Arg(8)->Arg(10)->Arg(11);

void BM_Vector_ExportImport_Sparse(benchmark::State& state) {
  const GrB_Index n = GrB_Index{1} << state.range(0);
  GrB_Vector v = benchutil::sparse_vector(n, n / 8, 7);
  GrB_Index ni, nv;
  BENCH_TRY(GrB_Vector_exportSize(&ni, &nv, GrB_SPARSE_VECTOR, v));
  std::vector<GrB_Index> indices(ni);
  std::vector<double> values(nv);
  for (auto _ : state) {
    BENCH_TRY(GrB_Vector_export(indices.data(), values.data(),
                                GrB_SPARSE_VECTOR, v));
    GrB_Vector back = nullptr;
    BENCH_TRY(GrB_Vector_import(&back, GrB_FP64, n, indices.data(),
                                values.data(), ni, nv, GrB_SPARSE_VECTOR));
    GrB_free(&back);
  }
  state.SetItemsProcessed(state.iterations() * nv);
  GrB_free(&v);
}
BENCHMARK(BM_Vector_ExportImport_Sparse)->Arg(12)->Arg(16)->Arg(20);

void BM_Vector_ExportImport_Dense(benchmark::State& state) {
  const GrB_Index n = GrB_Index{1} << state.range(0);
  GrB_Vector v = benchutil::dense_vector(n, 8);
  std::vector<double> values(n);
  for (auto _ : state) {
    BENCH_TRY(GrB_Vector_export(nullptr, values.data(), GrB_DENSE_VECTOR,
                                v));
    GrB_Vector back = nullptr;
    BENCH_TRY(GrB_Vector_import(&back, GrB_FP64, n, nullptr, values.data(),
                                0, n, GrB_DENSE_VECTOR));
    GrB_free(&back);
  }
  state.SetItemsProcessed(state.iterations() * n);
  GrB_free(&v);
}
BENCHMARK(BM_Vector_ExportImport_Dense)->Arg(12)->Arg(16);

void BM_ExportHint(benchmark::State& state) {
  GrB_Matrix a = benchutil::rmat(10, 8);
  for (auto _ : state) {
    GrB_Format hint;
    BENCH_TRY(GrB_Matrix_exportHint(&hint, a));
    benchmark::DoNotOptimize(hint);
  }
  GrB_free(&a);
}
BENCHMARK(BM_ExportHint);

}  // namespace

GRB_BENCH_MAIN()
