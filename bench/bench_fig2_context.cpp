// Experiment F2 (paper Figure 2 / §IV): execution contexts.
//  * mxm under contexts configured with 1..8 threads (the resource knob
//    the GrB_Context exists to expose);
//  * context lifecycle micro-costs (new/switch/free) and nesting depth.
#include "bench/bench_util.hpp"

namespace {

void BM_MxmUnderContextThreads(benchmark::State& state) {
  GrB_ContextConfig cfg;
  cfg.nthreads = static_cast<int>(state.range(0));
  cfg.chunk = 256;
  GrB_Context ctx = nullptr;
  BENCH_TRY(GrB_Context_new(&ctx, GrB_NONBLOCKING, GrB_NULL, &cfg));
  grb::RmatParams params;
  GrB_Matrix a = nullptr;
  // Scale 14 x factor 8 ~ 130k edges: comfortably above the serial-fallback
  // threshold, so every thread count exercises the parallel kernels.
  BENCH_TRY((GrB_Info)grb::rmat_matrix(&a, 14, 8, params, ctx));
  GrB_Index n;
  BENCH_TRY(GrB_Matrix_nrows(&n, a));
  GrB_Matrix c = nullptr;
  BENCH_TRY(GrB_Matrix_new(&c, GrB_FP64, n, n, ctx));
  for (auto _ : state) {
    BENCH_TRY(GrB_mxm(c, GrB_NULL, GrB_NULL, GrB_PLUS_TIMES_SEMIRING_FP64,
                      a, a, GrB_NULL));
    BENCH_TRY(GrB_wait(c, GrB_COMPLETE));
  }
  GrB_Index nnz;
  BENCH_TRY(GrB_Matrix_nvals(&nnz, a));
  state.SetItemsProcessed(state.iterations() * nnz);
  state.counters["threads"] = static_cast<double>(cfg.nthreads);
  GrB_free(&a);
  GrB_free(&c);
  GrB_free(&ctx);
}
BENCHMARK(BM_MxmUnderContextThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_ContextNewFree(benchmark::State& state) {
  GrB_ContextConfig cfg;
  cfg.nthreads = 2;
  for (auto _ : state) {
    GrB_Context ctx = nullptr;
    BENCH_TRY(GrB_Context_new(&ctx, GrB_NONBLOCKING, GrB_NULL, &cfg));
    benchmark::DoNotOptimize(ctx);
    BENCH_TRY(GrB_free(&ctx));
  }
}
BENCHMARK(BM_ContextNewFree);

void BM_ContextSwitch(benchmark::State& state) {
  GrB_Context ctx = nullptr;
  BENCH_TRY(GrB_Context_new(&ctx, GrB_NONBLOCKING, GrB_NULL, GrB_NULL));
  GrB_Vector v = nullptr;
  BENCH_TRY(GrB_Vector_new(&v, GrB_FP64, 1024));
  BENCH_TRY(GrB_Vector_setElement(v, 1.0, 3));
  bool in_top = true;
  for (auto _ : state) {
    BENCH_TRY(GrB_Context_switch(v, in_top ? ctx : GrB_NULL));
    in_top = !in_top;
  }
  BENCH_TRY(GrB_Context_switch(v, GrB_NULL));
  GrB_free(&v);
  GrB_free(&ctx);
}
BENCHMARK(BM_ContextSwitch);

void BM_NestedContextResolution(benchmark::State& state) {
  // Thread-count resolution walks the ancestor chain: measure depth cost.
  const int depth = static_cast<int>(state.range(0));
  std::vector<GrB_Context> chain;
  GrB_Context parent = GrB_NULL;
  for (int d = 0; d < depth; ++d) {
    GrB_Context ctx = nullptr;
    BENCH_TRY(GrB_Context_new(&ctx, GrB_NONBLOCKING, parent, GrB_NULL));
    chain.push_back(ctx);
    parent = ctx;
  }
  GrB_Context leaf = chain.empty() ? GrB_NULL : chain.back();
  GrB_Vector v = nullptr;
  BENCH_TRY(GrB_Vector_new(&v, GrB_FP64, 64, leaf));
  GrB_Vector w = nullptr;
  BENCH_TRY(GrB_Vector_new(&w, GrB_FP64, 64, leaf));
  BENCH_TRY(GrB_Vector_setElement(v, 1.0, 1));
  for (auto _ : state) {
    BENCH_TRY(GrB_apply(w, GrB_NULL, GrB_NULL, GrB_AINV_FP64, v,
                        GrB_NULL));
    BENCH_TRY(GrB_wait(w, GrB_COMPLETE));
  }
  GrB_free(&v);
  GrB_free(&w);
  for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
    GrB_Context c = *it;
    BENCH_TRY(GrB_free(&c));
  }
}
BENCHMARK(BM_NestedContextResolution)->Arg(0)->Arg(2)->Arg(8);

void BM_BlockingVsNonblockingDispatch(benchmark::State& state) {
  // Per-call dispatch overhead of the two modes on a tiny operation.
  const bool blocking = state.range(0) == 1;
  GrB_Context ctx = nullptr;
  BENCH_TRY(GrB_Context_new(&ctx, blocking ? GrB_BLOCKING : GrB_NONBLOCKING,
                            GrB_NULL, GrB_NULL));
  GrB_Vector u = nullptr, w = nullptr;
  BENCH_TRY(GrB_Vector_new(&u, GrB_FP64, 16, ctx));
  BENCH_TRY(GrB_Vector_new(&w, GrB_FP64, 16, ctx));
  BENCH_TRY(GrB_Vector_setElement(u, 1.0, 5));
  BENCH_TRY(GrB_wait(u, GrB_COMPLETE));
  for (auto _ : state) {
    BENCH_TRY(GrB_apply(w, GrB_NULL, GrB_NULL, GrB_AINV_FP64, u, GrB_NULL));
    if (!blocking) BENCH_TRY(GrB_wait(w, GrB_COMPLETE));
  }
  state.counters["blocking"] = blocking ? 1 : 0;
  GrB_free(&u);
  GrB_free(&w);
  GrB_free(&ctx);
}
BENCHMARK(BM_BlockingVsNonblockingDispatch)->Arg(0)->Arg(1);

}  // namespace

GRB_BENCH_MAIN()
