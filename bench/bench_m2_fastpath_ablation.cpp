// Experiment M2 (Motivation §II): "a function pointer call required for
// each scalar operation" is a real performance penalty.  The same
// kernels run with the statically typed fast path and with the generic
// function-pointer path; user-defined operators can only ever get the
// latter, which is why 2.0 adds predefined index ops instead of making
// users write unpacking operators.
#include "bench/bench_util.hpp"

#include "ops/mxm.hpp"

namespace {

struct FastpathGuard {
  explicit FastpathGuard(bool enabled) { grb::set_fastpath_enabled(enabled); }
  ~FastpathGuard() { grb::set_fastpath_enabled(true); }
};

void run_mxm(benchmark::State& state, bool fast) {
  FastpathGuard guard(fast);
  GrB_Matrix a = benchutil::rmat(static_cast<int>(state.range(0)), 8);
  GrB_Index n, nnz;
  BENCH_TRY(GrB_Matrix_nrows(&n, a));
  BENCH_TRY(GrB_Matrix_nvals(&nnz, a));
  GrB_Matrix c = nullptr;
  BENCH_TRY(GrB_Matrix_new(&c, GrB_FP64, n, n));
  for (auto _ : state) {
    BENCH_TRY(GrB_mxm(c, GrB_NULL, GrB_NULL, GrB_PLUS_TIMES_SEMIRING_FP64,
                      a, a, GrB_NULL));
    BENCH_TRY(GrB_wait(c, GrB_COMPLETE));
  }
  state.SetItemsProcessed(state.iterations() * nnz);
  state.counters["fastpath"] = fast ? 1 : 0;
  GrB_free(&a);
  GrB_free(&c);
}

void BM_Mxm_TypedFastPath(benchmark::State& state) { run_mxm(state, true); }
void BM_Mxm_FunctionPointerPath(benchmark::State& state) {
  run_mxm(state, false);
}
BENCHMARK(BM_Mxm_TypedFastPath)->Arg(10)->Arg(12)->Arg(14);
BENCHMARK(BM_Mxm_FunctionPointerPath)->Arg(10)->Arg(12)->Arg(14);

void run_mxv(benchmark::State& state, bool fast) {
  FastpathGuard guard(fast);
  GrB_Matrix a = benchutil::rmat(static_cast<int>(state.range(0)), 8);
  GrB_Index n, nnz;
  BENCH_TRY(GrB_Matrix_nrows(&n, a));
  BENCH_TRY(GrB_Matrix_nvals(&nnz, a));
  GrB_Vector u = benchutil::dense_vector(n, 3);
  GrB_Vector w = nullptr;
  BENCH_TRY(GrB_Vector_new(&w, GrB_FP64, n));
  for (auto _ : state) {
    BENCH_TRY(GrB_mxv(w, GrB_NULL, GrB_NULL, GrB_PLUS_TIMES_SEMIRING_FP64,
                      a, u, GrB_NULL));
    BENCH_TRY(GrB_wait(w, GrB_COMPLETE));
  }
  state.SetItemsProcessed(state.iterations() * nnz);
  state.counters["fastpath"] = fast ? 1 : 0;
  GrB_free(&a);
  GrB_free(&u);
  GrB_free(&w);
}

void BM_Mxv_TypedFastPath(benchmark::State& state) { run_mxv(state, true); }
void BM_Mxv_FunctionPointerPath(benchmark::State& state) {
  run_mxv(state, false);
}
BENCHMARK(BM_Mxv_TypedFastPath)->Arg(12)->Arg(15)->Arg(17);
BENCHMARK(BM_Mxv_FunctionPointerPath)->Arg(12)->Arg(15)->Arg(17);

void run_vxm(benchmark::State& state, bool fast) {
  FastpathGuard guard(fast);
  GrB_Matrix a = benchutil::rmat(static_cast<int>(state.range(0)), 8);
  GrB_Index n, nnz;
  BENCH_TRY(GrB_Matrix_nrows(&n, a));
  BENCH_TRY(GrB_Matrix_nvals(&nnz, a));
  GrB_Vector u = benchutil::sparse_vector(n, n / 16, 4);
  GrB_Vector w = nullptr;
  BENCH_TRY(GrB_Vector_new(&w, GrB_FP64, n));
  for (auto _ : state) {
    BENCH_TRY(GrB_vxm(w, GrB_NULL, GrB_NULL, GrB_MIN_PLUS_SEMIRING_FP64, u,
                      a, GrB_NULL));
    BENCH_TRY(GrB_wait(w, GrB_COMPLETE));
  }
  state.SetItemsProcessed(state.iterations() * (nnz / 16));
  state.counters["fastpath"] = fast ? 1 : 0;
  GrB_free(&a);
  GrB_free(&u);
  GrB_free(&w);
}

void BM_Vxm_TypedFastPath(benchmark::State& state) { run_vxm(state, true); }
void BM_Vxm_FunctionPointerPath(benchmark::State& state) {
  run_vxm(state, false);
}
BENCHMARK(BM_Vxm_TypedFastPath)->Arg(12)->Arg(15)->Arg(17);
BENCHMARK(BM_Vxm_FunctionPointerPath)->Arg(12)->Arg(15)->Arg(17);

// The fully user-defined semiring: always on the function-pointer path,
// whatever the dispatcher does — the §II floor for custom algebra.
void user_plus(void* z, const void* x, const void* y) {
  double a, b;
  std::memcpy(&a, x, 8);
  std::memcpy(&b, y, 8);
  double r = a + b;
  std::memcpy(z, &r, 8);
}
void user_times(void* z, const void* x, const void* y) {
  double a, b;
  std::memcpy(&a, x, 8);
  std::memcpy(&b, y, 8);
  double r = a * b;
  std::memcpy(z, &r, 8);
}

void BM_Mxm_UserDefinedSemiring(benchmark::State& state) {
  GrB_BinaryOp plus = nullptr, times = nullptr;
  BENCH_TRY(GrB_BinaryOp_new(&plus, &user_plus, GrB_FP64, GrB_FP64,
                             GrB_FP64));
  BENCH_TRY(GrB_BinaryOp_new(&times, &user_times, GrB_FP64, GrB_FP64,
                             GrB_FP64));
  GrB_Monoid add = nullptr;
  BENCH_TRY(GrB_Monoid_new(&add, plus, 0.0));
  GrB_Semiring ring = nullptr;
  BENCH_TRY(GrB_Semiring_new(&ring, add, times));
  GrB_Matrix a = benchutil::rmat(static_cast<int>(state.range(0)), 8);
  GrB_Index n, nnz;
  BENCH_TRY(GrB_Matrix_nrows(&n, a));
  BENCH_TRY(GrB_Matrix_nvals(&nnz, a));
  GrB_Matrix c = nullptr;
  BENCH_TRY(GrB_Matrix_new(&c, GrB_FP64, n, n));
  for (auto _ : state) {
    BENCH_TRY(GrB_mxm(c, GrB_NULL, GrB_NULL, ring, a, a, GrB_NULL));
    BENCH_TRY(GrB_wait(c, GrB_COMPLETE));
  }
  state.SetItemsProcessed(state.iterations() * nnz);
  GrB_free(&a);
  GrB_free(&c);
  GrB_free(&ring);
  GrB_free(&add);
  GrB_free(&plus);
  GrB_free(&times);
}
BENCHMARK(BM_Mxm_UserDefinedSemiring)->Arg(10)->Arg(12)->Arg(14);

}  // namespace

GRB_BENCH_MAIN()
