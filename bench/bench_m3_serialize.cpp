// Experiment M3 (§VII.B): "implementations [may] use custom serialization
// mechanisms, which can save both space and compute time."  The opaque
// varint-delta serializer vs the non-opaque CSR export round-trip, in
// bytes and nanoseconds.
#include "bench/bench_util.hpp"

namespace {

void BM_Serialize(benchmark::State& state) {
  GrB_Matrix a = benchutil::rmat(static_cast<int>(state.range(0)), 8);
  GrB_Index nnz;
  BENCH_TRY(GrB_Matrix_nvals(&nnz, a));
  GrB_Index size = 0;
  BENCH_TRY(GrB_Matrix_serializeSize(&size, a));
  std::vector<char> buf(size);
  for (auto _ : state) {
    GrB_Index written = size;
    BENCH_TRY(GrB_Matrix_serialize(buf.data(), &written, a));
    benchmark::DoNotOptimize(buf.data());
  }
  state.SetItemsProcessed(state.iterations() * nnz);
  state.counters["bytes"] = static_cast<double>(size);
  state.counters["bytes_per_entry"] =
      static_cast<double>(size) / static_cast<double>(nnz);
  GrB_free(&a);
}
BENCHMARK(BM_Serialize)->Arg(10)->Arg(13)->Arg(16);

void BM_Deserialize(benchmark::State& state) {
  GrB_Matrix a = benchutil::rmat(static_cast<int>(state.range(0)), 8);
  GrB_Index nnz;
  BENCH_TRY(GrB_Matrix_nvals(&nnz, a));
  GrB_Index size = 0;
  BENCH_TRY(GrB_Matrix_serializeSize(&size, a));
  std::vector<char> buf(size);
  GrB_Index written = size;
  BENCH_TRY(GrB_Matrix_serialize(buf.data(), &written, a));
  for (auto _ : state) {
    GrB_Matrix back = nullptr;
    BENCH_TRY(GrB_Matrix_deserialize(&back, GrB_NULL, buf.data(), written));
    GrB_free(&back);
  }
  state.SetItemsProcessed(state.iterations() * nnz);
  GrB_free(&a);
}
BENCHMARK(BM_Deserialize)->Arg(10)->Arg(13)->Arg(16);

void BM_CsrExportRoundTrip(benchmark::State& state) {
  // The non-opaque alternative a distributed application would otherwise
  // use for "send this matrix over the wire".
  GrB_Matrix a = benchutil::rmat(static_cast<int>(state.range(0)), 8);
  GrB_Index n, nnz;
  BENCH_TRY(GrB_Matrix_nrows(&n, a));
  BENCH_TRY(GrB_Matrix_nvals(&nnz, a));
  GrB_Index np, ni, nv;
  BENCH_TRY(GrB_Matrix_exportSize(&np, &ni, &nv, GrB_CSR_MATRIX, a));
  std::vector<GrB_Index> indptr(np), indices(ni);
  std::vector<double> values(nv);
  for (auto _ : state) {
    BENCH_TRY(GrB_Matrix_export(indptr.data(), indices.data(),
                                values.data(), GrB_CSR_MATRIX, a));
    GrB_Matrix back = nullptr;
    BENCH_TRY(GrB_Matrix_import(&back, GrB_FP64, n, n, indptr.data(),
                                indices.data(), values.data(), np, ni, nv,
                                GrB_CSR_MATRIX));
    GrB_free(&back);
  }
  state.SetItemsProcessed(state.iterations() * nnz);
  state.counters["bytes"] = static_cast<double>((np + ni + nv) * 8);
  state.counters["bytes_per_entry"] =
      static_cast<double>((np + ni + nv) * 8) / static_cast<double>(nnz);
  GrB_free(&a);
}
BENCHMARK(BM_CsrExportRoundTrip)->Arg(10)->Arg(13)->Arg(16);

void BM_SerializeRoundTrip(benchmark::State& state) {
  // Apples-to-apples with BM_CsrExportRoundTrip: serialize + deserialize.
  GrB_Matrix a = benchutil::rmat(static_cast<int>(state.range(0)), 8);
  GrB_Index nnz;
  BENCH_TRY(GrB_Matrix_nvals(&nnz, a));
  GrB_Index size = 0;
  BENCH_TRY(GrB_Matrix_serializeSize(&size, a));
  std::vector<char> buf(size);
  for (auto _ : state) {
    GrB_Index written = size;
    BENCH_TRY(GrB_Matrix_serialize(buf.data(), &written, a));
    GrB_Matrix back = nullptr;
    BENCH_TRY(GrB_Matrix_deserialize(&back, GrB_NULL, buf.data(), written));
    GrB_free(&back);
  }
  state.SetItemsProcessed(state.iterations() * nnz);
  state.counters["bytes"] = static_cast<double>(size);
  GrB_free(&a);
}
BENCHMARK(BM_SerializeRoundTrip)->Arg(10)->Arg(13)->Arg(16);

void BM_SerializeVector(benchmark::State& state) {
  const GrB_Index n = GrB_Index{1} << state.range(0);
  GrB_Vector v = benchutil::sparse_vector(n, n / 8, 5);
  GrB_Index size = 0;
  BENCH_TRY(GrB_Vector_serializeSize(&size, v));
  std::vector<char> buf(size);
  for (auto _ : state) {
    GrB_Index written = size;
    BENCH_TRY(GrB_Vector_serialize(buf.data(), &written, v));
    GrB_Vector back = nullptr;
    BENCH_TRY(GrB_Vector_deserialize(&back, GrB_NULL, buf.data(), written));
    GrB_free(&back);
  }
  state.SetItemsProcessed(state.iterations() * (n / 8));
  state.counters["bytes"] = static_cast<double>(size);
  GrB_free(&v);
}
BENCHMARK(BM_SerializeVector)->Arg(14)->Arg(18);

}  // namespace

GRB_BENCH_MAIN()
