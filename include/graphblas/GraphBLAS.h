// GraphBLAS.h — the GraphBLAS 2.0 C API of
//   "Introduction to GraphBLAS 2.0", Brock, Buluç, Mattson, McMillan,
//   Moreira, IPDPSW 2021.
//
// This header is compiled as C++ so the polymorphic GrB_* names of the
// specification (realized with _Generic in a pure-C binding, and shown as
// overload-style signatures in the paper) are plain overloads.  Every
// enumeration the spec pins numeric values for (GrB_Info, GrB_Format,
// GrB_Mode, GrB_WaitMode — paper §IX) uses exactly those values.
//
// Handles are opaque pointers into the grb:: core library.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <new>
#include <type_traits>

#include "containers/format.hpp"
#include "containers/matrix.hpp"
#include "containers/scalar.hpp"
#include "containers/vector.hpp"
#include "core/descriptor.hpp"
#include "core/global.hpp"
#include "io/import_export.hpp"
#include "io/serialize.hpp"
#include "obs/decision.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/memory.hpp"
#include "obs/telemetry.hpp"
#include "ops/common.hpp"

// ---------------------------------------------------------------------------
// Handles and basic types
// ---------------------------------------------------------------------------

typedef uint64_t GrB_Index;
typedef const grb::Type* GrB_Type;
typedef const grb::UnaryOp* GrB_UnaryOp;
typedef const grb::BinaryOp* GrB_BinaryOp;
typedef const grb::IndexUnaryOp* GrB_IndexUnaryOp;
typedef const grb::Monoid* GrB_Monoid;
typedef const grb::Semiring* GrB_Semiring;
typedef const grb::Descriptor* GrB_Descriptor;
typedef grb::Scalar* GrB_Scalar;
typedef grb::Vector* GrB_Vector;
typedef grb::Matrix* GrB_Matrix;
typedef grb::Context* GrB_Context;

#define GrB_NULL nullptr

// GrB_ALL: "all indices" sentinel for extract/assign index lists.
inline const GrB_Index* const GrB_ALL = grb::all_indices();

inline constexpr GrB_Index GrB_INDEX_MAX = grb::kIndexMax;

// ---------------------------------------------------------------------------
// Enumerations (values pinned per §IX)
// ---------------------------------------------------------------------------

enum GrB_Info {
  GrB_SUCCESS = 0,
  GrB_NO_VALUE = 1,
  // API errors
  GrB_UNINITIALIZED_OBJECT = -1,
  GrB_NULL_POINTER = -2,
  GrB_INVALID_VALUE = -3,
  GrB_INVALID_INDEX = -4,
  GrB_DOMAIN_MISMATCH = -5,
  GrB_DIMENSION_MISMATCH = -6,
  GrB_OUTPUT_NOT_EMPTY = -7,
  GrB_NOT_IMPLEMENTED = -8,
  // execution errors
  GrB_PANIC = -101,
  GrB_OUT_OF_MEMORY = -102,
  GrB_INSUFFICIENT_SPACE = -103,
  GrB_INVALID_OBJECT = -104,
  GrB_INDEX_OUT_OF_BOUNDS = -105,
  GrB_EMPTY_OBJECT = -106,
};

enum GrB_Mode {
  GrB_NONBLOCKING = 0,
  GrB_BLOCKING = 1,
};

enum GrB_WaitMode {
  GrB_COMPLETE = 0,
  GrB_MATERIALIZE = 1,
};

// Non-opaque formats for import/export (paper Table III).
enum GrB_Format {
  GrB_CSR_MATRIX = 0,
  GrB_CSC_MATRIX = 1,
  GrB_COO_MATRIX = 2,
  GrB_DENSE_ROW_MATRIX = 3,
  GrB_DENSE_COL_MATRIX = 4,
  GrB_SPARSE_VECTOR = 5,
  GrB_DENSE_VECTOR = 6,
};

enum GrB_Desc_Field {
  GrB_OUTP = 0,
  GrB_MASK = 1,
  GrB_INP0 = 2,
  GrB_INP1 = 3,
};

enum GrB_Desc_Value {
  GrB_DEFAULT = 0,
  GrB_REPLACE = 1,
  GrB_COMP = 2,
  GrB_STRUCTURE = 4,
  GrB_TRAN = 8,
};

namespace grb_detail {

inline GrB_Info to_c(grb::Info info) {
  return static_cast<GrB_Info>(static_cast<int>(info));
}
inline grb::Mode to_mode(GrB_Mode m) {
  return m == GrB_BLOCKING ? grb::Mode::kBlocking : grb::Mode::kNonblocking;
}
inline grb::WaitMode to_wait(GrB_WaitMode m) {
  return m == GrB_MATERIALIZE ? grb::WaitMode::kMaterialize
                              : grb::WaitMode::kComplete;
}
inline grb::Format to_format(GrB_Format f) {
  return static_cast<grb::Format>(static_cast<int>(f));
}

// Arithmetic scalar arguments of polymorphic methods map to their
// GraphBLAS domain via grb::type_of<T>.
template <class T>
inline constexpr bool is_grb_scalar_v =
    std::is_arithmetic_v<std::remove_cv_t<std::remove_reference_t<T>>>;

// Catch-all veneer for the C boundary: the GraphBLAS C API is a no-throw
// interface, so no C++ exception may escape a GrB_* entry point.  The only
// exceptions the grb:: core can surface are allocation failure (mapped to
// the GrB_OUT_OF_MEMORY execution error) and the unexpected, which the
// spec's error model reserves GrB_PANIC for.  Every GrB_*/GxB_* function
// body is `return grb_detail::guarded([&]() -> GrB_Info { ... });` — a
// property tools/grb_lint.py enforces.
template <class F>
inline GrB_Info run_caught(F&& body) noexcept {
  try {
    return static_cast<F&&>(body)();
  } catch (const std::bad_alloc&) {
    return GrB_OUT_OF_MEMORY;
  } catch (...) {
    return GrB_PANIC;
  }
}

// Default-argument trick: evaluated at the call site, so `name` is the
// GrB_*/GxB_* entry point that invoked the veneer — telemetry spans and
// counters cover every entry point with no per-call-site edits.
#if defined(__clang__) || defined(__GNUC__)
#define GRB_DETAIL_CALLER() __builtin_FUNCTION()
#else
#define GRB_DETAIL_CALLER() "GrB_call"
#endif

// The veneer doubles as the observability hook for the whole C API
// surface.  It unconditionally publishes the entry-point name to the
// thread-local current-op slot (this powers deferred-error diagnostics —
// GrB_error names the failing method — so it is part of the error model,
// and costs two TLS stores).  Everything else is behind one relaxed
// atomic flag load: with every instrument off the body runs exactly as
// before.  With only the flight recorder on (the default), the extra
// cost is one ring-slot write per entry — no clock read, no counter
// registry.  Stats/trace add the timed path.
template <class F>
inline GrB_Info guarded(F&& body,
                        const char* name = GRB_DETAIL_CALLER()) noexcept {
  grb::obs::CurrentOpScope op_scope(name);
  const uint32_t f = grb::obs::flags();
  if (f == 0u) return run_caught(static_cast<F&&>(body));
  if ((f & grb::obs::kFlightFlag) != 0u)
    grb::obs::fr_record(grb::obs::FrKind::kApiEnter, name, 0);
  if ((f & (grb::obs::kStatsFlag | grb::obs::kTraceFlag)) == 0u) {
    GrB_Info info = run_caught(static_cast<F&&>(body));
    grb::obs::fr_api_result(name, static_cast<int32_t>(info));
    return info;
  }
  const uint64_t t0 = grb::obs::now_ns();
  GrB_Info info = run_caught(static_cast<F&&>(body));
  grb::obs::api_return(name, t0, static_cast<int>(info) < 0);
  grb::obs::fr_api_result(name, static_cast<int32_t>(info));
  return info;
}

}  // namespace grb_detail

// ---------------------------------------------------------------------------
// Predefined types
// ---------------------------------------------------------------------------

inline const GrB_Type GrB_BOOL = grb::TypeBool();
inline const GrB_Type GrB_INT8 = grb::TypeInt8();
inline const GrB_Type GrB_UINT8 = grb::TypeUInt8();
inline const GrB_Type GrB_INT16 = grb::TypeInt16();
inline const GrB_Type GrB_UINT16 = grb::TypeUInt16();
inline const GrB_Type GrB_INT32 = grb::TypeInt32();
inline const GrB_Type GrB_UINT32 = grb::TypeUInt32();
inline const GrB_Type GrB_INT64 = grb::TypeInt64();
inline const GrB_Type GrB_UINT64 = grb::TypeUInt64();
inline const GrB_Type GrB_FP32 = grb::TypeFP32();
inline const GrB_Type GrB_FP64 = grb::TypeFP64();

// ---------------------------------------------------------------------------
// Predefined operators, monoids, semirings
// ---------------------------------------------------------------------------

#define GRB_BINOP(NAME, CODE, T, TC)                                    \
  inline const GrB_BinaryOp NAME##_##T =                                \
      grb::get_binary_op(grb::BinOpCode::CODE, grb::TypeCode::TC);
#define GRB_UNOP(NAME, CODE, T, TC)                                     \
  inline const GrB_UnaryOp NAME##_##T =                                 \
      grb::get_unary_op(grb::UnOpCode::CODE, grb::TypeCode::TC);
#define GRB_MONOID(NAME, CODE, T, TC)                                   \
  inline const GrB_Monoid NAME##_MONOID_##T =                           \
      grb::get_monoid(grb::BinOpCode::CODE, grb::TypeCode::TC);

#define GRB_FOR_EACH_TYPE(X)                                            \
  X(BOOL, kBool)                                                        \
  X(INT8, kInt8)                                                        \
  X(UINT8, kUInt8)                                                      \
  X(INT16, kInt16)                                                      \
  X(UINT16, kUInt16)                                                    \
  X(INT32, kInt32)                                                      \
  X(UINT32, kUInt32)                                                    \
  X(INT64, kInt64)                                                      \
  X(UINT64, kUInt64)                                                    \
  X(FP32, kFP32)                                                        \
  X(FP64, kFP64)

#define GRB_FOR_EACH_NUMERIC_TYPE(X)                                    \
  X(INT8, kInt8)                                                        \
  X(UINT8, kUInt8)                                                      \
  X(INT16, kInt16)                                                      \
  X(UINT16, kUInt16)                                                    \
  X(INT32, kInt32)                                                      \
  X(UINT32, kUInt32)                                                    \
  X(INT64, kInt64)                                                      \
  X(UINT64, kUInt64)                                                    \
  X(FP32, kFP32)                                                        \
  X(FP64, kFP64)

#define GRB_DEFINE_OPS_FOR(T, TC)                                       \
  GRB_BINOP(GrB_FIRST, kFirst, T, TC)                                   \
  GRB_BINOP(GrB_SECOND, kSecond, T, TC)                                 \
  GRB_BINOP(GrB_ONEB, kOneb, T, TC)                                     \
  GRB_BINOP(GrB_MIN, kMin, T, TC)                                       \
  GRB_BINOP(GrB_MAX, kMax, T, TC)                                       \
  GRB_BINOP(GrB_PLUS, kPlus, T, TC)                                     \
  GRB_BINOP(GrB_MINUS, kMinus, T, TC)                                   \
  GRB_BINOP(GrB_TIMES, kTimes, T, TC)                                   \
  GRB_BINOP(GrB_DIV, kDiv, T, TC)                                       \
  GRB_BINOP(GrB_EQ, kEq, T, TC)                                         \
  GRB_BINOP(GrB_NE, kNe, T, TC)                                         \
  GRB_BINOP(GrB_GT, kGt, T, TC)                                         \
  GRB_BINOP(GrB_LT, kLt, T, TC)                                         \
  GRB_BINOP(GrB_GE, kGe, T, TC)                                         \
  GRB_BINOP(GrB_LE, kLe, T, TC)                                         \
  GRB_UNOP(GrB_IDENTITY, kIdentity, T, TC)                              \
  GRB_UNOP(GrB_AINV, kAinv, T, TC)                                      \
  GRB_UNOP(GrB_MINV, kMinv, T, TC)                                      \
  GRB_UNOP(GrB_ABS, kAbs, T, TC)

GRB_FOR_EACH_TYPE(GRB_DEFINE_OPS_FOR)
#undef GRB_DEFINE_OPS_FOR

inline const GrB_BinaryOp GrB_LOR =
    grb::get_binary_op(grb::BinOpCode::kLor, grb::TypeCode::kBool);
inline const GrB_BinaryOp GrB_LAND =
    grb::get_binary_op(grb::BinOpCode::kLand, grb::TypeCode::kBool);
inline const GrB_BinaryOp GrB_LXOR =
    grb::get_binary_op(grb::BinOpCode::kLxor, grb::TypeCode::kBool);
inline const GrB_BinaryOp GrB_LXNOR =
    grb::get_binary_op(grb::BinOpCode::kLxnor, grb::TypeCode::kBool);
inline const GrB_UnaryOp GrB_LNOT =
    grb::get_unary_op(grb::UnOpCode::kLnot, grb::TypeCode::kBool);

#define GRB_DEFINE_BITWISE_FOR(T, TC)                                   \
  GRB_BINOP(GrB_BOR, kBor, T, TC)                                       \
  GRB_BINOP(GrB_BAND, kBand, T, TC)                                     \
  GRB_BINOP(GrB_BXOR, kBxor, T, TC)                                     \
  GRB_BINOP(GrB_BXNOR, kBxnor, T, TC)                                   \
  GRB_UNOP(GrB_BNOT, kBnot, T, TC)
GRB_DEFINE_BITWISE_FOR(INT8, kInt8)
GRB_DEFINE_BITWISE_FOR(UINT8, kUInt8)
GRB_DEFINE_BITWISE_FOR(INT16, kInt16)
GRB_DEFINE_BITWISE_FOR(UINT16, kUInt16)
GRB_DEFINE_BITWISE_FOR(INT32, kInt32)
GRB_DEFINE_BITWISE_FOR(UINT32, kUInt32)
GRB_DEFINE_BITWISE_FOR(INT64, kInt64)
GRB_DEFINE_BITWISE_FOR(UINT64, kUInt64)
#undef GRB_DEFINE_BITWISE_FOR

#define GRB_DEFINE_MONOIDS_FOR(T, TC)                                   \
  GRB_MONOID(GrB_PLUS, kPlus, T, TC)                                    \
  GRB_MONOID(GrB_TIMES, kTimes, T, TC)                                  \
  GRB_MONOID(GrB_MIN, kMin, T, TC)                                      \
  GRB_MONOID(GrB_MAX, kMax, T, TC)
GRB_FOR_EACH_NUMERIC_TYPE(GRB_DEFINE_MONOIDS_FOR)
#undef GRB_DEFINE_MONOIDS_FOR

inline const GrB_Monoid GrB_LOR_MONOID_BOOL =
    grb::get_monoid(grb::BinOpCode::kLor, grb::TypeCode::kBool);
inline const GrB_Monoid GrB_LAND_MONOID_BOOL =
    grb::get_monoid(grb::BinOpCode::kLand, grb::TypeCode::kBool);
inline const GrB_Monoid GrB_LXOR_MONOID_BOOL =
    grb::get_monoid(grb::BinOpCode::kLxor, grb::TypeCode::kBool);
inline const GrB_Monoid GrB_LXNOR_MONOID_BOOL =
    grb::get_monoid(grb::BinOpCode::kLxnor, grb::TypeCode::kBool);

#define GRB_SEMIRING(NAME, ADD, MUL, T, TC)                             \
  inline const GrB_Semiring NAME##_SEMIRING_##T = grb::get_semiring(    \
      grb::BinOpCode::ADD, grb::BinOpCode::MUL, grb::TypeCode::TC);
#define GRB_DEFINE_SEMIRINGS_FOR(T, TC)                                 \
  GRB_SEMIRING(GrB_PLUS_TIMES, kPlus, kTimes, T, TC)                    \
  GRB_SEMIRING(GrB_MIN_PLUS, kMin, kPlus, T, TC)                        \
  GRB_SEMIRING(GrB_MAX_PLUS, kMax, kPlus, T, TC)                        \
  GRB_SEMIRING(GrB_MIN_TIMES, kMin, kTimes, T, TC)                      \
  GRB_SEMIRING(GrB_MAX_TIMES, kMax, kTimes, T, TC)                      \
  GRB_SEMIRING(GrB_MIN_MAX, kMin, kMax, T, TC)                          \
  GRB_SEMIRING(GrB_MAX_MIN, kMax, kMin, T, TC)                          \
  GRB_SEMIRING(GrB_MIN_FIRST, kMin, kFirst, T, TC)                      \
  GRB_SEMIRING(GrB_MIN_SECOND, kMin, kSecond, T, TC)                    \
  GRB_SEMIRING(GrB_MAX_FIRST, kMax, kFirst, T, TC)                      \
  GRB_SEMIRING(GrB_MAX_SECOND, kMax, kSecond, T, TC)                    \
  GRB_SEMIRING(GrB_PLUS_FIRST, kPlus, kFirst, T, TC)                    \
  GRB_SEMIRING(GrB_PLUS_SECOND, kPlus, kSecond, T, TC)                  \
  GRB_SEMIRING(GrB_PLUS_MIN, kPlus, kMin, T, TC)
GRB_FOR_EACH_NUMERIC_TYPE(GRB_DEFINE_SEMIRINGS_FOR)
#undef GRB_DEFINE_SEMIRINGS_FOR

inline const GrB_Semiring GrB_LOR_LAND_SEMIRING_BOOL = grb::get_semiring(
    grb::BinOpCode::kLor, grb::BinOpCode::kLand, grb::TypeCode::kBool);
inline const GrB_Semiring GrB_LAND_LOR_SEMIRING_BOOL = grb::get_semiring(
    grb::BinOpCode::kLand, grb::BinOpCode::kLor, grb::TypeCode::kBool);
inline const GrB_Semiring GrB_LXOR_LAND_SEMIRING_BOOL = grb::get_semiring(
    grb::BinOpCode::kLxor, grb::BinOpCode::kLand, grb::TypeCode::kBool);
inline const GrB_Semiring GrB_LXNOR_LOR_SEMIRING_BOOL = grb::get_semiring(
    grb::BinOpCode::kLxnor, grb::BinOpCode::kLor, grb::TypeCode::kBool);
inline const GrB_Semiring GrB_LOR_FIRST_SEMIRING_BOOL = grb::get_semiring(
    grb::BinOpCode::kLor, grb::BinOpCode::kFirst, grb::TypeCode::kBool);
inline const GrB_Semiring GrB_LOR_SECOND_SEMIRING_BOOL = grb::get_semiring(
    grb::BinOpCode::kLor, grb::BinOpCode::kSecond, grb::TypeCode::kBool);

// Predefined index-unary operators (paper Table IV).
#define GRB_IDXOP(NAME, CODE, T, TC)                                    \
  inline const GrB_IndexUnaryOp NAME##_##T =                            \
      grb::get_index_unary_op(grb::IdxOpCode::CODE, grb::TypeCode::TC);
GRB_IDXOP(GrB_ROWINDEX, kRowIndex, INT32, kInt32)
GRB_IDXOP(GrB_ROWINDEX, kRowIndex, INT64, kInt64)
GRB_IDXOP(GrB_COLINDEX, kColIndex, INT32, kInt32)
GRB_IDXOP(GrB_COLINDEX, kColIndex, INT64, kInt64)
GRB_IDXOP(GrB_DIAGINDEX, kDiagIndex, INT32, kInt32)
GRB_IDXOP(GrB_DIAGINDEX, kDiagIndex, INT64, kInt64)

inline const GrB_IndexUnaryOp GrB_TRIL =
    grb::get_index_unary_op(grb::IdxOpCode::kTril, grb::TypeCode::kInt64);
inline const GrB_IndexUnaryOp GrB_TRIU =
    grb::get_index_unary_op(grb::IdxOpCode::kTriu, grb::TypeCode::kInt64);
inline const GrB_IndexUnaryOp GrB_DIAG =
    grb::get_index_unary_op(grb::IdxOpCode::kDiag, grb::TypeCode::kInt64);
inline const GrB_IndexUnaryOp GrB_OFFDIAG =
    grb::get_index_unary_op(grb::IdxOpCode::kOffdiag, grb::TypeCode::kInt64);
inline const GrB_IndexUnaryOp GrB_ROWLE =
    grb::get_index_unary_op(grb::IdxOpCode::kRowLE, grb::TypeCode::kInt64);
inline const GrB_IndexUnaryOp GrB_ROWGT =
    grb::get_index_unary_op(grb::IdxOpCode::kRowGT, grb::TypeCode::kInt64);
inline const GrB_IndexUnaryOp GrB_COLLE =
    grb::get_index_unary_op(grb::IdxOpCode::kColLE, grb::TypeCode::kInt64);
inline const GrB_IndexUnaryOp GrB_COLGT =
    grb::get_index_unary_op(grb::IdxOpCode::kColGT, grb::TypeCode::kInt64);

#define GRB_DEFINE_VALUE_IDXOPS_FOR(T, TC)                              \
  GRB_IDXOP(GrB_VALUEEQ, kValueEQ, T, TC)                               \
  GRB_IDXOP(GrB_VALUENE, kValueNE, T, TC)
GRB_FOR_EACH_TYPE(GRB_DEFINE_VALUE_IDXOPS_FOR)
#undef GRB_DEFINE_VALUE_IDXOPS_FOR

#define GRB_DEFINE_ORDER_IDXOPS_FOR(T, TC)                              \
  GRB_IDXOP(GrB_VALUELT, kValueLT, T, TC)                               \
  GRB_IDXOP(GrB_VALUELE, kValueLE, T, TC)                               \
  GRB_IDXOP(GrB_VALUEGT, kValueGT, T, TC)                               \
  GRB_IDXOP(GrB_VALUEGE, kValueGE, T, TC)
GRB_FOR_EACH_NUMERIC_TYPE(GRB_DEFINE_ORDER_IDXOPS_FOR)
#undef GRB_DEFINE_ORDER_IDXOPS_FOR
#undef GRB_IDXOP
#undef GRB_BINOP
#undef GRB_UNOP
#undef GRB_MONOID
#undef GRB_SEMIRING

// Predefined descriptors: bit 1 = REPLACE, 2 = COMP, 4 = STRUCTURE,
// 8 = TRAN0, 16 = TRAN1.
#define GRB_DESC(NAME, BITS)                                            \
  inline const GrB_Descriptor NAME = grb::predefined_descriptor(BITS);
GRB_DESC(GrB_DESC_R, 1)
GRB_DESC(GrB_DESC_C, 2)
GRB_DESC(GrB_DESC_S, 4)
GRB_DESC(GrB_DESC_SC, 6)
GRB_DESC(GrB_DESC_T0, 8)
GRB_DESC(GrB_DESC_T1, 16)
GRB_DESC(GrB_DESC_T0T1, 24)
GRB_DESC(GrB_DESC_RC, 3)
GRB_DESC(GrB_DESC_RS, 5)
GRB_DESC(GrB_DESC_RSC, 7)
GRB_DESC(GrB_DESC_RT0, 9)
GRB_DESC(GrB_DESC_RT1, 17)
GRB_DESC(GrB_DESC_RT0T1, 25)
GRB_DESC(GrB_DESC_CT0, 10)
GRB_DESC(GrB_DESC_CT1, 18)
GRB_DESC(GrB_DESC_ST0, 12)
GRB_DESC(GrB_DESC_ST1, 20)
GRB_DESC(GrB_DESC_SCT0, 14)
GRB_DESC(GrB_DESC_SCT1, 22)
GRB_DESC(GrB_DESC_RCT0, 11)
GRB_DESC(GrB_DESC_RST0, 13)
GRB_DESC(GrB_DESC_RSCT0, 15)
GRB_DESC(GrB_DESC_RCT1, 19)
GRB_DESC(GrB_DESC_RST1, 21)
GRB_DESC(GrB_DESC_RSCT1, 23)
GRB_DESC(GrB_DESC_CT0T1, 26)
GRB_DESC(GrB_DESC_RCT0T1, 27)
GRB_DESC(GrB_DESC_ST0T1, 28)
GRB_DESC(GrB_DESC_RST0T1, 29)
GRB_DESC(GrB_DESC_SCT0T1, 30)
GRB_DESC(GrB_DESC_RSCT0T1, 31)
#undef GRB_DESC

// ---------------------------------------------------------------------------
// Library lifecycle, contexts, wait, error
// ---------------------------------------------------------------------------

inline GrB_Info GrB_init(GrB_Mode mode) {
  return grb_detail::guarded([&]() -> GrB_Info {
    if (mode != GrB_BLOCKING && mode != GrB_NONBLOCKING)
      return GrB_INVALID_VALUE;
    return grb_detail::to_c(grb::library_init(grb_detail::to_mode(mode)));
  });
}
inline GrB_Info GrB_finalize() {
  return grb_detail::guarded([&]() -> GrB_Info {
    return grb_detail::to_c(grb::library_finalize());
  });
}
inline GrB_Info GrB_getVersion(unsigned int* version,
                               unsigned int* subversion) {
  return grb_detail::guarded([&]() -> GrB_Info {
    if (version == nullptr || subversion == nullptr) return GrB_NULL_POINTER;
    *version = grb::kVersion;
    *subversion = grb::kSubversion;
    return GrB_SUCCESS;
  });
}

// The documented implementation-defined `exec` structure (paper §IV).
typedef grb::ContextConfig GrB_ContextConfig;

inline GrB_Info GrB_Context_new(GrB_Context* ctx, GrB_Mode mode,
                                GrB_Context parent, void* exec) {
  return grb_detail::guarded([&]() -> GrB_Info {
    if (mode != GrB_BLOCKING && mode != GrB_NONBLOCKING)
      return GrB_INVALID_VALUE;
    return grb_detail::to_c(grb::context_new(
        ctx, grb_detail::to_mode(mode), parent,
        static_cast<const grb::ContextConfig*>(exec)));
  });
}
inline GrB_Info GrB_Context_switch(GrB_Matrix a, GrB_Context ctx) {
  return grb_detail::guarded([&]() -> GrB_Info {
    if (a == nullptr) return GrB_UNINITIALIZED_OBJECT;
    return grb_detail::to_c(a->switch_context(ctx));
  });
}
inline GrB_Info GrB_Context_switch(GrB_Vector v, GrB_Context ctx) {
  return grb_detail::guarded([&]() -> GrB_Info {
    if (v == nullptr) return GrB_UNINITIALIZED_OBJECT;
    return grb_detail::to_c(v->switch_context(ctx));
  });
}
inline GrB_Info GrB_Context_switch(GrB_Scalar s, GrB_Context ctx) {
  return grb_detail::guarded([&]() -> GrB_Info {
    if (s == nullptr) return GrB_UNINITIALIZED_OBJECT;
    return grb_detail::to_c(s->switch_context(ctx));
  });
}

#define GRB_DEFINE_WAIT_ERROR(HANDLE)                                   \
  inline GrB_Info GrB_wait(HANDLE obj, GrB_WaitMode mode) {             \
    return grb_detail::guarded([&]() -> GrB_Info {                      \
      if (obj == nullptr) return GrB_UNINITIALIZED_OBJECT;              \
      return grb_detail::to_c(obj->wait(grb_detail::to_wait(mode)));    \
    });                                                                 \
  }                                                                     \
  inline GrB_Info GrB_error(const char** str, HANDLE obj) {             \
    return grb_detail::guarded([&]() -> GrB_Info {                      \
      if (str == nullptr) return GrB_NULL_POINTER;                      \
      if (obj == nullptr) return GrB_UNINITIALIZED_OBJECT;              \
      *str = obj->error_string();                                       \
      return GrB_SUCCESS;                                               \
    });                                                                 \
  }
GRB_DEFINE_WAIT_ERROR(GrB_Matrix)
GRB_DEFINE_WAIT_ERROR(GrB_Vector)
GRB_DEFINE_WAIT_ERROR(GrB_Scalar)
#undef GRB_DEFINE_WAIT_ERROR

// ---------------------------------------------------------------------------
// GrB_free overloads (handle set to GrB_NULL on success)
// ---------------------------------------------------------------------------

inline GrB_Info GrB_free(GrB_Matrix* a) {
  return grb_detail::guarded([&]() -> GrB_Info {
    if (a == nullptr) return GrB_NULL_POINTER;
    GrB_Info info = grb_detail::to_c(grb::Matrix::free(*a));
    if (info == GrB_SUCCESS) *a = nullptr;
    return info;
  });
}
inline GrB_Info GrB_free(GrB_Vector* v) {
  return grb_detail::guarded([&]() -> GrB_Info {
    if (v == nullptr) return GrB_NULL_POINTER;
    GrB_Info info = grb_detail::to_c(grb::Vector::free(*v));
    if (info == GrB_SUCCESS) *v = nullptr;
    return info;
  });
}
inline GrB_Info GrB_free(GrB_Scalar* s) {
  return grb_detail::guarded([&]() -> GrB_Info {
    if (s == nullptr) return GrB_NULL_POINTER;
    GrB_Info info = grb_detail::to_c(grb::Scalar::free(*s));
    if (info == GrB_SUCCESS) *s = nullptr;
    return info;
  });
}
inline GrB_Info GrB_free(GrB_Context* ctx) {
  return grb_detail::guarded([&]() -> GrB_Info {
    if (ctx == nullptr) return GrB_NULL_POINTER;
    GrB_Info info = grb_detail::to_c(grb::context_free(*ctx));
    if (info == GrB_SUCCESS) *ctx = nullptr;
    return info;
  });
}
inline GrB_Info GrB_free(GrB_Type* t) {
  return grb_detail::guarded([&]() -> GrB_Info {
    if (t == nullptr) return GrB_NULL_POINTER;
    GrB_Info info = grb_detail::to_c(grb::type_free(*t));
    if (info == GrB_SUCCESS) *t = nullptr;
    return info;
  });
}
inline GrB_Info GrB_free(GrB_UnaryOp* op) {
  return grb_detail::guarded([&]() -> GrB_Info {
    if (op == nullptr) return GrB_NULL_POINTER;
    GrB_Info info = grb_detail::to_c(grb::unary_op_free(*op));
    if (info == GrB_SUCCESS) *op = nullptr;
    return info;
  });
}
inline GrB_Info GrB_free(GrB_BinaryOp* op) {
  return grb_detail::guarded([&]() -> GrB_Info {
    if (op == nullptr) return GrB_NULL_POINTER;
    GrB_Info info = grb_detail::to_c(grb::binary_op_free(*op));
    if (info == GrB_SUCCESS) *op = nullptr;
    return info;
  });
}
inline GrB_Info GrB_free(GrB_IndexUnaryOp* op) {
  return grb_detail::guarded([&]() -> GrB_Info {
    if (op == nullptr) return GrB_NULL_POINTER;
    GrB_Info info = grb_detail::to_c(grb::index_unary_op_free(*op));
    if (info == GrB_SUCCESS) *op = nullptr;
    return info;
  });
}
inline GrB_Info GrB_free(GrB_Monoid* m) {
  return grb_detail::guarded([&]() -> GrB_Info {
    if (m == nullptr) return GrB_NULL_POINTER;
    GrB_Info info = grb_detail::to_c(grb::monoid_free(*m));
    if (info == GrB_SUCCESS) *m = nullptr;
    return info;
  });
}
inline GrB_Info GrB_free(GrB_Semiring* s) {
  return grb_detail::guarded([&]() -> GrB_Info {
    if (s == nullptr) return GrB_NULL_POINTER;
    GrB_Info info = grb_detail::to_c(grb::semiring_free(*s));
    if (info == GrB_SUCCESS) *s = nullptr;
    return info;
  });
}
inline GrB_Info GrB_free(GrB_Descriptor* d) {
  return grb_detail::guarded([&]() -> GrB_Info {
    if (d == nullptr) return GrB_NULL_POINTER;
    GrB_Info info = grb_detail::to_c(
        grb::descriptor_free(const_cast<grb::Descriptor*>(*d)));
    if (info == GrB_SUCCESS) *d = nullptr;
    return info;
  });
}

// ---------------------------------------------------------------------------
// Type and operator constructors
// ---------------------------------------------------------------------------

inline GrB_Info GrB_Type_new(GrB_Type* type, size_t size) {
  return grb_detail::guarded([&]() -> GrB_Info {
    return grb_detail::to_c(grb::type_new(type, size));
  });
}

typedef void (*GrB_unary_function)(void*, const void*);
typedef void (*GrB_binary_function)(void*, const void*, const void*);
// Paper §VIII.A signature: (out, in, indices, n, s).
typedef void (*GrB_index_unary_function)(void*, const void*, GrB_Index*,
                                         GrB_Index, const void*);

inline GrB_Info GrB_UnaryOp_new(GrB_UnaryOp* op, GrB_unary_function fn,
                                GrB_Type ztype, GrB_Type xtype) {
  return grb_detail::guarded([&]() -> GrB_Info {
    return grb_detail::to_c(grb::unary_op_new(op, fn, ztype, xtype));
  });
}
inline GrB_Info GrB_BinaryOp_new(GrB_BinaryOp* op, GrB_binary_function fn,
                                 GrB_Type ztype, GrB_Type xtype,
                                 GrB_Type ytype) {
  return grb_detail::guarded([&]() -> GrB_Info {
    return grb_detail::to_c(grb::binary_op_new(op, fn, ztype, xtype, ytype));
  });
}
inline GrB_Info GrB_IndexUnaryOp_new(GrB_IndexUnaryOp* op,
                                     GrB_index_unary_function fn,
                                     GrB_Type d_out, GrB_Type d_in,
                                     GrB_Type d_s) {
  return grb_detail::guarded([&]() -> GrB_Info {
    return grb_detail::to_c(grb::index_unary_op_new(op, fn, d_out, d_in, d_s));
  });
}

template <class T,
          class = std::enable_if_t<grb_detail::is_grb_scalar_v<T>>>
inline GrB_Info GrB_Monoid_new(GrB_Monoid* monoid, GrB_BinaryOp op,
                               T identity) {
  return grb_detail::guarded([&]() -> GrB_Info {
    if (op == nullptr) return GrB_NULL_POINTER;
    grb::ValueBuf id(op->ztype()->size());
    if (!grb::types_compatible(op->ztype(), grb::type_of<T>()))
      return GrB_DOMAIN_MISMATCH;
    grb::cast_value(op->ztype(), id.data(), grb::type_of<T>(), &identity);
    return grb_detail::to_c(grb::monoid_new(monoid, op, id.data()));
  });
}
// UDT identity.
inline GrB_Info GrB_Monoid_new_UDT(GrB_Monoid* monoid, GrB_BinaryOp op,
                                   const void* identity) {
  return grb_detail::guarded([&]() -> GrB_Info {
    return grb_detail::to_c(grb::monoid_new(monoid, op, identity));
  });
}
// Table II: GrB_Scalar identity variant.
inline GrB_Info GrB_Monoid_new(GrB_Monoid* monoid, GrB_BinaryOp op,
                               GrB_Scalar identity) {
  return grb_detail::guarded([&]() -> GrB_Info {
    if (op == nullptr || identity == nullptr) return GrB_NULL_POINTER;
    std::shared_ptr<const grb::ScalarData> snap;
    grb::Info info = identity->snapshot(&snap);
    if (static_cast<int>(info) < 0) return grb_detail::to_c(info);
    if (!snap->present) return GrB_EMPTY_OBJECT;
    if (!grb::types_compatible(op->ztype(), snap->type))
      return GrB_DOMAIN_MISMATCH;
    grb::ValueBuf id(op->ztype()->size());
    grb::cast_value(op->ztype(), id.data(), snap->type, snap->value.data());
    return grb_detail::to_c(grb::monoid_new(monoid, op, id.data()));
  });
}

inline GrB_Info GrB_Semiring_new(GrB_Semiring* semiring, GrB_Monoid add,
                                 GrB_BinaryOp mul) {
  return grb_detail::guarded([&]() -> GrB_Info {
    return grb_detail::to_c(grb::semiring_new(semiring, add, mul));
  });
}

inline GrB_Info GrB_Descriptor_new(GrB_Descriptor* desc) {
  return grb_detail::guarded([&]() -> GrB_Info {
    if (desc == nullptr) return GrB_NULL_POINTER;
    grb::Descriptor* d = nullptr;
    GrB_Info info = grb_detail::to_c(grb::descriptor_new(&d));
    if (info == GrB_SUCCESS) *desc = d;
    return info;
  });
}
inline GrB_Info GrB_Descriptor_set(GrB_Descriptor desc, GrB_Desc_Field field,
                                   GrB_Desc_Value value) {
  return grb_detail::guarded([&]() -> GrB_Info {
    if (desc == nullptr) return GrB_UNINITIALIZED_OBJECT;
    return grb_detail::to_c(const_cast<grb::Descriptor*>(desc)->set(
        static_cast<grb::DescField>(static_cast<int>(field)),
        static_cast<grb::DescValue>(static_cast<int>(value))));
  });
}

// ---------------------------------------------------------------------------
// GrB_Scalar (paper §VI, Table I)
// ---------------------------------------------------------------------------

inline GrB_Info GrB_Scalar_new(GrB_Scalar* s, GrB_Type type) {
  return grb_detail::guarded([&]() -> GrB_Info {
    return grb_detail::to_c(grb::Scalar::new_(s, type, nullptr));
  });
}
inline GrB_Info GrB_Scalar_new(GrB_Scalar* s, GrB_Type type,
                               GrB_Context ctx) {
  return grb_detail::guarded([&]() -> GrB_Info {
    return grb_detail::to_c(grb::Scalar::new_(s, type, ctx));
  });
}
inline GrB_Info GrB_Scalar_dup(GrB_Scalar* out, GrB_Scalar in) {
  return grb_detail::guarded([&]() -> GrB_Info {
    return grb_detail::to_c(grb::Scalar::dup(out, in));
  });
}
inline GrB_Info GrB_Scalar_clear(GrB_Scalar s) {
  return grb_detail::guarded([&]() -> GrB_Info {
    if (s == nullptr) return GrB_UNINITIALIZED_OBJECT;
    return grb_detail::to_c(s->clear());
  });
}
inline GrB_Info GrB_Scalar_nvals(GrB_Index* nvals, GrB_Scalar s) {
  return grb_detail::guarded([&]() -> GrB_Info {
    if (s == nullptr) return GrB_UNINITIALIZED_OBJECT;
    return grb_detail::to_c(s->nvals(nvals));
  });
}
template <class T,
          class = std::enable_if_t<grb_detail::is_grb_scalar_v<T>>>
inline GrB_Info GrB_Scalar_setElement(GrB_Scalar s, T value) {
  return grb_detail::guarded([&]() -> GrB_Info {
    if (s == nullptr) return GrB_UNINITIALIZED_OBJECT;
    return grb_detail::to_c(s->set_element(&value, grb::type_of<T>()));
  });
}
inline GrB_Info GrB_Scalar_setElement_UDT(GrB_Scalar s, const void* value,
                                          GrB_Type type) {
  return grb_detail::guarded([&]() -> GrB_Info {
    if (s == nullptr) return GrB_UNINITIALIZED_OBJECT;
    return grb_detail::to_c(s->set_element(value, type));
  });
}
template <class T,
          class = std::enable_if_t<grb_detail::is_grb_scalar_v<T>>>
inline GrB_Info GrB_Scalar_extractElement(T* value, GrB_Scalar s) {
  return grb_detail::guarded([&]() -> GrB_Info {
    if (s == nullptr) return GrB_UNINITIALIZED_OBJECT;
    return grb_detail::to_c(s->extract_element(value, grb::type_of<T>()));
  });
}
inline GrB_Info GrB_Scalar_extractElement_UDT(void* value, GrB_Type type,
                                              GrB_Scalar s) {
  return grb_detail::guarded([&]() -> GrB_Info {
    if (s == nullptr) return GrB_UNINITIALIZED_OBJECT;
    return grb_detail::to_c(s->extract_element(value, type));
  });
}

// ---------------------------------------------------------------------------
// GrB_Vector
// ---------------------------------------------------------------------------

inline GrB_Info GrB_Vector_new(GrB_Vector* v, GrB_Type type, GrB_Index n) {
  return grb_detail::guarded([&]() -> GrB_Info {
    return grb_detail::to_c(grb::Vector::new_(v, type, n, nullptr));
  });
}
// GraphBLAS 2.0 constructor with a context (paper Figure 2).
inline GrB_Info GrB_Vector_new(GrB_Vector* v, GrB_Type type, GrB_Index n,
                               GrB_Context ctx) {
  return grb_detail::guarded([&]() -> GrB_Info {
    return grb_detail::to_c(grb::Vector::new_(v, type, n, ctx));
  });
}
inline GrB_Info GrB_Vector_dup(GrB_Vector* out, GrB_Vector in) {
  return grb_detail::guarded([&]() -> GrB_Info {
    return grb_detail::to_c(grb::Vector::dup(out, in));
  });
}
inline GrB_Info GrB_Vector_clear(GrB_Vector v) {
  return grb_detail::guarded([&]() -> GrB_Info {
    if (v == nullptr) return GrB_UNINITIALIZED_OBJECT;
    return grb_detail::to_c(v->clear());
  });
}
inline GrB_Info GrB_Vector_size(GrB_Index* n, GrB_Vector v) {
  return grb_detail::guarded([&]() -> GrB_Info {
    if (v == nullptr) return GrB_UNINITIALIZED_OBJECT;
    if (n == nullptr) return GrB_NULL_POINTER;
    *n = v->size();
    return GrB_SUCCESS;
  });
}
inline GrB_Info GrB_Vector_nvals(GrB_Index* nvals, GrB_Vector v) {
  return grb_detail::guarded([&]() -> GrB_Info {
    if (v == nullptr) return GrB_UNINITIALIZED_OBJECT;
    return grb_detail::to_c(v->nvals(nvals));
  });
}
inline GrB_Info GrB_Vector_resize(GrB_Vector v, GrB_Index n) {
  return grb_detail::guarded([&]() -> GrB_Info {
    if (v == nullptr) return GrB_UNINITIALIZED_OBJECT;
    return grb_detail::to_c(v->resize(n));
  });
}
template <class T,
          class = std::enable_if_t<grb_detail::is_grb_scalar_v<T>>>
inline GrB_Info GrB_Vector_build(GrB_Vector v, const GrB_Index* indices,
                                 const T* values, GrB_Index n,
                                 GrB_BinaryOp dup) {
  return grb_detail::guarded([&]() -> GrB_Info {
    if (v == nullptr) return GrB_UNINITIALIZED_OBJECT;
    return grb_detail::to_c(
        v->build(indices, values, n, dup, grb::type_of<T>()));
  });
}
inline GrB_Info GrB_Vector_build_UDT(GrB_Vector v, const GrB_Index* indices,
                                     const void* values, GrB_Index n,
                                     GrB_BinaryOp dup, GrB_Type type) {
  return grb_detail::guarded([&]() -> GrB_Info {
    if (v == nullptr) return GrB_UNINITIALIZED_OBJECT;
    return grb_detail::to_c(v->build(indices, values, n, dup, type));
  });
}
template <class T,
          class = std::enable_if_t<grb_detail::is_grb_scalar_v<T>>>
inline GrB_Info GrB_Vector_setElement(GrB_Vector v, T value, GrB_Index i) {
  return grb_detail::guarded([&]() -> GrB_Info {
    if (v == nullptr) return GrB_UNINITIALIZED_OBJECT;
    return grb_detail::to_c(v->set_element(&value, grb::type_of<T>(), i));
  });
}
inline GrB_Info GrB_Vector_setElement_UDT(GrB_Vector v, const void* value,
                                          GrB_Type type, GrB_Index i) {
  return grb_detail::guarded([&]() -> GrB_Info {
    if (v == nullptr) return GrB_UNINITIALIZED_OBJECT;
    return grb_detail::to_c(v->set_element(value, type, i));
  });
}
// Table II: GrB_Scalar variant (empty scalar removes the element).
inline GrB_Info GrB_Vector_setElement(GrB_Vector v, GrB_Scalar s,
                                      GrB_Index i) {
  return grb_detail::guarded([&]() -> GrB_Info {
    if (v == nullptr || s == nullptr) return GrB_UNINITIALIZED_OBJECT;
    std::shared_ptr<const grb::ScalarData> snap;
    grb::Info info = s->snapshot(&snap);
    if (static_cast<int>(info) < 0) return grb_detail::to_c(info);
    if (!snap->present) return grb_detail::to_c(v->remove_element(i));
    return grb_detail::to_c(v->set_element(snap->value.data(), snap->type, i));
  });
}
template <class T,
          class = std::enable_if_t<grb_detail::is_grb_scalar_v<T>>>
inline GrB_Info GrB_Vector_extractElement(T* value, GrB_Vector v,
                                          GrB_Index i) {
  return grb_detail::guarded([&]() -> GrB_Info {
    if (v == nullptr) return GrB_UNINITIALIZED_OBJECT;
    return grb_detail::to_c(v->extract_element(value, grb::type_of<T>(), i));
  });
}
inline GrB_Info GrB_Vector_extractElement_UDT(void* value, GrB_Type type,
                                              GrB_Vector v, GrB_Index i) {
  return grb_detail::guarded([&]() -> GrB_Info {
    if (v == nullptr) return GrB_UNINITIALIZED_OBJECT;
    return grb_detail::to_c(v->extract_element(value, type, i));
  });
}
// Table II: GrB_Scalar output variant — a missing element produces an
// empty scalar instead of the GrB_NO_VALUE return-code dance (§VI).
inline GrB_Info GrB_Vector_extractElement(GrB_Scalar out, GrB_Vector v,
                                          GrB_Index i) {
  return grb_detail::guarded([&]() -> GrB_Info {
    if (v == nullptr || out == nullptr) return GrB_UNINITIALIZED_OBJECT;
    std::shared_ptr<const grb::VectorData> snap;
    grb::Info info = v->snapshot(&snap);
    if (static_cast<int>(info) < 0) return grb_detail::to_c(info);
    if (i >= snap->n) return GrB_INVALID_INDEX;
    size_t pos = snap->find(i);
    if (pos == grb::VectorData::npos) return grb_detail::to_c(out->clear());
    return grb_detail::to_c(
        out->set_element(snap->vals.at(pos), snap->type));
  });
}
inline GrB_Info GrB_Vector_removeElement(GrB_Vector v, GrB_Index i) {
  return grb_detail::guarded([&]() -> GrB_Info {
    if (v == nullptr) return GrB_UNINITIALIZED_OBJECT;
    return grb_detail::to_c(v->remove_element(i));
  });
}
template <class T,
          class = std::enable_if_t<grb_detail::is_grb_scalar_v<T>>>
inline GrB_Info GrB_Vector_extractTuples(GrB_Index* indices, T* values,
                                         GrB_Index* n, GrB_Vector v) {
  return grb_detail::guarded([&]() -> GrB_Info {
    if (v == nullptr) return GrB_UNINITIALIZED_OBJECT;
    return grb_detail::to_c(
        v->extract_tuples(indices, values, n, grb::type_of<T>()));
  });
}
inline GrB_Info GrB_Vector_extractTuples_UDT(GrB_Index* indices, void* values,
                                             GrB_Index* n, GrB_Type type,
                                             GrB_Vector v) {
  return grb_detail::guarded([&]() -> GrB_Info {
    if (v == nullptr) return GrB_UNINITIALIZED_OBJECT;
    return grb_detail::to_c(v->extract_tuples(indices, values, n, type));
  });
}

// ---------------------------------------------------------------------------
// GrB_Matrix
// ---------------------------------------------------------------------------

inline GrB_Info GrB_Matrix_new(GrB_Matrix* a, GrB_Type type, GrB_Index nrows,
                               GrB_Index ncols) {
  return grb_detail::guarded([&]() -> GrB_Info {
    return grb_detail::to_c(grb::Matrix::new_(a, type, nrows, ncols, nullptr));
  });
}
inline GrB_Info GrB_Matrix_new(GrB_Matrix* a, GrB_Type type, GrB_Index nrows,
                               GrB_Index ncols, GrB_Context ctx) {
  return grb_detail::guarded([&]() -> GrB_Info {
    return grb_detail::to_c(grb::Matrix::new_(a, type, nrows, ncols, ctx));
  });
}
inline GrB_Info GrB_Matrix_dup(GrB_Matrix* out, GrB_Matrix in) {
  return grb_detail::guarded([&]() -> GrB_Info {
    return grb_detail::to_c(grb::Matrix::dup(out, in));
  });
}
inline GrB_Info GrB_Matrix_clear(GrB_Matrix a) {
  return grb_detail::guarded([&]() -> GrB_Info {
    if (a == nullptr) return GrB_UNINITIALIZED_OBJECT;
    return grb_detail::to_c(a->clear());
  });
}
inline GrB_Info GrB_Matrix_nrows(GrB_Index* n, GrB_Matrix a) {
  return grb_detail::guarded([&]() -> GrB_Info {
    if (a == nullptr) return GrB_UNINITIALIZED_OBJECT;
    if (n == nullptr) return GrB_NULL_POINTER;
    *n = a->nrows();
    return GrB_SUCCESS;
  });
}
inline GrB_Info GrB_Matrix_ncols(GrB_Index* n, GrB_Matrix a) {
  return grb_detail::guarded([&]() -> GrB_Info {
    if (a == nullptr) return GrB_UNINITIALIZED_OBJECT;
    if (n == nullptr) return GrB_NULL_POINTER;
    *n = a->ncols();
    return GrB_SUCCESS;
  });
}
inline GrB_Info GrB_Matrix_nvals(GrB_Index* nvals, GrB_Matrix a) {
  return grb_detail::guarded([&]() -> GrB_Info {
    if (a == nullptr) return GrB_UNINITIALIZED_OBJECT;
    return grb_detail::to_c(a->nvals(nvals));
  });
}
inline GrB_Info GrB_Matrix_resize(GrB_Matrix a, GrB_Index nrows,
                                  GrB_Index ncols) {
  return grb_detail::guarded([&]() -> GrB_Info {
    if (a == nullptr) return GrB_UNINITIALIZED_OBJECT;
    return grb_detail::to_c(a->resize(nrows, ncols));
  });
}
template <class T,
          class = std::enable_if_t<grb_detail::is_grb_scalar_v<T>>>
inline GrB_Info GrB_Matrix_build(GrB_Matrix a, const GrB_Index* rows,
                                 const GrB_Index* cols, const T* values,
                                 GrB_Index n, GrB_BinaryOp dup) {
  return grb_detail::guarded([&]() -> GrB_Info {
    if (a == nullptr) return GrB_UNINITIALIZED_OBJECT;
    return grb_detail::to_c(
        a->build(rows, cols, values, n, dup, grb::type_of<T>()));
  });
}
inline GrB_Info GrB_Matrix_build_UDT(GrB_Matrix a, const GrB_Index* rows,
                                     const GrB_Index* cols,
                                     const void* values, GrB_Index n,
                                     GrB_BinaryOp dup, GrB_Type type) {
  return grb_detail::guarded([&]() -> GrB_Info {
    if (a == nullptr) return GrB_UNINITIALIZED_OBJECT;
    return grb_detail::to_c(a->build(rows, cols, values, n, dup, type));
  });
}
template <class T,
          class = std::enable_if_t<grb_detail::is_grb_scalar_v<T>>>
inline GrB_Info GrB_Matrix_setElement(GrB_Matrix a, T value, GrB_Index i,
                                      GrB_Index j) {
  return grb_detail::guarded([&]() -> GrB_Info {
    if (a == nullptr) return GrB_UNINITIALIZED_OBJECT;
    return grb_detail::to_c(a->set_element(&value, grb::type_of<T>(), i, j));
  });
}
inline GrB_Info GrB_Matrix_setElement_UDT(GrB_Matrix a, const void* value,
                                          GrB_Type type, GrB_Index i,
                                          GrB_Index j) {
  return grb_detail::guarded([&]() -> GrB_Info {
    if (a == nullptr) return GrB_UNINITIALIZED_OBJECT;
    return grb_detail::to_c(a->set_element(value, type, i, j));
  });
}
inline GrB_Info GrB_Matrix_setElement(GrB_Matrix a, GrB_Scalar s,
                                      GrB_Index i, GrB_Index j) {
  return grb_detail::guarded([&]() -> GrB_Info {
    if (a == nullptr || s == nullptr) return GrB_UNINITIALIZED_OBJECT;
    std::shared_ptr<const grb::ScalarData> snap;
    grb::Info info = s->snapshot(&snap);
    if (static_cast<int>(info) < 0) return grb_detail::to_c(info);
    if (!snap->present) return grb_detail::to_c(a->remove_element(i, j));
    return grb_detail::to_c(
        a->set_element(snap->value.data(), snap->type, i, j));
  });
}
template <class T,
          class = std::enable_if_t<grb_detail::is_grb_scalar_v<T>>>
inline GrB_Info GrB_Matrix_extractElement(T* value, GrB_Matrix a, GrB_Index i,
                                          GrB_Index j) {
  return grb_detail::guarded([&]() -> GrB_Info {
    if (a == nullptr) return GrB_UNINITIALIZED_OBJECT;
    return grb_detail::to_c(
        a->extract_element(value, grb::type_of<T>(), i, j));
  });
}
inline GrB_Info GrB_Matrix_extractElement_UDT(void* value, GrB_Type type,
                                              GrB_Matrix a, GrB_Index i,
                                              GrB_Index j) {
  return grb_detail::guarded([&]() -> GrB_Info {
    if (a == nullptr) return GrB_UNINITIALIZED_OBJECT;
    return grb_detail::to_c(a->extract_element(value, type, i, j));
  });
}
inline GrB_Info GrB_Matrix_extractElement(GrB_Scalar out, GrB_Matrix a,
                                          GrB_Index i, GrB_Index j) {
  return grb_detail::guarded([&]() -> GrB_Info {
    if (a == nullptr || out == nullptr) return GrB_UNINITIALIZED_OBJECT;
    std::shared_ptr<const grb::MatrixData> snap;
    grb::Info info = a->snapshot(&snap);
    if (static_cast<int>(info) < 0) return grb_detail::to_c(info);
    if (i >= snap->nrows || j >= snap->ncols) return GrB_INVALID_INDEX;
    size_t pos = snap->find(i, j);
    if (pos == grb::MatrixData::npos) return grb_detail::to_c(out->clear());
    return grb_detail::to_c(out->set_element(snap->vals.at(pos), snap->type));
  });
}
inline GrB_Info GrB_Matrix_removeElement(GrB_Matrix a, GrB_Index i,
                                         GrB_Index j) {
  return grb_detail::guarded([&]() -> GrB_Info {
    if (a == nullptr) return GrB_UNINITIALIZED_OBJECT;
    return grb_detail::to_c(a->remove_element(i, j));
  });
}
template <class T,
          class = std::enable_if_t<grb_detail::is_grb_scalar_v<T>>>
inline GrB_Info GrB_Matrix_extractTuples(GrB_Index* rows, GrB_Index* cols,
                                         T* values, GrB_Index* n,
                                         GrB_Matrix a) {
  return grb_detail::guarded([&]() -> GrB_Info {
    if (a == nullptr) return GrB_UNINITIALIZED_OBJECT;
    return grb_detail::to_c(
        a->extract_tuples(rows, cols, values, n, grb::type_of<T>()));
  });
}
inline GrB_Info GrB_Matrix_extractTuples_UDT(GrB_Index* rows, GrB_Index* cols,
                                             void* values, GrB_Index* n,
                                             GrB_Type type, GrB_Matrix a) {
  return grb_detail::guarded([&]() -> GrB_Info {
    if (a == nullptr) return GrB_UNINITIALIZED_OBJECT;
    return grb_detail::to_c(a->extract_tuples(rows, cols, values, n, type));
  });
}
inline GrB_Info GrB_Matrix_diag(GrB_Matrix* c, GrB_Vector v, int64_t k) {
  return grb_detail::guarded([&]() -> GrB_Info {
    return grb_detail::to_c(grb::matrix_diag(c, v, k));
  });
}

// ---------------------------------------------------------------------------
// Operations
// ---------------------------------------------------------------------------

inline GrB_Info GrB_mxm(GrB_Matrix c, GrB_Matrix mask, GrB_BinaryOp accum,
                        GrB_Semiring s, GrB_Matrix a, GrB_Matrix b,
                        GrB_Descriptor desc) {
  return grb_detail::guarded([&]() -> GrB_Info {
    return grb_detail::to_c(grb::mxm(c, mask, accum, s, a, b, desc));
  });
}
inline GrB_Info GrB_mxv(GrB_Vector w, GrB_Vector mask, GrB_BinaryOp accum,
                        GrB_Semiring s, GrB_Matrix a, GrB_Vector u,
                        GrB_Descriptor desc) {
  return grb_detail::guarded([&]() -> GrB_Info {
    return grb_detail::to_c(grb::mxv(w, mask, accum, s, a, u, desc));
  });
}
inline GrB_Info GrB_vxm(GrB_Vector w, GrB_Vector mask, GrB_BinaryOp accum,
                        GrB_Semiring s, GrB_Vector u, GrB_Matrix a,
                        GrB_Descriptor desc) {
  return grb_detail::guarded([&]() -> GrB_Info {
    return grb_detail::to_c(grb::vxm(w, mask, accum, s, u, a, desc));
  });
}

// eWiseAdd / eWiseMult: BinaryOp, Monoid, and Semiring flavours.
#define GRB_DEFINE_EWISE(NAME, IMPL)                                       \
  inline GrB_Info NAME(GrB_Vector w, GrB_Vector mask, GrB_BinaryOp accum,  \
                       GrB_BinaryOp op, GrB_Vector u, GrB_Vector v,        \
                       GrB_Descriptor desc) {                              \
    return grb_detail::guarded([&]() -> GrB_Info {                         \
      return grb_detail::to_c(grb::IMPL(w, mask, accum, op, u, v, desc));  \
    });                                                                    \
  }                                                                        \
  inline GrB_Info NAME(GrB_Vector w, GrB_Vector mask, GrB_BinaryOp accum,  \
                       GrB_Monoid op, GrB_Vector u, GrB_Vector v,          \
                       GrB_Descriptor desc) {                              \
    return grb_detail::guarded([&]() -> GrB_Info {                         \
      if (op == nullptr) return GrB_NULL_POINTER;                          \
      return grb_detail::to_c(                                             \
          grb::IMPL(w, mask, accum, op->op(), u, v, desc));                \
    });                                                                    \
  }                                                                        \
  inline GrB_Info NAME(GrB_Vector w, GrB_Vector mask, GrB_BinaryOp accum,  \
                       GrB_Semiring op, GrB_Vector u, GrB_Vector v,        \
                       GrB_Descriptor desc) {                              \
    return grb_detail::guarded([&]() -> GrB_Info {                         \
      if (op == nullptr) return GrB_NULL_POINTER;                          \
      return grb_detail::to_c(                                             \
          grb::IMPL(w, mask, accum, op->mul(), u, v, desc));               \
    });                                                                    \
  }                                                                        \
  inline GrB_Info NAME(GrB_Matrix c, GrB_Matrix mask, GrB_BinaryOp accum,  \
                       GrB_BinaryOp op, GrB_Matrix a, GrB_Matrix b,        \
                       GrB_Descriptor desc) {                              \
    return grb_detail::guarded([&]() -> GrB_Info {                         \
      return grb_detail::to_c(grb::IMPL(c, mask, accum, op, a, b, desc));  \
    });                                                                    \
  }                                                                        \
  inline GrB_Info NAME(GrB_Matrix c, GrB_Matrix mask, GrB_BinaryOp accum,  \
                       GrB_Monoid op, GrB_Matrix a, GrB_Matrix b,          \
                       GrB_Descriptor desc) {                              \
    return grb_detail::guarded([&]() -> GrB_Info {                         \
      if (op == nullptr) return GrB_NULL_POINTER;                          \
      return grb_detail::to_c(                                             \
          grb::IMPL(c, mask, accum, op->op(), a, b, desc));                \
    });                                                                    \
  }                                                                        \
  inline GrB_Info NAME(GrB_Matrix c, GrB_Matrix mask, GrB_BinaryOp accum,  \
                       GrB_Semiring op, GrB_Matrix a, GrB_Matrix b,        \
                       GrB_Descriptor desc) {                              \
    return grb_detail::guarded([&]() -> GrB_Info {                         \
      if (op == nullptr) return GrB_NULL_POINTER;                          \
      return grb_detail::to_c(                                             \
          grb::IMPL(c, mask, accum, op->mul(), a, b, desc));               \
    });                                                                    \
  }
GRB_DEFINE_EWISE(GrB_eWiseAdd, ewise_add)
GRB_DEFINE_EWISE(GrB_eWiseMult, ewise_mult)
#undef GRB_DEFINE_EWISE

// extract
inline GrB_Info GrB_extract(GrB_Vector w, GrB_Vector mask,
                            GrB_BinaryOp accum, GrB_Vector u,
                            const GrB_Index* indices, GrB_Index n,
                            GrB_Descriptor desc) {
  return grb_detail::guarded([&]() -> GrB_Info {
    return grb_detail::to_c(grb::extract(w, mask, accum, u, indices, n, desc));
  });
}
inline GrB_Info GrB_extract(GrB_Matrix c, GrB_Matrix mask,
                            GrB_BinaryOp accum, GrB_Matrix a,
                            const GrB_Index* rows, GrB_Index nrows,
                            const GrB_Index* cols, GrB_Index ncols,
                            GrB_Descriptor desc) {
  return grb_detail::guarded([&]() -> GrB_Info {
    return grb_detail::to_c(
        grb::extract(c, mask, accum, a, rows, nrows, cols, ncols, desc));
  });
}
inline GrB_Info GrB_extract(GrB_Vector w, GrB_Vector mask,
                            GrB_BinaryOp accum, GrB_Matrix a,
                            const GrB_Index* rows, GrB_Index nrows,
                            GrB_Index col, GrB_Descriptor desc) {
  return grb_detail::guarded([&]() -> GrB_Info {
    return grb_detail::to_c(
        grb::extract_col(w, mask, accum, a, rows, nrows, col, desc));
  });
}

// assign
inline GrB_Info GrB_assign(GrB_Vector w, GrB_Vector mask, GrB_BinaryOp accum,
                           GrB_Vector u, const GrB_Index* indices,
                           GrB_Index n, GrB_Descriptor desc) {
  return grb_detail::guarded([&]() -> GrB_Info {
    return grb_detail::to_c(grb::assign(w, mask, accum, u, indices, n, desc));
  });
}
inline GrB_Info GrB_assign(GrB_Matrix c, GrB_Matrix mask, GrB_BinaryOp accum,
                           GrB_Matrix a, const GrB_Index* rows,
                           GrB_Index nrows, const GrB_Index* cols,
                           GrB_Index ncols, GrB_Descriptor desc) {
  return grb_detail::guarded([&]() -> GrB_Info {
    return grb_detail::to_c(
        grb::assign(c, mask, accum, a, rows, nrows, cols, ncols, desc));
  });
}
inline GrB_Info GrB_Row_assign(GrB_Matrix c, GrB_Vector mask,
                               GrB_BinaryOp accum, GrB_Vector u, GrB_Index i,
                               const GrB_Index* cols, GrB_Index ncols,
                               GrB_Descriptor desc) {
  return grb_detail::guarded([&]() -> GrB_Info {
    return grb_detail::to_c(
        grb::assign_row(c, mask, accum, u, i, cols, ncols, desc));
  });
}
inline GrB_Info GrB_Col_assign(GrB_Matrix c, GrB_Vector mask,
                               GrB_BinaryOp accum, GrB_Vector u,
                               const GrB_Index* rows, GrB_Index nrows,
                               GrB_Index j, GrB_Descriptor desc) {
  return grb_detail::guarded([&]() -> GrB_Info {
    return grb_detail::to_c(
        grb::assign_col(c, mask, accum, u, rows, nrows, j, desc));
  });
}
template <class T,
          class = std::enable_if_t<grb_detail::is_grb_scalar_v<T>>>
inline GrB_Info GrB_assign(GrB_Vector w, GrB_Vector mask, GrB_BinaryOp accum,
                           T value, const GrB_Index* indices, GrB_Index n,
                           GrB_Descriptor desc) {
  return grb_detail::guarded([&]() -> GrB_Info {
    return grb_detail::to_c(grb::assign_scalar(
        w, mask, accum, &value, grb::type_of<T>(), indices, n, desc));
  });
}
template <class T,
          class = std::enable_if_t<grb_detail::is_grb_scalar_v<T>>>
inline GrB_Info GrB_assign(GrB_Matrix c, GrB_Matrix mask, GrB_BinaryOp accum,
                           T value, const GrB_Index* rows, GrB_Index nrows,
                           const GrB_Index* cols, GrB_Index ncols,
                           GrB_Descriptor desc) {
  return grb_detail::guarded([&]() -> GrB_Info {
    return grb_detail::to_c(
        grb::assign_scalar(c, mask, accum, &value, grb::type_of<T>(), rows,
                           nrows, cols, ncols, desc));
  });
}
// Table II: GrB_Scalar variants.
inline GrB_Info GrB_assign(GrB_Vector w, GrB_Vector mask, GrB_BinaryOp accum,
                           GrB_Scalar s, const GrB_Index* indices,
                           GrB_Index n, GrB_Descriptor desc) {
  return grb_detail::guarded([&]() -> GrB_Info {
    return grb_detail::to_c(
        grb::assign_scalar(w, mask, accum, s, indices, n, desc));
  });
}
inline GrB_Info GrB_assign(GrB_Matrix c, GrB_Matrix mask, GrB_BinaryOp accum,
                           GrB_Scalar s, const GrB_Index* rows,
                           GrB_Index nrows, const GrB_Index* cols,
                           GrB_Index ncols, GrB_Descriptor desc) {
  return grb_detail::guarded([&]() -> GrB_Info {
    return grb_detail::to_c(
        grb::assign_scalar(c, mask, accum, s, rows, nrows, cols, ncols, desc));
  });
}

// apply: unary op
inline GrB_Info GrB_apply(GrB_Vector w, GrB_Vector mask, GrB_BinaryOp accum,
                          GrB_UnaryOp op, GrB_Vector u,
                          GrB_Descriptor desc) {
  return grb_detail::guarded([&]() -> GrB_Info {
    return grb_detail::to_c(grb::apply(w, mask, accum, op, u, desc));
  });
}
inline GrB_Info GrB_apply(GrB_Matrix c, GrB_Matrix mask, GrB_BinaryOp accum,
                          GrB_UnaryOp op, GrB_Matrix a,
                          GrB_Descriptor desc) {
  return grb_detail::guarded([&]() -> GrB_Info {
    return grb_detail::to_c(grb::apply(c, mask, accum, op, a, desc));
  });
}
// apply: bound binary op (bind-first / bind-second)
template <class T,
          class = std::enable_if_t<grb_detail::is_grb_scalar_v<T>>>
inline GrB_Info GrB_apply(GrB_Vector w, GrB_Vector mask, GrB_BinaryOp accum,
                          GrB_BinaryOp op, T s, GrB_Vector u,
                          GrB_Descriptor desc) {
  return grb_detail::guarded([&]() -> GrB_Info {
    return grb_detail::to_c(
        grb::apply_bind1st(w, mask, accum, op, &s, grb::type_of<T>(), u, desc));
  });
}
template <class T,
          class = std::enable_if_t<grb_detail::is_grb_scalar_v<T>>>
inline GrB_Info GrB_apply(GrB_Vector w, GrB_Vector mask, GrB_BinaryOp accum,
                          GrB_BinaryOp op, GrB_Vector u, T s,
                          GrB_Descriptor desc) {
  return grb_detail::guarded([&]() -> GrB_Info {
    return grb_detail::to_c(
        grb::apply_bind2nd(w, mask, accum, op, u, &s, grb::type_of<T>(), desc));
  });
}
template <class T,
          class = std::enable_if_t<grb_detail::is_grb_scalar_v<T>>>
inline GrB_Info GrB_apply(GrB_Matrix c, GrB_Matrix mask, GrB_BinaryOp accum,
                          GrB_BinaryOp op, T s, GrB_Matrix a,
                          GrB_Descriptor desc) {
  return grb_detail::guarded([&]() -> GrB_Info {
    return grb_detail::to_c(
        grb::apply_bind1st(c, mask, accum, op, &s, grb::type_of<T>(), a, desc));
  });
}
template <class T,
          class = std::enable_if_t<grb_detail::is_grb_scalar_v<T>>>
inline GrB_Info GrB_apply(GrB_Matrix c, GrB_Matrix mask, GrB_BinaryOp accum,
                          GrB_BinaryOp op, GrB_Matrix a, T s,
                          GrB_Descriptor desc) {
  return grb_detail::guarded([&]() -> GrB_Info {
    return grb_detail::to_c(
        grb::apply_bind2nd(c, mask, accum, op, a, &s, grb::type_of<T>(), desc));
  });
}
// apply: GrB_Scalar-bound binary op (Table II)
inline GrB_Info GrB_apply(GrB_Vector w, GrB_Vector mask, GrB_BinaryOp accum,
                          GrB_BinaryOp op, GrB_Scalar s, GrB_Vector u,
                          GrB_Descriptor desc) {
  return grb_detail::guarded([&]() -> GrB_Info {
    if (s == nullptr) return GrB_UNINITIALIZED_OBJECT;
    std::shared_ptr<const grb::ScalarData> snap;
    grb::Info info = s->snapshot(&snap);
    if (static_cast<int>(info) < 0) return grb_detail::to_c(info);
    if (!snap->present) return GrB_EMPTY_OBJECT;
    return grb_detail::to_c(grb::apply_bind1st(
        w, mask, accum, op, snap->value.data(), snap->type, u, desc));
  });
}
inline GrB_Info GrB_apply(GrB_Vector w, GrB_Vector mask, GrB_BinaryOp accum,
                          GrB_BinaryOp op, GrB_Vector u, GrB_Scalar s,
                          GrB_Descriptor desc) {
  return grb_detail::guarded([&]() -> GrB_Info {
    if (s == nullptr) return GrB_UNINITIALIZED_OBJECT;
    std::shared_ptr<const grb::ScalarData> snap;
    grb::Info info = s->snapshot(&snap);
    if (static_cast<int>(info) < 0) return grb_detail::to_c(info);
    if (!snap->present) return GrB_EMPTY_OBJECT;
    return grb_detail::to_c(grb::apply_bind2nd(
        w, mask, accum, op, u, snap->value.data(), snap->type, desc));
  });
}
inline GrB_Info GrB_apply(GrB_Matrix c, GrB_Matrix mask, GrB_BinaryOp accum,
                          GrB_BinaryOp op, GrB_Scalar s, GrB_Matrix a,
                          GrB_Descriptor desc) {
  return grb_detail::guarded([&]() -> GrB_Info {
    if (s == nullptr) return GrB_UNINITIALIZED_OBJECT;
    std::shared_ptr<const grb::ScalarData> snap;
    grb::Info info = s->snapshot(&snap);
    if (static_cast<int>(info) < 0) return grb_detail::to_c(info);
    if (!snap->present) return GrB_EMPTY_OBJECT;
    return grb_detail::to_c(grb::apply_bind1st(
        c, mask, accum, op, snap->value.data(), snap->type, a, desc));
  });
}
inline GrB_Info GrB_apply(GrB_Matrix c, GrB_Matrix mask, GrB_BinaryOp accum,
                          GrB_BinaryOp op, GrB_Matrix a, GrB_Scalar s,
                          GrB_Descriptor desc) {
  return grb_detail::guarded([&]() -> GrB_Info {
    if (s == nullptr) return GrB_UNINITIALIZED_OBJECT;
    std::shared_ptr<const grb::ScalarData> snap;
    grb::Info info = s->snapshot(&snap);
    if (static_cast<int>(info) < 0) return grb_detail::to_c(info);
    if (!snap->present) return GrB_EMPTY_OBJECT;
    return grb_detail::to_c(grb::apply_bind2nd(
        c, mask, accum, op, a, snap->value.data(), snap->type, desc));
  });
}
// apply: index-unary op (paper §VIII.B)
template <class T,
          class = std::enable_if_t<grb_detail::is_grb_scalar_v<T>>>
inline GrB_Info GrB_apply(GrB_Vector w, GrB_Vector mask, GrB_BinaryOp accum,
                          GrB_IndexUnaryOp op, GrB_Vector u, T s,
                          GrB_Descriptor desc) {
  return grb_detail::guarded([&]() -> GrB_Info {
    return grb_detail::to_c(
        grb::apply_indexop(w, mask, accum, op, u, &s, grb::type_of<T>(), desc));
  });
}
template <class T,
          class = std::enable_if_t<grb_detail::is_grb_scalar_v<T>>>
inline GrB_Info GrB_apply(GrB_Matrix c, GrB_Matrix mask, GrB_BinaryOp accum,
                          GrB_IndexUnaryOp op, GrB_Matrix a, T s,
                          GrB_Descriptor desc) {
  return grb_detail::guarded([&]() -> GrB_Info {
    return grb_detail::to_c(
        grb::apply_indexop(c, mask, accum, op, a, &s, grb::type_of<T>(), desc));
  });
}
inline GrB_Info GrB_apply(GrB_Vector w, GrB_Vector mask, GrB_BinaryOp accum,
                          GrB_IndexUnaryOp op, GrB_Vector u, GrB_Scalar s,
                          GrB_Descriptor desc) {
  return grb_detail::guarded([&]() -> GrB_Info {
    if (s == nullptr) return GrB_UNINITIALIZED_OBJECT;
    std::shared_ptr<const grb::ScalarData> snap;
    grb::Info info = s->snapshot(&snap);
    if (static_cast<int>(info) < 0) return grb_detail::to_c(info);
    if (!snap->present) return GrB_EMPTY_OBJECT;
    return grb_detail::to_c(grb::apply_indexop(
        w, mask, accum, op, u, snap->value.data(), snap->type, desc));
  });
}
inline GrB_Info GrB_apply(GrB_Matrix c, GrB_Matrix mask, GrB_BinaryOp accum,
                          GrB_IndexUnaryOp op, GrB_Matrix a, GrB_Scalar s,
                          GrB_Descriptor desc) {
  return grb_detail::guarded([&]() -> GrB_Info {
    if (s == nullptr) return GrB_UNINITIALIZED_OBJECT;
    std::shared_ptr<const grb::ScalarData> snap;
    grb::Info info = s->snapshot(&snap);
    if (static_cast<int>(info) < 0) return grb_detail::to_c(info);
    if (!snap->present) return GrB_EMPTY_OBJECT;
    return grb_detail::to_c(grb::apply_indexop(
        c, mask, accum, op, a, snap->value.data(), snap->type, desc));
  });
}

// select (paper §VIII.C)
template <class T,
          class = std::enable_if_t<grb_detail::is_grb_scalar_v<T>>>
inline GrB_Info GrB_select(GrB_Vector w, GrB_Vector mask, GrB_BinaryOp accum,
                           GrB_IndexUnaryOp op, GrB_Vector u, T s,
                           GrB_Descriptor desc) {
  return grb_detail::guarded([&]() -> GrB_Info {
    return grb_detail::to_c(
        grb::select(w, mask, accum, op, u, &s, grb::type_of<T>(), desc));
  });
}
template <class T,
          class = std::enable_if_t<grb_detail::is_grb_scalar_v<T>>>
inline GrB_Info GrB_select(GrB_Matrix c, GrB_Matrix mask, GrB_BinaryOp accum,
                           GrB_IndexUnaryOp op, GrB_Matrix a, T s,
                           GrB_Descriptor desc) {
  return grb_detail::guarded([&]() -> GrB_Info {
    return grb_detail::to_c(
        grb::select(c, mask, accum, op, a, &s, grb::type_of<T>(), desc));
  });
}
inline GrB_Info GrB_select(GrB_Vector w, GrB_Vector mask, GrB_BinaryOp accum,
                           GrB_IndexUnaryOp op, GrB_Vector u, GrB_Scalar s,
                           GrB_Descriptor desc) {
  return grb_detail::guarded([&]() -> GrB_Info {
    if (s == nullptr) return GrB_UNINITIALIZED_OBJECT;
    std::shared_ptr<const grb::ScalarData> snap;
    grb::Info info = s->snapshot(&snap);
    if (static_cast<int>(info) < 0) return grb_detail::to_c(info);
    if (!snap->present) return GrB_EMPTY_OBJECT;
    return grb_detail::to_c(grb::select(w, mask, accum, op, u,
                                        snap->value.data(), snap->type, desc));
  });
}
inline GrB_Info GrB_select(GrB_Matrix c, GrB_Matrix mask, GrB_BinaryOp accum,
                           GrB_IndexUnaryOp op, GrB_Matrix a, GrB_Scalar s,
                           GrB_Descriptor desc) {
  return grb_detail::guarded([&]() -> GrB_Info {
    if (s == nullptr) return GrB_UNINITIALIZED_OBJECT;
    std::shared_ptr<const grb::ScalarData> snap;
    grb::Info info = s->snapshot(&snap);
    if (static_cast<int>(info) < 0) return grb_detail::to_c(info);
    if (!snap->present) return GrB_EMPTY_OBJECT;
    return grb_detail::to_c(grb::select(c, mask, accum, op, a,
                                        snap->value.data(), snap->type, desc));
  });
}

// reduce
inline GrB_Info GrB_reduce(GrB_Vector w, GrB_Vector mask, GrB_BinaryOp accum,
                           GrB_Monoid monoid, GrB_Matrix a,
                           GrB_Descriptor desc) {
  return grb_detail::guarded([&]() -> GrB_Info {
    return grb_detail::to_c(
        grb::reduce_to_vector(w, mask, accum, monoid, a, desc));
  });
}
template <class T,
          class = std::enable_if_t<grb_detail::is_grb_scalar_v<T>>>
inline GrB_Info GrB_reduce(T* value, GrB_BinaryOp accum, GrB_Monoid monoid,
                           GrB_Vector u, GrB_Descriptor desc) {
  return grb_detail::guarded([&]() -> GrB_Info {
    return grb_detail::to_c(grb::reduce_to_scalar(value, grb::type_of<T>(),
                                                  accum, monoid, u, desc));
  });
}
template <class T,
          class = std::enable_if_t<grb_detail::is_grb_scalar_v<T>>>
inline GrB_Info GrB_reduce(T* value, GrB_BinaryOp accum, GrB_Monoid monoid,
                           GrB_Matrix a, GrB_Descriptor desc) {
  return grb_detail::guarded([&]() -> GrB_Info {
    return grb_detail::to_c(grb::reduce_to_scalar(value, grb::type_of<T>(),
                                                  accum, monoid, a, desc));
  });
}
// Table II: GrB_Scalar-output variants (monoid and plain binary op).
inline GrB_Info GrB_reduce(GrB_Scalar out, GrB_BinaryOp accum,
                           GrB_Monoid monoid, GrB_Vector u,
                           GrB_Descriptor desc) {
  return grb_detail::guarded([&]() -> GrB_Info {
    return grb_detail::to_c(grb::reduce_to_scalar(out, accum, monoid, u, desc));
  });
}
inline GrB_Info GrB_reduce(GrB_Scalar out, GrB_BinaryOp accum,
                           GrB_Monoid monoid, GrB_Matrix a,
                           GrB_Descriptor desc) {
  return grb_detail::guarded([&]() -> GrB_Info {
    return grb_detail::to_c(grb::reduce_to_scalar(out, accum, monoid, a, desc));
  });
}
inline GrB_Info GrB_reduce(GrB_Scalar out, GrB_BinaryOp accum,
                           GrB_BinaryOp op, GrB_Vector u,
                           GrB_Descriptor desc) {
  return grb_detail::guarded([&]() -> GrB_Info {
    return grb_detail::to_c(
        grb::reduce_to_scalar_binop(out, accum, op, u, desc));
  });
}
inline GrB_Info GrB_reduce(GrB_Scalar out, GrB_BinaryOp accum,
                           GrB_BinaryOp op, GrB_Matrix a,
                           GrB_Descriptor desc) {
  return grb_detail::guarded([&]() -> GrB_Info {
    return grb_detail::to_c(
        grb::reduce_to_scalar_binop(out, accum, op, a, desc));
  });
}

// transpose / kronecker
inline GrB_Info GrB_transpose(GrB_Matrix c, GrB_Matrix mask,
                              GrB_BinaryOp accum, GrB_Matrix a,
                              GrB_Descriptor desc) {
  return grb_detail::guarded([&]() -> GrB_Info {
    return grb_detail::to_c(grb::transpose(c, mask, accum, a, desc));
  });
}
inline GrB_Info GrB_kronecker(GrB_Matrix c, GrB_Matrix mask,
                              GrB_BinaryOp accum, GrB_BinaryOp op,
                              GrB_Matrix a, GrB_Matrix b,
                              GrB_Descriptor desc) {
  return grb_detail::guarded([&]() -> GrB_Info {
    return grb_detail::to_c(grb::kronecker(c, mask, accum, op, a, b, desc));
  });
}
inline GrB_Info GrB_kronecker(GrB_Matrix c, GrB_Matrix mask,
                              GrB_BinaryOp accum, GrB_Semiring op,
                              GrB_Matrix a, GrB_Matrix b,
                              GrB_Descriptor desc) {
  return grb_detail::guarded([&]() -> GrB_Info {
    if (op == nullptr) return GrB_NULL_POINTER;
    return grb_detail::to_c(
        grb::kronecker(c, mask, accum, op->mul(), a, b, desc));
  });
}
inline GrB_Info GrB_kronecker(GrB_Matrix c, GrB_Matrix mask,
                              GrB_BinaryOp accum, GrB_Monoid op,
                              GrB_Matrix a, GrB_Matrix b,
                              GrB_Descriptor desc) {
  return grb_detail::guarded([&]() -> GrB_Info {
    if (op == nullptr) return GrB_NULL_POINTER;
    return grb_detail::to_c(
        grb::kronecker(c, mask, accum, op->op(), a, b, desc));
  });
}

// ---------------------------------------------------------------------------
// Import / export (paper §VII.A) and serialize (paper §VII.B)
// ---------------------------------------------------------------------------

inline GrB_Info GrB_Matrix_import(GrB_Matrix* a, GrB_Type type,
                                  GrB_Index nrows, GrB_Index ncols,
                                  const GrB_Index* indptr,
                                  const GrB_Index* indices,
                                  const void* values, GrB_Index indptr_len,
                                  GrB_Index indices_len,
                                  GrB_Index values_len, GrB_Format format) {
  return grb_detail::guarded([&]() -> GrB_Info {
    return grb_detail::to_c(grb::matrix_import(
        a, type, nrows, ncols, indptr, indices, values, indptr_len,
        indices_len, values_len, grb_detail::to_format(format), nullptr));
  });
}
inline GrB_Info GrB_Matrix_exportSize(GrB_Index* indptr_len,
                                      GrB_Index* indices_len,
                                      GrB_Index* values_len,
                                      GrB_Format format, GrB_Matrix a) {
  return grb_detail::guarded([&]() -> GrB_Info {
    return grb_detail::to_c(grb::matrix_export_size(
        indptr_len, indices_len, values_len, grb_detail::to_format(format), a));
  });
}
inline GrB_Info GrB_Matrix_export(GrB_Index* indptr, GrB_Index* indices,
                                  void* values, GrB_Format format,
                                  GrB_Matrix a) {
  return grb_detail::guarded([&]() -> GrB_Info {
    return grb_detail::to_c(grb::matrix_export(
        indptr, indices, values, grb_detail::to_format(format), a));
  });
}
inline GrB_Info GrB_Matrix_exportHint(GrB_Format* format, GrB_Matrix a) {
  return grb_detail::guarded([&]() -> GrB_Info {
    if (format == nullptr) return GrB_NULL_POINTER;
    grb::Format f;
    GrB_Info info = grb_detail::to_c(grb::matrix_export_hint(&f, a));
    if (info == GrB_SUCCESS) *format = static_cast<GrB_Format>(f);
    return info;
  });
}
inline GrB_Info GrB_Vector_import(GrB_Vector* v, GrB_Type type, GrB_Index n,
                                  const GrB_Index* indices,
                                  const void* values, GrB_Index indices_len,
                                  GrB_Index values_len, GrB_Format format) {
  return grb_detail::guarded([&]() -> GrB_Info {
    return grb_detail::to_c(
        grb::vector_import(v, type, n, indices, values, indices_len,
                           values_len, grb_detail::to_format(format), nullptr));
  });
}
inline GrB_Info GrB_Vector_exportSize(GrB_Index* indices_len,
                                      GrB_Index* values_len,
                                      GrB_Format format, GrB_Vector v) {
  return grb_detail::guarded([&]() -> GrB_Info {
    return grb_detail::to_c(grb::vector_export_size(
        indices_len, values_len, grb_detail::to_format(format), v));
  });
}
inline GrB_Info GrB_Vector_export(GrB_Index* indices, void* values,
                                  GrB_Format format, GrB_Vector v) {
  return grb_detail::guarded([&]() -> GrB_Info {
    return grb_detail::to_c(
        grb::vector_export(indices, values, grb_detail::to_format(format), v));
  });
}
inline GrB_Info GrB_Vector_exportHint(GrB_Format* format, GrB_Vector v) {
  return grb_detail::guarded([&]() -> GrB_Info {
    if (format == nullptr) return GrB_NULL_POINTER;
    grb::Format f;
    GrB_Info info = grb_detail::to_c(grb::vector_export_hint(&f, v));
    if (info == GrB_SUCCESS) *format = static_cast<GrB_Format>(f);
    return info;
  });
}

inline GrB_Info GrB_Matrix_serializeSize(GrB_Index* size, GrB_Matrix a) {
  return grb_detail::guarded([&]() -> GrB_Info {
    return grb_detail::to_c(grb::matrix_serialize_size(size, a));
  });
}
inline GrB_Info GrB_Matrix_serialize(void* buffer, GrB_Index* size,
                                     GrB_Matrix a) {
  return grb_detail::guarded([&]() -> GrB_Info {
    return grb_detail::to_c(grb::matrix_serialize(buffer, size, a));
  });
}
inline GrB_Info GrB_Matrix_deserialize(GrB_Matrix* a, GrB_Type type,
                                       const void* buffer, GrB_Index size) {
  return grb_detail::guarded([&]() -> GrB_Info {
    return grb_detail::to_c(
        grb::matrix_deserialize(a, type, buffer, size, nullptr));
  });
}
inline GrB_Info GrB_Vector_serializeSize(GrB_Index* size, GrB_Vector v) {
  return grb_detail::guarded([&]() -> GrB_Info {
    return grb_detail::to_c(grb::vector_serialize_size(size, v));
  });
}
inline GrB_Info GrB_Vector_serialize(void* buffer, GrB_Index* size,
                                     GrB_Vector v) {
  return grb_detail::guarded([&]() -> GrB_Info {
    return grb_detail::to_c(grb::vector_serialize(buffer, size, v));
  });
}
inline GrB_Info GrB_Vector_deserialize(GrB_Vector* v, GrB_Type type,
                                       const void* buffer, GrB_Index size) {
  return grb_detail::guarded([&]() -> GrB_Info {
    return grb_detail::to_c(
        grb::vector_deserialize(v, type, buffer, size, nullptr));
  });
}

// ---------------------------------------------------------------------------
// GxB_* extensions: telemetry introspection (not part of the GraphBLAS 2.0
// specification; the GxB_ prefix marks implementation extensions, after
// SuiteSparse:GraphBLAS practice).
//
// Counters and spans are recorded by the always-compiled src/obs/ layer
// and are off by default; see obs/telemetry.hpp for the counter name
// schema and DESIGN.md §9 for the trace format.  Every GxB_* entry point
// must appear in the GxB_EXTENSIONS registry below and route through
// grb_detail::guarded — tools/grb_lint.py enforces both.
// ---------------------------------------------------------------------------

// Registry of every GxB_* entry point this implementation provides, for
// runtime introspection (GxB_Extension_name / capability probing).
inline constexpr const char* const GxB_EXTENSIONS[] = {
    "GxB_Extension_count",
    "GxB_Extension_name",
    "GxB_Stats_enable",
    "GxB_Stats_get",
    "GxB_Stats_reset",
    "GxB_Stats_json",
    "GxB_Stats_prometheus",
    "GxB_Context_stats",
    "GxB_Explain",
    "GxB_Trace_start",
    "GxB_Trace_dump",
    "GxB_Memory_report",
    "GxB_Object_memory",
    "GxB_FlightRecorder_dump",
    "GxB_Fusion_set",
    "GxB_Fusion_get",
    "GxB_Format_set",
    "GxB_Format_get",
    "GxB_Matrix_Option_set",
    "GxB_Matrix_Option_get",
    "GxB_Vector_Option_set",
    "GxB_Vector_Option_get",
};
inline constexpr GrB_Index GxB_EXTENSION_COUNT =
    sizeof(GxB_EXTENSIONS) / sizeof(GxB_EXTENSIONS[0]);

// Number of GxB_* extension entry points.
inline GrB_Info GxB_Extension_count(GrB_Index* n) {
  return grb_detail::guarded([&]() -> GrB_Info {
    if (n == nullptr) return GrB_NULL_POINTER;
    *n = GxB_EXTENSION_COUNT;
    return GrB_SUCCESS;
  });
}

// Name of extension entry point `i` (0 <= i < GxB_EXTENSION_COUNT).  The
// returned pointer has static storage duration.
inline GrB_Info GxB_Extension_name(const char** name, GrB_Index i) {
  return grb_detail::guarded([&]() -> GrB_Info {
    if (name == nullptr) return GrB_NULL_POINTER;
    if (i >= GxB_EXTENSION_COUNT) return GrB_INVALID_INDEX;
    *name = GxB_EXTENSIONS[i];
    return GrB_SUCCESS;
  });
}

// Enables (on != 0) or disables (on == 0) per-operation counters.
// Disabled is the default; the counters keep their values when disabled.
inline GrB_Info GxB_Stats_enable(int on) {
  return grb_detail::guarded([&]() -> GrB_Info {
    grb::obs::stats_set_enabled(on != 0);
    return GrB_SUCCESS;
  });
}

// Reads one counter by dotted name (e.g. "GrB_mxm.calls", "GrB_mxm.flops",
// "queue.high_water", "pool.steals"; full schema in obs/telemetry.hpp).
// Unknown names return GrB_NO_VALUE with *value set to 0.
inline GrB_Info GxB_Stats_get(const char* name, uint64_t* value) {
  return grb_detail::guarded([&]() -> GrB_Info {
    if (name == nullptr || value == nullptr) return GrB_NULL_POINTER;
    return grb::obs::stats_get(name, value) ? GrB_SUCCESS : GrB_NO_VALUE;
  });
}

// Zeroes every counter (per-op, gauges, per-pool).
inline GrB_Info GxB_Stats_reset(void) {
  return grb_detail::guarded([&]() -> GrB_Info {
    grb::obs::stats_reset();
    return GrB_SUCCESS;
  });
}

// Reads one counter by dotted name, restricted to the work attributed
// to `ctx` and the contexts created under it (a tenant's slice of the
// GxB_Stats_get schema).  Supported names: the per-op fields
// ("GrB_mxm.calls", ".ns", ".p99_ns", ...) and the memory gauges
// "mem.live_bytes", "mem.peak_bytes", "mem.objects" for containers
// homed in the subtree.  `ctx` may be NULL for the top-level context —
// work never attributed to a GrB_Context_new context.  Unknown names
// return GrB_NO_VALUE with *value set to 0.
inline GrB_Info GxB_Context_stats(GrB_Context ctx, const char* name,
                                  uint64_t* value) {
  return grb_detail::guarded([&]() -> GrB_Info {
    if (name == nullptr || value == nullptr) return GrB_NULL_POINTER;
    uint64_t id =
        ctx == nullptr ? grb::obs::kTopContextId : ctx->obs_id();
    return grb::obs::stats_get_ctx(id, name, value) ? GrB_SUCCESS
                                                    : GrB_NO_VALUE;
  });
}

// Writes the full counter dump as JSON into `buf` (snprintf semantics:
// always NUL-terminated when *len > 0; on return *len is the required
// size including the terminator).  `buf` may be NULL to query the size.
inline GrB_Info GxB_Stats_json(char* buf, GrB_Index* len) {
  return grb_detail::guarded([&]() -> GrB_Info {
    if (len == nullptr) return GrB_NULL_POINTER;
    std::string json = grb::obs::stats_json();
    GrB_Index need = static_cast<GrB_Index>(json.size()) + 1;
    if (buf != nullptr && *len > 0) {
      GrB_Index n = *len - 1 < json.size() ? *len - 1 : json.size();
      std::memcpy(buf, json.data(), n);
      buf[n] = '\0';
    }
    *len = need;
    return GrB_SUCCESS;
  });
}

// Renders the decision audit — what strategy every adaptive cost-model
// branch chose, what it rejected, the predicted costs and the measured
// outcome — as human-readable text into `buf` (same sizing protocol as
// GxB_Stats_json).  `op` filters to records attributed to one entry
// point (e.g. "GrB_mxm"); NULL or "" explains everything still in the
// ring, newest first.  The audit records while stats are enabled
// (GxB_Stats_enable / GRB_DECISIONS=1); when it never ran the text says
// so rather than coming back empty.
inline GrB_Info GxB_Explain(const char* op, char* buf, GrB_Index* len) {
  return grb_detail::guarded([&]() -> GrB_Info {
    if (len == nullptr) return GrB_NULL_POINTER;
    std::string text = grb::obs::decision_explain(op, 0);
    GrB_Index need = static_cast<GrB_Index>(text.size()) + 1;
    if (buf != nullptr && *len > 0) {
      GrB_Index n = *len - 1 < text.size() ? *len - 1 : text.size();
      std::memcpy(buf, text.data(), n);
      buf[n] = '\0';
    }
    *len = need;
    return GrB_SUCCESS;
  });
}

// Writes the Prometheus text exposition (version 0.0.4) of the counters
// — per-op call/error totals, latency quantile summaries, live/peak
// memory gauges — into `buf` (same sizing protocol as GxB_Stats_json).
inline GrB_Info GxB_Stats_prometheus(char* buf, GrB_Index* len) {
  return grb_detail::guarded([&]() -> GrB_Info {
    if (len == nullptr) return GrB_NULL_POINTER;
    std::string text = grb::obs::stats_prometheus();
    GrB_Index need = static_cast<GrB_Index>(text.size()) + 1;
    if (buf != nullptr && *len > 0) {
      GrB_Index n = *len - 1 < text.size() ? *len - 1 : text.size();
      std::memcpy(buf, text.data(), n);
      buf[n] = '\0';
    }
    *len = need;
    return GrB_SUCCESS;
  });
}

// Writes the annotated memory-attribution report — library totals,
// scratch-arena slice, and every live object sorted by live bytes — into
// `buf` (same sizing protocol as GxB_Stats_json).
inline GrB_Info GxB_Memory_report(char* buf, GrB_Index* len) {
  return grb_detail::guarded([&]() -> GrB_Info {
    if (len == nullptr) return GrB_NULL_POINTER;
    std::string text = grb::obs::memory_report();
    GrB_Index need = static_cast<GrB_Index>(text.size()) + 1;
    if (buf != nullptr && *len > 0) {
      GrB_Index n = *len - 1 < text.size() ? *len - 1 : text.size();
      std::memcpy(buf, text.data(), n);
      buf[n] = '\0';
    }
    *len = need;
    return GrB_SUCCESS;
  });
}

// Live/peak bytes currently attributed to one container.
inline GrB_Info GxB_Object_memory(GrB_Matrix A, uint64_t* live,
                                  uint64_t* peak) {
  return grb_detail::guarded([&]() -> GrB_Info {
    if (live == nullptr || peak == nullptr) return GrB_NULL_POINTER;
    if (A == nullptr) return GrB_UNINITIALIZED_OBJECT;
    grb::obs::MemReportable::Snapshot s;
    A->mem_snapshot(&s);
    *live = s.live_bytes;
    *peak = s.peak_bytes;
    return GrB_SUCCESS;
  });
}
inline GrB_Info GxB_Object_memory(GrB_Vector v, uint64_t* live,
                                  uint64_t* peak) {
  return grb_detail::guarded([&]() -> GrB_Info {
    if (live == nullptr || peak == nullptr) return GrB_NULL_POINTER;
    if (v == nullptr) return GrB_UNINITIALIZED_OBJECT;
    grb::obs::MemReportable::Snapshot s;
    v->mem_snapshot(&s);
    *live = s.live_bytes;
    *peak = s.peak_bytes;
    return GrB_SUCCESS;
  });
}
inline GrB_Info GxB_Object_memory(GrB_Scalar s_, uint64_t* live,
                                  uint64_t* peak) {
  return grb_detail::guarded([&]() -> GrB_Info {
    if (live == nullptr || peak == nullptr) return GrB_NULL_POINTER;
    if (s_ == nullptr) return GrB_UNINITIALIZED_OBJECT;
    grb::obs::MemReportable::Snapshot s;
    s_->mem_snapshot(&s);
    *live = s.live_bytes;
    *peak = s.peak_bytes;
    return GrB_SUCCESS;
  });
}

// Dumps the flight-recorder ring on demand: `path` NULL writes the
// annotated text to stderr; a ".json" suffix selects the Chrome
// trace-event form.  The ring keeps recording; nothing is cleared.
inline GrB_Info GxB_FlightRecorder_dump(const char* path) {
  return grb_detail::guarded([&]() -> GrB_Info {
    return grb::obs::fr_dump_file(path) ? GrB_SUCCESS : GrB_INVALID_VALUE;
  });
}

// Enables (on != 0) or disables (on == 0) the nonblocking-mode fusion
// planner (DESIGN.md §12).  On by default; GRB_FUSION=off|0 in the
// environment selects the eager per-op execution as an ablation
// baseline.  Disabling never changes results, only how the deferred
// queue is executed.
inline GrB_Info GxB_Fusion_set(int on) {
  return grb_detail::guarded([&]() -> GrB_Info {
    grb::set_fusion_enabled(on != 0);
    return GrB_SUCCESS;
  });
}

// Reads the current fusion-planner setting (1 = on, 0 = off).
inline GrB_Info GxB_Fusion_get(int* on) {
  return grb_detail::guarded([&]() -> GrB_Info {
    if (on == nullptr) return GrB_NULL_POINTER;
    *on = grb::fusion_enabled() ? 1 : 0;
    return GrB_SUCCESS;
  });
}

// --- Storage-format options (DESIGN.md §15) --------------------------------
// Polymorphic storage: each container's data block is stored as CSR
// ("csr", the canonical sparse form), hypersparse CSR ("hyper"), a
// presence bitmap ("bitmap"), or a full dense array ("dense").  The
// library picks per object from a density cost model; these entry
// points pin a format or read what is actually resident.  Pinning never
// changes results — every format is bitwise-identical under the
// differential oracle — only the memory/time trade-off.

typedef enum {
  GxB_FORMAT_CSR = 0,     // compressed sparse row (canonical)
  GxB_FORMAT_HYPER = 1,   // hypersparse CSR (matrices only)
  GxB_FORMAT_BITMAP = 2,  // presence bytes + full value slots
  GxB_FORMAT_DENSE = 3,   // full value array, no structure
  GxB_FORMAT_AUTO = 4,    // cost-model choice (the default)
} GxB_Format;

typedef enum {
  GxB_FORMAT = 0,  // storage format (GxB_Format values)
} GxB_Option_Field;

namespace grb_detail {
// GxB_Format -> internal pin (-1 = auto).  `max_fmt` is the largest
// internal format id the container supports.
inline GrB_Info format_pin(GxB_Format value, int max_fmt, int* pin) {
  int v = static_cast<int>(value);
  if (v == GxB_FORMAT_AUTO) {
    *pin = -1;
    return GrB_SUCCESS;
  }
  if (v < 0 || v > max_fmt) return GrB_INVALID_VALUE;
  *pin = v;
  return GrB_SUCCESS;
}
}  // namespace grb_detail

// Sets the global format policy: AUTO restores the cost model; any
// other value forces that format for every subsequently published
// block (degrading to the nearest representable format when the forced
// one cannot hold the object).  GRB_FORMAT=csr|hyper|bitmap|dense|auto
// in the environment sets the same knob.
inline GrB_Info GxB_Format_set(GxB_Format value) {
  return grb_detail::guarded([&]() -> GrB_Info {
    int pin = -1;
    GrB_Info info = grb_detail::format_pin(
        value, static_cast<int>(grb::MatFormat::kDense), &pin);
    if (info != GrB_SUCCESS) return info;
    grb::set_format_policy(static_cast<grb::FormatPolicy>(pin));
    return GrB_SUCCESS;
  });
}

// Reads the global format policy.
inline GrB_Info GxB_Format_get(GxB_Format* value) {
  return grb_detail::guarded([&]() -> GrB_Info {
    if (value == nullptr) return GrB_NULL_POINTER;
    int p = static_cast<int>(grb::format_policy());
    *value = p < 0 ? GxB_FORMAT_AUTO : static_cast<GxB_Format>(p);
    return GrB_SUCCESS;
  });
}

// Pins one matrix to a storage format (GxB_FORMAT_AUTO unpins).  The
// current block is re-adapted immediately; later publishes honor the
// pin.
inline GrB_Info GxB_Matrix_Option_set(GrB_Matrix A, GxB_Option_Field field,
                                      GxB_Format value) {
  return grb_detail::guarded([&]() -> GrB_Info {
    if (A == nullptr) return GrB_UNINITIALIZED_OBJECT;
    if (field != GxB_FORMAT) return GrB_INVALID_VALUE;
    int pin = -1;
    GrB_Info info = grb_detail::format_pin(
        value, static_cast<int>(grb::MatFormat::kDense), &pin);
    if (info != GrB_SUCCESS) return info;
    return grb_detail::to_c(A->set_format_option(pin));
  });
}

// Reads the format of the matrix's resident data block (what is
// actually in memory now, not the pin).
inline GrB_Info GxB_Matrix_Option_get(GrB_Matrix A, GxB_Option_Field field,
                                      GxB_Format* value) {
  return grb_detail::guarded([&]() -> GrB_Info {
    if (value == nullptr) return GrB_NULL_POINTER;
    if (A == nullptr) return GrB_UNINITIALIZED_OBJECT;
    if (field != GxB_FORMAT) return GrB_INVALID_VALUE;
    *value = static_cast<GxB_Format>(A->current_data()->format);
    return GrB_SUCCESS;
  });
}

// Vector variant.  Vectors have no hypersparse form; their formats map
// as sparse = GxB_FORMAT_CSR, bitmap = GxB_FORMAT_BITMAP,
// dense = GxB_FORMAT_DENSE.
inline GrB_Info GxB_Vector_Option_set(GrB_Vector v, GxB_Option_Field field,
                                      GxB_Format value) {
  return grb_detail::guarded([&]() -> GrB_Info {
    if (v == nullptr) return GrB_UNINITIALIZED_OBJECT;
    if (field != GxB_FORMAT) return GrB_INVALID_VALUE;
    int pin = -1;
    if (value != GxB_FORMAT_AUTO) {
      switch (value) {
        case GxB_FORMAT_CSR:
          pin = static_cast<int>(grb::VecFormat::kSparse);
          break;
        case GxB_FORMAT_BITMAP:
          pin = static_cast<int>(grb::VecFormat::kBitmap);
          break;
        case GxB_FORMAT_DENSE:
          pin = static_cast<int>(grb::VecFormat::kDense);
          break;
        default:
          return GrB_INVALID_VALUE;  // no hypersparse vectors
      }
    }
    return grb_detail::to_c(v->set_format_option(pin));
  });
}

inline GrB_Info GxB_Vector_Option_get(GrB_Vector v, GxB_Option_Field field,
                                      GxB_Format* value) {
  return grb_detail::guarded([&]() -> GrB_Info {
    if (value == nullptr) return GrB_NULL_POINTER;
    if (v == nullptr) return GrB_UNINITIALIZED_OBJECT;
    if (field != GxB_FORMAT) return GrB_INVALID_VALUE;
    switch (v->current_data()->format) {
      case grb::VecFormat::kSparse:
        *value = GxB_FORMAT_CSR;
        break;
      case grb::VecFormat::kBitmap:
        *value = GxB_FORMAT_BITMAP;
        break;
      case grb::VecFormat::kDense:
        *value = GxB_FORMAT_DENSE;
        break;
    }
    return GrB_SUCCESS;
  });
}

// Starts span recording.  `path` (required) names the Chrome trace-event
// JSON file a later GxB_Trace_dump(NULL) — or GrB_finalize under
// GRB_TRACE — will write.  Restarting discards any buffered spans.
inline GrB_Info GxB_Trace_start(const char* path) {
  return grb_detail::guarded([&]() -> GrB_Info {
    if (path == nullptr) return GrB_NULL_POINTER;
    return grb::obs::trace_start(path) ? GrB_SUCCESS : GrB_INVALID_VALUE;
  });
}

// Stops recording and writes the buffered spans as Chrome trace-event
// JSON (chrome://tracing / Perfetto loadable).  `path` may be NULL to
// use the GxB_Trace_start path.  The buffer is cleared either way.
inline GrB_Info GxB_Trace_dump(const char* path) {
  return grb_detail::guarded([&]() -> GrB_Info {
    return grb::obs::trace_dump(path) ? GrB_SUCCESS : GrB_INVALID_VALUE;
  });
}
